"""Setup shim.

The real metadata lives in ``pyproject.toml``; this file exists so the
legacy ``pip install -e .`` path works in offline environments that
lack the ``wheel`` package (PEP 660 editable builds need it).
"""

from setuptools import setup

setup()
