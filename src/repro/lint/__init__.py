"""Contract-aware static analysis for the repro codebase.

``repro lint`` proves the system's coding contracts hold on every
code path, not just the ones the test suite executes:

- **J1** (:mod:`repro.lint.fork_safety`) — analyzer-state mutations
  are paired with their :class:`UndoJournal` ``save_*``/``record_*``
  calls, so ``fork()`` rollback stays exact;
- **D1** (:mod:`repro.lint.determinism`) — no wall-clock, unseeded
  randomness, ``id()`` keys, or unordered set iteration feeding
  serialized payloads;
- **S1** (:mod:`repro.lint.schema_drift`) — every serializer has a
  registered kind, a ``from_dict`` inverse, and a committed field
  fingerprint that moves with the class;
- **H1** (:mod:`repro.lint.registry_coverage`) — every edit type has
  a handler and every handler-written dirty axis is consumed;
- **M1** (:mod:`repro.lint.obs_naming`) — span/metric names follow
  the DESIGN.md grammar and metrics never record wall time.

Run it as ``repro lint`` (``--json`` for the versioned document); see
:mod:`repro.lint.runner` for the baseline gate semantics and
:mod:`repro.lint.base` for the framework and suppression grammar.
"""

from repro.lint.base import (
    RULES,
    FileContext,
    Finding,
    LintVisitor,
    Project,
    Rule,
    rule,
)
from repro.lint.runner import LintResult, run_lint

__all__ = [
    "RULES",
    "FileContext",
    "Finding",
    "LintResult",
    "LintVisitor",
    "Project",
    "Rule",
    "rule",
    "run_lint",
]
