"""Framework for the contract-aware static analyzer.

The runtime system enforces its guarantees dynamically — fork/rollback
equivalence, byte-stable serialization, deterministic backends — but
only on the code paths the test suite executes.  ``repro.lint`` walks
the ASTs of every module under ``src/repro`` and proves the *coding
contracts* behind those guarantees hold everywhere:

- a checker is a registered function ``Project -> list[Finding]``
  (see :func:`rule`); the built-in checkers live in sibling modules
  and register on import;
- :class:`FileContext` wraps one parsed source file together with its
  ``# repro-lint: disable=RULE`` suppressions;
- :class:`Project` lazily parses the whole tree and hands checkers
  whole-project views (class hierarchies, registries) as well as
  per-file passes;
- findings are identified by a line-independent fingerprint so a
  committed baseline (see :mod:`repro.lint.runner`) survives unrelated
  edits but must only ever shrink.

Suppression grammar (the comment may follow code on the same line):

- ``# repro-lint: disable=J1`` — suppress rule J1 on this line;
- ``# repro-lint: disable=J1,D1`` — several rules;
- ``# repro-lint: disable-file=D1`` — suppress for the whole file.

Suppressions are for *sanctioned* exceptions (e.g. the campaign
report's wall-clock stopwatch, which the wire protocol zeroes); the
policy in DESIGN.md requires a justifying comment next to each one.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)=([A-Z0-9, ]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at a source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity for baseline matching.

        Hashing (rule, path, message) — not the line — keeps baseline
        entries stable across unrelated edits that shift code around.
        """
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode()
        )
        return digest.hexdigest()[:16]

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


class FileContext:
    """One parsed source file plus its lint suppressions."""

    def __init__(self, path: Path, rel: str) -> None:
        self.path = path
        self.rel = rel
        self.source = path.read_text()
        self.tree = ast.parse(self.source, filename=str(path))
        self.module = rel[:-3].replace("/", ".")  # repro.core.delta
        # line -> suppressed rule ids; rule ids suppressed file-wide.
        self.line_suppressions: dict[int, set[str]] = {}
        self.file_suppressions: set[str] = set()
        for lineno, line in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {r.strip() for r in match.group(2).split(",") if r.strip()}
            if match.group(1) == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        active = self.line_suppressions.get(line, ())
        return rule in active or "ALL" in active


class Project:
    """The whole source tree, parsed lazily, plus repo-level paths."""

    def __init__(self, repo_root: Path | str) -> None:
        self.repo_root = Path(repo_root)
        self.src_root = self.repo_root / "src"
        self.baseline_path = self.repo_root / "LINT_BASELINE.json"
        self.fingerprint_path = self.repo_root / "SCHEMA_FINGERPRINTS.json"
        self._contexts: dict[str, FileContext] = {}
        self._paths: list[str] | None = None

    def paths(self) -> list[str]:
        """Sorted ``src``-relative posix paths of every lintable file."""
        if self._paths is None:
            package = self.src_root / "repro"
            self._paths = sorted(
                p.relative_to(self.src_root).as_posix()
                for p in package.rglob("*.py")
            )
        return self._paths

    def file(self, rel: str) -> FileContext | None:
        """The parsed context for one src-relative path, if it exists."""
        if rel not in self._contexts:
            path = self.src_root / rel
            if not path.is_file():
                return None
            self._contexts[rel] = FileContext(path, rel)
        return self._contexts[rel]

    def __iter__(self) -> Iterator[FileContext]:
        for rel in self.paths():
            context = self.file(rel)
            if context is not None:
                yield context


Checker = Callable[[Project], list[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered checker and the contract it enforces."""

    id: str
    title: str
    contract: str
    check: Checker


RULES: dict[str, Rule] = {}


def rule(id: str, title: str, contract: str) -> Callable[[Checker], Checker]:
    """Register a checker under a rule id (decorator)."""

    def decorator(check: Checker) -> Checker:
        RULES[id] = Rule(id, title, contract, check)
        return check

    return decorator


class LintVisitor(ast.NodeVisitor):
    """Visitor base: walks one file, collecting findings for one rule.

    Subclasses call :meth:`flag` from their ``visit_*`` methods;
    suppressed lines are dropped here so every checker honours the
    ``# repro-lint: disable`` grammar for free.
    """

    rule_id = "??"

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    def flag(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self.context.suppressed(self.rule_id, line):
            return
        self.findings.append(
            Finding(self.rule_id, self.context.rel, line, message)
        )

    def run(self) -> list[Finding]:
        self.visit(self.context.tree)
        return self.findings


def call_name(node: ast.AST) -> str | None:
    """The flat callable name of a Call's func: ``f`` or ``a.b.f``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def const_str(node: ast.AST | None) -> str | None:
    """The literal string value of a node, if it is one."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@dataclass
class FunctionInfo:
    """One function/method with its enclosing class, for scoped passes."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    context: FileContext
    class_name: str | None = None
    decorators: list[str] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.node.name}"
        return self.node.name


def iter_functions(context: FileContext) -> Iterator[FunctionInfo]:
    """Every function in a file, with its enclosing class (one level)."""
    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionInfo(node, context, None, _decorators(node))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield FunctionInfo(
                        item, context, node.name, _decorators(item)
                    )


def _decorators(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = call_name(target)
        if name is not None:
            names.append(name)
    return names
