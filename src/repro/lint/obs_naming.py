"""M1 — observability naming and the metric determinism contract.

DESIGN.md fixes two conventions for the obs layer:

- **Name grammar**: span and metric names are lower-case dotted paths,
  ``component.operation`` (``analyze.batch``, ``pipeline.igp``,
  ``service.cache_hits``) — at least two dot-separated segments of
  ``[a-z][a-z0-9_]*``.  Dynamic names built from f-strings are out of
  static reach and are skipped (their *prefixes* are literal and
  conventionally correct).
- **Metrics are deterministic work counts, never wall time.**  Metric
  payloads ship across workers and must merge byte-identically; a
  duration smuggled into a counter breaks serial-vs-parallel equality.
  Wall-clock belongs to spans (``Span.duration``) and the explicitly
  labelled ``report.timings``.

This checker enforces both: literal first arguments of
``.span()``/``.counter()``/``.gauge()``/``.histogram()``/``.metric()``
calls must match the grammar; metric names must not contain timing
words; and values recorded through a chained
``metrics.counter(...).inc(v)`` (or ``.observe``/``.set``) must not
derive from ``Span.duration`` or ``time.*``.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import Finding, LintVisitor, Project, rule

NAME_GRAMMAR = re.compile(r"[a-z][a-z0-9_]*(\.[a-z0-9_]+)+")

SPAN_METHODS = {"span"}
METRIC_METHODS = {"counter", "gauge", "histogram", "metric"}
RECORD_METHODS = {"inc", "observe", "set"}

# Words that indicate a wall-time payload in a metric *name*.
TIME_WORDS = {
    "time", "duration", "seconds", "secs", "ms", "latency", "wall",
    "elapsed",
}

# Attribute names whose value is wall time.
TIME_ATTRS = {"duration", "wall_time", "elapsed", "_started", "_epoch"}


def _first_str_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return None


def _carries_wall_time(node: ast.AST) -> str | None:
    """A human-readable reason if the expression derives wall time."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Attribute) and inner.attr in TIME_ATTRS:
            return f"reads .{inner.attr}"
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and isinstance(inner.func.value, ast.Name)
            and inner.func.value.id == "time"
        ):
            return f"calls time.{inner.func.attr}()"
    return None


class _ObsNamingVisitor(LintVisitor):
    rule_id = "M1"

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            method = func.attr
            if method in SPAN_METHODS | METRIC_METHODS:
                self._check_name(node, method)
            if method in RECORD_METHODS and self._is_metric_chain(func.value):
                self._check_value(node, method)
            if method == "metric" and len(node.args) >= 2:
                reason = _carries_wall_time(node.args[1])
                if reason is not None:
                    self.flag(
                        node,
                        f"event-log metric value {reason}; metrics are "
                        "deterministic work counts, wall time belongs to "
                        "spans",
                    )
        self.generic_visit(node)

    def _check_name(self, node: ast.Call, method: str) -> None:
        name = _first_str_arg(node)
        if name is None:
            return  # dynamic or non-obs call (e.g. IntervalSet.span)
        if NAME_GRAMMAR.fullmatch(name) is None:
            self.flag(
                node,
                f".{method}({name!r}) violates the obs name grammar "
                "'component.operation' (lower-case dotted segments)",
            )
            return
        if method in METRIC_METHODS:
            segments = set(re.split(r"[._]", name))
            timing = segments & TIME_WORDS
            if timing:
                self.flag(
                    node,
                    f".{method}({name!r}) names a wall-time quantity "
                    f"({sorted(timing)}); metrics record work counts, "
                    "never time",
                )

    def _is_metric_chain(self, receiver: ast.AST) -> bool:
        """True for ``<registry>.counter|gauge|histogram(...)`` chains."""
        return (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Attribute)
            and receiver.func.attr in ("counter", "gauge", "histogram")
        )

    def _check_value(self, node: ast.Call, method: str) -> None:
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            reason = _carries_wall_time(value)
            if reason is not None:
                self.flag(
                    node,
                    f"metric .{method}() value {reason}; metrics are "
                    "deterministic work counts, wall time belongs to "
                    "spans and report.timings",
                )


@rule(
    "M1",
    "obs naming & metric determinism",
    "span/metric names follow the component.operation grammar; metrics "
    "record work counts, never wall time",
)
def check_obs_naming(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for context in project:
        findings.extend(_ObsNamingVisitor(context).run())
    return findings
