"""S1 — schema drift: serializers, inverses, and field fingerprints.

Every result type crosses process and service boundaries as a
versioned JSON document, and the round-trip contract
(``from_dict(to_dict(r)).to_dict() == to_dict(r)``, byte-stable) only
holds while three things stay in sync: the emitting ``to_dict``, the
parsing ``from_dict``, and the class's field list.  A field added to a
dataclass without touching its serializers is invisible to the test
suite until something actually round-trips an instance that uses it.

For every class defining ``to_dict`` this checker enforces:

- a ``from_dict`` inverse exists on the same class;
- if ``to_dict`` emits a kind-tagged document
  (``serialize.document("kind", ...)``), the kind literal is declared
  in ``serialize.KNOWN_KINDS`` (or registered via a literal
  ``register_kind("kind")`` call) and ``from_dict`` validates the
  *same* kind with ``check_document``;
- the class's field list matches the committed fingerprint file
  (``SCHEMA_FINGERPRINTS.json``): a drifted hash means fields changed
  without the serializers/schema version being confirmed — fix the
  codecs, bump or consciously keep ``SCHEMA_VERSION``, then refresh
  with ``repro lint --update-fingerprints`` (the refreshed file shows
  up in review as the explicit "schema touched" artifact).

Fields are read from dataclass annotations, falling back to
``self.X = ...`` assignments in ``__init__`` for plain classes.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.lint.base import (
    FileContext,
    Finding,
    Project,
    call_name,
    const_str,
    rule,
)

SERIALIZE_MODULE = "repro/core/serialize.py"


@dataclass
class SerializedClass:
    """One class with a ``to_dict``, as seen by the checker."""

    context: FileContext
    node: ast.ClassDef
    is_dataclass: bool
    fields: list[str]
    kind: str | None  # document("<kind>", ...) literal in to_dict
    has_from_dict: bool
    checked_kinds: list[str]  # check_document(..., "<kind>") in from_dict

    @property
    def qualname(self) -> str:
        return f"{self.context.module}.{self.node.name}"

    def fields_hash(self) -> str:
        digest = hashlib.sha256(",".join(self.fields).encode())
        return digest.hexdigest()[:16]


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if call_name(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _class_fields(node: ast.ClassDef, is_dc: bool) -> list[str]:
    if is_dc:
        return [
            item.target.id
            for item in node.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
        ]
    fields: list[str] = []
    for item in node.body:
        if (
            isinstance(item, ast.FunctionDef)
            and item.name == "__init__"
        ):
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in fields
                    ):
                        fields.append(target.attr)
    return fields


def _document_kinds(fn: ast.FunctionDef) -> list[str]:
    """Kind literals passed to ``document(...)`` inside a function."""
    kinds = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name is not None and name.split(".")[-1] == "document":
                kind = const_str(node.args[0] if node.args else None)
                if kind is not None:
                    kinds.append(kind)
    return kinds


def _checked_kinds(fn: ast.FunctionDef) -> list[str]:
    kinds = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name is not None and name.split(".")[-1] == "check_document":
                if len(node.args) >= 2:
                    kind = const_str(node.args[1])
                    if kind is not None:
                        kinds.append(kind)
    return kinds


def collect_serialized_classes(project: Project) -> list[SerializedClass]:
    classes: list[SerializedClass] = []
    for context in project:
        for node in context.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            to_dict = from_dict = None
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    if item.name == "to_dict":
                        to_dict = item
                    elif item.name == "from_dict":
                        from_dict = item
            if to_dict is None:
                continue
            kinds = _document_kinds(to_dict)
            is_dc = _is_dataclass(node)
            classes.append(
                SerializedClass(
                    context=context,
                    node=node,
                    is_dataclass=is_dc,
                    fields=_class_fields(node, is_dc),
                    kind=kinds[0] if kinds else None,
                    has_from_dict=from_dict is not None,
                    checked_kinds=(
                        _checked_kinds(from_dict)
                        if from_dict is not None
                        else []
                    ),
                )
            )
    return classes


def registered_kinds(project: Project) -> set[str]:
    """Kinds declared in serialize.KNOWN_KINDS plus literal
    ``register_kind("...")`` calls anywhere in the tree."""
    kinds: set[str] = set()
    serialize = project.file(SERIALIZE_MODULE)
    if serialize is not None:
        for node in ast.walk(serialize.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                named = any(
                    isinstance(t, ast.Name) and t.id == "KNOWN_KINDS"
                    for t in targets
                )
                if named and isinstance(node.value, (ast.Set, ast.List)):
                    for elt in node.value.elts:
                        kind = const_str(elt)
                        if kind is not None:
                            kinds.add(kind)
    for context in project:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                name = call_name(node.func)
                if (
                    name is not None
                    and name.split(".")[-1] == "register_kind"
                    and node.args
                ):
                    kind = const_str(node.args[0])
                    if kind is not None:
                        kinds.add(kind)
    return kinds


# -- fingerprint file -------------------------------------------------------


def compute_fingerprints(project: Project) -> dict[str, Any]:
    """The fingerprint document for the current tree."""
    from repro.core.serialize import SCHEMA_VERSION

    classes = {}
    for cls in collect_serialized_classes(project):
        classes[cls.qualname] = {
            "fields": list(cls.fields),
            "hash": cls.fields_hash(),
            "kind": cls.kind,
            "schema_version": SCHEMA_VERSION,
        }
    return {"classes": classes}


def write_fingerprints(project: Project) -> None:
    document = compute_fingerprints(project)
    project.fingerprint_path.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n"
    )


def load_fingerprints(project: Project) -> dict[str, Any] | None:
    if not project.fingerprint_path.is_file():
        return None
    data: dict[str, Any] = json.loads(project.fingerprint_path.read_text())
    return data


@rule(
    "S1",
    "schema drift",
    "every to_dict has a registered kind, a from_dict inverse checking "
    "that kind, and a committed field fingerprint that moves with it",
)
def check_schema_drift(project: Project) -> list[Finding]:
    findings: list[Finding] = []

    def flag(cls: SerializedClass, message: str) -> None:
        line = cls.node.lineno
        if not cls.context.suppressed("S1", line):
            findings.append(Finding("S1", cls.context.rel, line, message))

    classes = collect_serialized_classes(project)
    kinds = registered_kinds(project)
    committed = load_fingerprints(project)
    recorded = committed.get("classes", {}) if committed is not None else {}

    for cls in classes:
        if not cls.has_from_dict:
            flag(
                cls,
                f"{cls.node.name}.to_dict has no from_dict inverse; "
                "one-way serializers break the round-trip contract",
            )
        if cls.kind is not None:
            if cls.kind not in kinds:
                flag(
                    cls,
                    f"{cls.node.name}.to_dict emits unregistered kind "
                    f"{cls.kind!r}; add it to serialize.KNOWN_KINDS or "
                    "call register_kind",
                )
            if cls.has_from_dict and cls.kind not in cls.checked_kinds:
                flag(
                    cls,
                    f"{cls.node.name}.from_dict does not validate kind "
                    f"{cls.kind!r} with check_document; version/kind skew "
                    "would be parsed silently",
                )
        if committed is None:
            continue  # a missing file is reported once, below
        entry = recorded.get(cls.qualname)
        if entry is None:
            flag(
                cls,
                f"{cls.qualname} has no committed field fingerprint; run "
                "`repro lint --update-fingerprints` and commit the result",
            )
        elif entry.get("hash") != cls.fields_hash():
            flag(
                cls,
                f"{cls.qualname} fields changed "
                f"({entry.get('hash')} -> {cls.fields_hash()}) without the "
                "fingerprint moving: update to_dict/from_dict, bump or "
                "consciously keep SCHEMA_VERSION, then refresh with "
                "`repro lint --update-fingerprints`",
            )
    if committed is None and classes:
        findings.append(
            Finding(
                "S1",
                "repro/core/serialize.py",
                1,
                "no SCHEMA_FINGERPRINTS.json committed; run "
                "`repro lint --update-fingerprints` to create it",
            )
        )
    return findings
