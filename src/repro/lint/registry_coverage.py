"""H1 — registry coverage: every edit kind reaches the pipeline.

The change-handler registry decouples edit types from the analyzer,
which also means nothing *structurally* guarantees a new
:class:`~repro.core.change.Edit` subclass has a handler — the miss
surfaces as a ``TypeError`` on first dispatch, at runtime, on whatever
workload first uses it.  Symmetrically, a handler that deposits dirty
markers on an axis the :class:`RecomputePipeline` never consumes
"works" while silently never recomputing anything.

This checker closes both gaps statically:

- every concrete ``Edit`` subclass (anywhere in the tree) must be
  covered by a ``@register_change_handler`` registration on itself or
  an ancestor (mirroring the registry's MRO lookup — ``LinkUp`` rides
  on ``LinkDown``);
- every ``dirty.<axis>`` a registered handler touches must be a
  declared :class:`DirtySet` field (or method/property), and written
  axes must be ones the recompute stages actually read;
- every *declared* ``DirtySet`` field must be consumed by a recompute
  stage — a new axis nobody reads is dead IR, and dirt deposited on it
  (by any future handler) would be silently dropped.
"""

from __future__ import annotations

import ast

from repro.lint.base import Finding, Project, call_name, rule

CHANGE_MODULE = "repro/core/change.py"
PIPELINE_MODULE = "repro/core/pipeline.py"

# DirtySet consumers inside pipeline.py (the IR's own methods — merge,
# attribute — read every field trivially and must not count).
PIPELINE_CONSUMER_CLASSES = {"RecomputePipeline", "_Attribution"}


def _edit_hierarchy(project: Project) -> tuple[set[str], dict[str, list[str]]]:
    """(concrete Edit subclass names, class -> base names) project-wide."""
    bases_of: dict[str, list[str]] = {}
    for context in project:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                bases = [
                    base
                    for base in (call_name(b) for b in node.bases)
                    if base is not None
                ]
                bases_of.setdefault(node.name, [b.split(".")[-1] for b in bases])
    # Transitive closure: classes that reach Edit through bases.
    edits: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name in edits or name == "Edit":
                continue
            if any(base == "Edit" or base in edits for base in bases):
                edits.add(name)
                changed = True
    return edits, bases_of


def _registered_types(project: Project) -> set[str]:
    """Edit type names passed to ``@register_change_handler``."""
    registered: set[str] = set()
    for context in project:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                name = call_name(decorator.func)
                if (
                    name is None
                    or name.split(".")[-1] != "register_change_handler"
                    or not decorator.args
                ):
                    continue
                target = call_name(decorator.args[0])
                if target is not None:
                    registered.add(target.split(".")[-1])
    return registered


def _covered(
    name: str, registered: set[str], bases_of: dict[str, list[str]]
) -> bool:
    """MRO-style coverage: the class or any ancestor is registered."""
    seen: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        if current in registered:
            return True
        stack.extend(bases_of.get(current, ()))
    return False


def _dirtyset_members(
    project: Project,
) -> tuple[dict[str, int], set[str]]:
    """(field name -> declaration line, all member names incl.
    methods/properties)."""
    fields: dict[str, int] = {}
    members: set[str] = set()
    pipeline = project.file(PIPELINE_MODULE)
    if pipeline is None:
        return fields, members
    for node in pipeline.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "DirtySet":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields[item.target.id] = item.lineno
                    members.add(item.target.id)
                elif isinstance(item, ast.FunctionDef):
                    members.add(item.name)
    return fields, members


def _consumed_axes(project: Project, fields: dict[str, int]) -> set[str]:
    """DirtySet fields the recompute stages read (``dirty.<axis>``)."""
    consumed: set[str] = set()
    pipeline = project.file(PIPELINE_MODULE)
    if pipeline is None:
        return consumed
    for node in pipeline.tree.body:
        if (
            not isinstance(node, ast.ClassDef)
            or node.name not in PIPELINE_CONSUMER_CLASSES
        ):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Attribute) and inner.attr in fields:
                value = inner.value
                if (
                    isinstance(value, ast.Name) and value.id == "dirty"
                ) or (
                    isinstance(value, ast.Attribute) and value.attr == "dirty"
                ):
                    consumed.add(inner.attr)
    return consumed


def _handler_axis_uses(
    project: Project,
) -> list[tuple[str, str, int, str]]:
    """(file, handler name, line, axis) for every dirty.<axis> use."""
    uses: list[tuple[str, str, int, str]] = []
    for context in project:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            is_handler = any(
                isinstance(d, ast.Call)
                and (call_name(d.func) or "").split(".")[-1]
                == "register_change_handler"
                for d in node.decorator_list
            )
            if not is_handler:
                continue
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "dirty"
                ):
                    uses.append(
                        (context.rel, node.name, inner.lineno, inner.attr)
                    )
    return uses


@rule(
    "H1",
    "registry coverage",
    "every Edit subclass has a change handler (MRO-covered) and every "
    "handler-written DirtySet axis is consumed by RecomputePipeline",
)
def check_registry_coverage(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    change = project.file(CHANGE_MODULE)
    if change is None:
        return findings

    edits, bases_of = _edit_hierarchy(project)
    registered = _registered_types(project)
    class_lines = {
        node.name: (context.rel, node.lineno)
        for context in project
        for node in ast.walk(context.tree)
        if isinstance(node, ast.ClassDef)
    }
    for name in sorted(edits):
        if _covered(name, registered, bases_of):
            continue
        rel, line = class_lines.get(name, (CHANGE_MODULE, 1))
        context = project.file(rel)
        if context is not None and context.suppressed("H1", line):
            continue
        findings.append(
            Finding(
                "H1",
                rel,
                line,
                f"Edit subclass {name} has no registered change handler "
                "(and none on its ancestors); dispatch will raise "
                "TypeError at runtime",
            )
        )

    fields, members = _dirtyset_members(project)
    consumed = _consumed_axes(project, fields)
    pipeline_context = project.file(PIPELINE_MODULE)
    for axis in sorted(fields):
        if axis in consumed:
            continue
        line = fields[axis]
        if pipeline_context is not None and pipeline_context.suppressed(
            "H1", line
        ):
            continue
        findings.append(
            Finding(
                "H1",
                PIPELINE_MODULE,
                line,
                f"DirtySet declares axis '{axis}' but no recompute "
                "stage consumes it; dirt deposited there is silently "
                "dropped",
            )
        )
    for rel, handler, line, axis in _handler_axis_uses(project):
        context = project.file(rel)
        if context is not None and context.suppressed("H1", line):
            continue
        if axis not in members:
            findings.append(
                Finding(
                    "H1",
                    rel,
                    line,
                    f"handler {handler} touches unknown DirtySet axis "
                    f"'{axis}'; declared fields are "
                    f"{sorted(fields)}",
                )
            )
        elif axis in fields and axis not in consumed:
            findings.append(
                Finding(
                    "H1",
                    rel,
                    line,
                    f"handler {handler} writes DirtySet axis '{axis}' "
                    "but RecomputePipeline never consumes it; the dirt "
                    "is silently dropped",
                )
            )
    return findings
