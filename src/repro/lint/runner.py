"""Run the registered checkers over a repo and gate on the baseline.

The baseline (``LINT_BASELINE.json``) is the escape hatch for
pre-existing findings: entries are finding fingerprints (rule + path +
message, line-independent), and the gate is **shrink-only** in both
directions —

- a finding *not* in the baseline fails the run (new debt is refused);
- a baseline entry with no matching finding also fails the run (the
  fix landed, so the entry must be deleted — ``--update-baseline``
  regenerates the file, and because stale entries are errors, the file
  can only ever lose entries without a checker change).

The ``lint-report`` document is the versioned-JSON view of one run;
it flows through the same envelope as every other ``--json`` output —
the analyzer eats its own serialization dog food.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core import serialize
from repro.lint import (  # noqa: F401  (checker registration side effects)
    determinism,
    fork_safety,
    obs_naming,
    registry_coverage,
    schema_drift,
)
from repro.lint.base import RULES, Finding, Project


@dataclass
class LintResult:
    """One lint run: partitioned findings plus file/rule coverage."""

    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[dict[str, Any]] = field(default_factory=list)
    checked_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale

    def to_dict(self) -> dict[str, Any]:
        """Versioned lint-report document (byte-stable)."""
        baselined = set(self.baselined)
        return serialize.document(
            "lint-report",
            {
                "clean": self.clean,
                "checked_files": self.checked_files,
                "rules": [
                    {
                        "id": rule.id,
                        "title": rule.title,
                        "contract": rule.contract,
                    }
                    for rule in sorted(RULES.values(), key=lambda r: r.id)
                ],
                "findings": [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                        "fingerprint": f.fingerprint(),
                        "baselined": f in baselined,
                    }
                    for f in sorted(self.findings)
                ],
                "stale_baseline": sorted(
                    self.stale, key=lambda e: str(e.get("fingerprint"))
                ),
            },
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LintResult":
        """Inverse of :meth:`to_dict` (validates the envelope)."""
        serialize.check_document(data, "lint-report")
        findings = [
            Finding(
                entry["rule"], entry["path"], entry["line"], entry["message"]
            )
            for entry in data["findings"]
        ]
        out = cls(
            findings=findings,
            checked_files=data["checked_files"],
            stale=list(data["stale_baseline"]),
        )
        for finding, entry in zip(findings, data["findings"]):
            (out.baselined if entry["baselined"] else out.new).append(finding)
        return out


def load_baseline(path: Path) -> dict[str, dict[str, Any]]:
    """fingerprint -> entry; empty when no baseline is committed."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    entries: dict[str, dict[str, Any]] = {}
    for entry in data.get("findings", []):
        entries[entry["fingerprint"]] = entry
    return entries


def write_baseline(path: Path, findings: list[Finding]) -> None:
    document = {
        "findings": [
            {
                "fingerprint": f.fingerprint(),
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
            for f in sorted(findings)
        ],
    }
    path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")


def run_lint(
    repo_root: Path | str,
    update_baseline: bool = False,
    update_fingerprints: bool = False,
) -> LintResult:
    """Run every registered rule; apply baseline semantics."""
    project = Project(repo_root)
    if update_fingerprints:
        schema_drift.write_fingerprints(project)

    findings: list[Finding] = []
    for rule_id in sorted(RULES):
        findings.extend(RULES[rule_id].check(project))
    findings.sort()

    if update_baseline:
        write_baseline(project.baseline_path, findings)

    baseline = load_baseline(project.baseline_path)
    result = LintResult(findings=findings, checked_files=len(project.paths()))
    seen: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        seen.add(fingerprint)
        if fingerprint in baseline:
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    for fingerprint, entry in sorted(baseline.items()):
        if fingerprint not in seen:
            result.stale.append(entry)
    return result
