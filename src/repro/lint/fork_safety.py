"""J1 — fork safety: analyzer-state mutations must be journaled.

``what_if``/``fork()`` rely on :class:`repro.core.forking.UndoJournal`
holding a before-image of every piece of converged state a pass
mutates.  A mutation that bypasses its ``save_*`` call does not fail
the pass — it silently corrupts the base for **every subsequent
fork**, which is exactly the class of bug dynamic tests miss (they
only catch it if some later test forks over the same state).

This checker is the race-detector analog for that discipline.  Within
the analyzer orbit (``repro.core.analyzer``/``handlers``/``pipeline``
and ``repro.controlplane``) it resolves, per function, which local
names alias analyzer-owned state (``state = analyzer.state``,
``rib = state.ribs[router]``, tuple-unpacked loop aliases, …) and
flags:

- attribute writes, subscript writes, and mutating method calls on a
  protected structure with no matching ``UndoJournal.save_*`` call at
  an earlier line of the same function (before-image captures must
  precede the mutation);
- calls to append-log-journaled operations (ACL interval structure,
  span invalidation, reachability purge/restore) whose matching
  ``record_*`` call is absent from the function entirely (append logs
  may be recorded after the fact).

Ownership is rooted at the analyzer object: only functions that
receive the analyzer (an ``analyzer`` parameter, or ``self`` on the
analyzer/pipeline classes) are in contract — initial convergence code
that builds raw state before any fork can exist is exempt by
construction, as are ``__init__`` and the rollback paths themselves.
"""

from __future__ import annotations

import ast

from repro.lint.base import Finding, FunctionInfo, Project, iter_functions, rule

SCOPE = (
    "repro/core/analyzer.py",
    "repro/core/handlers.py",
    "repro/core/pipeline.py",
    "repro/controlplane/",
)

# Classes whose ``self`` is (or owns) the analyzer.
ANALYZER_CLASSES = {"DifferentialNetworkAnalyzer", "RecomputePipeline"}

# Functions exempt from the contract: construction and the journal's
# own rollback machinery.
EXEMPT = {"__init__", "__post_init__"}

Path_ = tuple[str, ...]

# Protected analyzer-state attributes -> the journal method that must
# capture the before-image *before* the mutation.
STATE_GUARDS: dict[str, str] = {
    "ribs": "save_rib_prefix",
    "ospf_routes": "save_ospf_routes",
    "connected": "save_route_cache",
    "statics": "save_route_cache",
    "bgp_sessions": "save_sessions",
    "bgp_solutions": "save_bgp_solution",
    "backbone_adverts": "save_backbone",
    "backbone_totals_map": "save_backbone",
    "fibs": "save_fib_entry",
    "_origins": "save_origins",
}

# (structure, method) -> (journal method, must_precede).  Append-log
# journal entries (``record_*``) may be written after the mutation —
# the journal replays them, it does not restore a before-image.
METHOD_GUARDS: dict[tuple[str, str], tuple[str, bool]] = {
    ("dataplane", "update_fib_entry"): ("save_fib_entry", True),
    ("dataplane", "acl_interval_structure"): ("record_acl_structure", False),
    ("dataplane", "invalidate_span"): ("record_acl_span", False),
    ("igp", "set_router_routes"): ("save_igp_router", True),
    ("reachability", "purge_overlapping"): ("record_reachability", False),
    ("reachability", "restore"): ("record_reachability", False),
}

# Methods that mutate a protected container in place.
CONTAINER_MUTATORS = {
    "install", "withdraw", "pop", "popitem", "clear", "update",
    "setdefault", "append", "extend", "add", "remove", "discard",
}

# Accessors that return the container (or a view that mutates it), so
# aliases bound through them keep the protected path.
TRANSPARENT_ACCESSORS = {"get", "setdefault", "items", "values", "keys"}


def _in_scope(rel: str) -> bool:
    return any(rel == s or rel.startswith(s) for s in SCOPE)


class _FunctionAnalysis:
    """Alias resolution + mutation/journal detection for one function."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.env: dict[str, set[Path_]] = {}
        node = info.node
        if info.class_name in ANALYZER_CLASSES:
            self.env["self"] = {("analyzer",)}
        for arg in node.args.args + node.args.kwonlyargs:
            if arg.arg == "analyzer":
                self.env["analyzer"] = {("analyzer",)}

    # -- alias resolution ---------------------------------------------------

    def resolve(self, node: ast.AST) -> set[Path_]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            out: set[Path_] = set()
            for path in self.resolve(node.value):
                if node.attr == "analyzer" and path == ("analyzer",):
                    out.add(path)  # pipeline's self.analyzer is the root
                else:
                    out.add(path + (node.attr,))
            return out
        if isinstance(node, ast.Subscript):
            return self.resolve(node.value)
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in TRANSPARENT_ACCESSORS
            ):
                return self.resolve(node.func.value)
            return set()
        return set()

    def bind(self) -> None:
        """Collect alias bindings (flow-insensitive, to a fixpoint)."""
        for _ in range(3):
            before = {name: set(paths) for name, paths in self.env.items()}
            for node in ast.walk(self.info.node):
                if isinstance(node, ast.Assign):
                    paths = self.resolve(node.value)
                    if paths:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.env.setdefault(target.id, set()).update(
                                    paths
                                )
                elif isinstance(node, ast.For):
                    self._bind_for(node)
            if self.env == before:
                break

    def _bind_for(self, node: ast.For) -> None:
        target, source = node.target, node.iter
        if isinstance(target, ast.Name):
            paths = self.resolve(source)
            if paths:
                self.env.setdefault(target.id, set()).update(paths)
            return
        if not isinstance(target, ast.Tuple):
            return
        names = [
            elt.id if isinstance(elt, ast.Name) else None
            for elt in target.elts
        ]
        if isinstance(source, (ast.Tuple, ast.List)):
            # for a, b, c in ((x, y, state.connected), ...): bind
            # position-wise through each literal element tuple.
            for elt in source.elts:
                if not isinstance(elt, ast.Tuple):
                    continue
                for name, expr in zip(names, elt.elts):
                    if name is None:
                        continue
                    paths = self.resolve(expr)
                    if paths:
                        self.env.setdefault(name, set()).update(paths)
            return
        # for k, v in <protected>.items(): both names may alias content.
        paths = self.resolve(source)
        if paths:
            for name in names:
                if name is not None:
                    self.env.setdefault(name, set()).update(paths)

    # -- journal calls ------------------------------------------------------

    def journal_lines(self) -> dict[str, int]:
        """journal method -> earliest line it is called in the function."""
        lines: dict[str, int] = {}
        for node in ast.walk(self.info.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            method = node.func.attr
            if not (
                method.startswith("save_")
                or method.startswith("record_")
                or method == "before_edit"
            ):
                continue
            if any(
                "_journal" in path or "journal" in path
                for path in self.resolve(node.func.value)
            ) or (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("journal", "_journal")
            ):
                lines[method] = min(
                    lines.get(method, node.lineno), node.lineno
                )
        return lines

    # -- mutation detection -------------------------------------------------

    def mutations(self) -> list[tuple[int, str, str, bool]]:
        """Every protected mutation: (line, what, journal method, precede)."""
        found: list[tuple[int, str, str, bool]] = []
        for node in ast.walk(self.info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    found.extend(self._target_mutation(target))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    found.extend(self._target_mutation(target))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                found.extend(self._call_mutation(node))
        return found

    def _governing(self, paths: set[Path_]) -> set[str]:
        """The innermost protected attribute on each resolved path."""
        keys = set()
        protected = set(STATE_GUARDS) | {s for s, _m in METHOD_GUARDS}
        for path in paths:
            for attr in reversed(path):
                if attr in protected:
                    keys.add(attr)
                    break
        return keys

    def _target_mutation(
        self, target: ast.AST
    ) -> list[tuple[int, str, str, bool]]:
        out: list[tuple[int, str, str, bool]] = []
        if isinstance(target, ast.Attribute):
            guard = STATE_GUARDS.get(target.attr)
            if guard is not None and self.resolve(target.value):
                out.append(
                    (target.lineno, f"write to .{target.attr}", guard, True)
                )
        elif isinstance(target, ast.Subscript):
            for key in self._governing(self.resolve(target.value)):
                guard = STATE_GUARDS.get(key)
                if guard is not None:
                    out.append(
                        (target.lineno, f"item write on .{key}", guard, True)
                    )
        return out

    def _call_mutation(
        self, node: ast.Call
    ) -> list[tuple[int, str, str, bool]]:
        assert isinstance(node.func, ast.Attribute)
        method = node.func.attr
        out: list[tuple[int, str, str, bool]] = []
        for key in self._governing(self.resolve(node.func.value)):
            if (key, method) in METHOD_GUARDS:
                guard, precede = METHOD_GUARDS[(key, method)]
                out.append(
                    (node.lineno, f".{key}.{method}()", guard, precede)
                )
            elif key in STATE_GUARDS and method in CONTAINER_MUTATORS:
                out.append(
                    (
                        node.lineno,
                        f".{key}.{method}()",
                        STATE_GUARDS[key],
                        True,
                    )
                )
        return out


@rule(
    "J1",
    "fork safety",
    "every analyzer-state mutation is paired with its UndoJournal "
    "save_*/record_* call, so fork() rollback restores exact state",
)
def check_fork_safety(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for context in project:
        if not _in_scope(context.rel):
            continue
        for info in iter_functions(context):
            name = info.node.name
            if name in EXEMPT or name.startswith("rollback"):
                continue
            analysis = _FunctionAnalysis(info)
            analysis.bind()
            mutations = analysis.mutations()
            if not mutations:
                continue
            journal = analysis.journal_lines()
            for line, what, guard, precede in sorted(mutations):
                guard_line = journal.get(guard)
                ok = guard_line is not None and (
                    not precede or guard_line <= line
                )
                if ok or context.suppressed("J1", line):
                    continue
                how = (
                    "preceded by" if precede else "paired with"
                )
                findings.append(
                    Finding(
                        "J1",
                        context.rel,
                        line,
                        f"{info.qualname}: {what} mutates analyzer-owned "
                        f"state but is not {how} UndoJournal.{guard}() in "
                        "the same function — a bypassed journal write "
                        "corrupts every subsequent fork",
                    )
                )
    return findings
