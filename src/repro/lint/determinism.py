"""D1 — determinism: no ambient entropy in result-producing code.

The headline guarantees — warm cache hits byte-identical to cold
misses, serial and multiprocessing campaign backends byte-identical,
event logs stable across runs — all reduce to one coding contract:
nothing that feeds a serialized payload may depend on wall-clock time,
unseeded randomness, interpreter object identity, or unordered
container iteration.  This checker flags, across the whole tree:

- ``time.*`` calls — wall-clock belongs to the span layer
  (``repro.obs.trace``) and the benchmark harness, which are
  allowlisted; anything else must justify itself with an inline
  suppression;
- module-level ``random.*`` calls — randomized generators must go
  through an explicitly seeded ``random.Random(seed)`` (the
  constructor itself is allowed, as is ``SystemRandom`` for
  non-reproducible contexts);
- ``id()`` — interpreter addresses are recycled after GC, so
  ``id()``-keyed caches can silently alias two different objects (and
  ids differ across processes, which breaks cross-backend equality);
- iteration over syntactically unordered sets inside serialization
  functions (``to_dict``/``to_payload``/``encode_*``) that is not
  wrapped in ``sorted()`` — set order is hash-seed-dependent, so such
  payloads differ run to run.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, Finding, LintVisitor, Project, rule

# Modules where wall-clock reads are the *point* (span timing, bench
# harness) or feed an explicitly-labelled timing report.
TIME_ALLOWLIST = (
    "repro/obs/trace.py",
    "repro/bench/",
    "repro/core/snapshot_diff.py",
)

# Seeded / explicitly non-deterministic constructors are fine; it is
# the module-level convenience functions (shared hidden state, no
# injected seed) that break reproducibility.
ALLOWED_RANDOM_ATTRS = {"Random", "SystemRandom"}

SERIALIZE_FN_PREFIXES = ("encode_", "_encode")
SERIALIZE_FN_NAMES = {"to_dict", "to_payload", "to_jsonl"}


def _is_serialize_fn(name: str) -> bool:
    return name in SERIALIZE_FN_NAMES or name.startswith(SERIALIZE_FN_PREFIXES)


def _is_set_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


class _DeterminismVisitor(LintVisitor):
    rule_id = "D1"

    def __init__(self, context: FileContext) -> None:
        super().__init__(context)
        self.allow_time = any(
            context.rel == m or context.rel.startswith(m)
            for m in TIME_ALLOWLIST
        )
        self.imported = {
            alias.asname or alias.name
            for node in ast.walk(context.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
        }
        self._fn_stack: list[str] = []

    # -- function scoping ---------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _in_serialize_fn(self) -> bool:
        return any(_is_serialize_fn(name) for name in self._fn_stack)

    # -- entropy sources ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            module, attr = func.value.id, func.attr
            if module == "time" and "time" in self.imported:
                if not self.allow_time:
                    self.flag(
                        node,
                        f"wall-clock read time.{attr}() outside the span/"
                        "bench allowlist; wall time must never feed a "
                        "deterministic payload",
                    )
            elif (
                module == "random"
                and "random" in self.imported
                and attr not in ALLOWED_RANDOM_ATTRS
            ):
                self.flag(
                    node,
                    f"random.{attr}() uses the shared unseeded generator; "
                    "inject a seeded random.Random(seed) instead",
                )
        elif isinstance(func, ast.Name) and func.id == "id":
            self.flag(
                node,
                "id() keys are recycled after GC and differ across "
                "processes; key on the object itself or a stable digest",
            )
        self.generic_visit(node)

    # -- unordered iteration into payloads ----------------------------------

    def _flag_set_iteration(self, source: ast.AST) -> None:
        if self._in_serialize_fn() and _is_set_like(source):
            self.flag(
                source,
                "iterating an unordered set inside a serialization "
                "function; wrap in sorted() for a byte-stable payload",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._flag_set_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@rule(
    "D1",
    "determinism",
    "no wall-clock, unseeded randomness, id() keys, or unordered set "
    "iteration feeding serialized payloads",
)
def check_determinism(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for context in project:
        findings.extend(_DeterminismVisitor(context).run())
    return findings
