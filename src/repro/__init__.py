"""Differential Network Analysis (DNA).

A reproduction of the NSDI 2022 system for *incremental* network
configuration verification.  Given a network snapshot (topology +
device configurations) and a configuration change, DNA computes the
delta in control-plane routes, forwarding state, and reachability
directly — without re-simulating the whole network — and compares
against a Batfish-style full snapshot-diff baseline.

The supported entry point is the :mod:`repro.api` session facade::

    from repro import Network, ChangeSet

    net = Network.generate("fat_tree", size=4)
    report = net.preview(ChangeSet().link_down("agg0_0", "core0"))

Top-level convenience re-exports also cover the engine-level API::

    from repro import (
        Snapshot, DifferentialNetworkAnalyzer, SnapshotDiff,
        LinkDown, fat_tree, internet2,
    )

Attributes are resolved lazily (PEP 562) so ``import repro`` stays
cheap and subpackages can be used independently.  See ``DESIGN.md``
for the system inventory and ``EXPERIMENTS.md`` for the reproduced
evaluation.
"""

from typing import Any

__version__ = "1.0.0"

# name -> (module, attribute)
_EXPORTS = {
    "Network": ("repro.api", "Network"),
    "ChangeSet": ("repro.api", "ChangeSet"),
    "Tracer": ("repro.obs", "Tracer"),
    "NullTracer": ("repro.obs", "NullTracer"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "SchemaError": ("repro.core.serialize", "SchemaError"),
    "Invariant": ("repro.core.invariants", "Invariant"),
    "Violation": ("repro.core.invariants", "Violation"),
    "register_invariant": ("repro.core.invariants", "register_invariant"),
    "make_invariant": ("repro.core.invariants", "make_invariant"),
    "registered_invariants": (
        "repro.core.invariants",
        "registered_invariants",
    ),
    "IPv4Address": ("repro.net.addr", "IPv4Address"),
    "Prefix": ("repro.net.addr", "Prefix"),
    "Topology": ("repro.topology.model", "Topology"),
    "fat_tree": ("repro.topology.generators", "fat_tree"),
    "grid": ("repro.topology.generators", "grid"),
    "internet2": ("repro.topology.generators", "internet2"),
    "line": ("repro.topology.generators", "line"),
    "random_gnm": ("repro.topology.generators", "random_gnm"),
    "ring": ("repro.topology.generators", "ring"),
    "star": ("repro.topology.generators", "star"),
    "DeviceConfig": ("repro.config.device", "DeviceConfig"),
    "Snapshot": ("repro.core.snapshot", "Snapshot"),
    "DifferentialNetworkAnalyzer": ("repro.core.analyzer", "DifferentialNetworkAnalyzer"),
    "SnapshotDiff": ("repro.core.snapshot_diff", "SnapshotDiff"),
    "DeltaReport": ("repro.core.delta", "DeltaReport"),
    "Change": ("repro.core.change", "Change"),
    "AddAclRule": ("repro.core.change", "AddAclRule"),
    "AddBgpNeighbor": ("repro.core.change", "AddBgpNeighbor"),
    "AddRouteMapClause": ("repro.core.change", "AddRouteMapClause"),
    "AddStaticRoute": ("repro.core.change", "AddStaticRoute"),
    "AnnouncePrefix": ("repro.core.change", "AnnouncePrefix"),
    "DisableOspfInterface": ("repro.core.change", "DisableOspfInterface"),
    "EnableOspfInterface": ("repro.core.change", "EnableOspfInterface"),
    "LinkDown": ("repro.core.change", "LinkDown"),
    "LinkUp": ("repro.core.change", "LinkUp"),
    "RemoveAclRule": ("repro.core.change", "RemoveAclRule"),
    "RemoveBgpNeighbor": ("repro.core.change", "RemoveBgpNeighbor"),
    "RemoveRouteMapClause": ("repro.core.change", "RemoveRouteMapClause"),
    "RemoveStaticRoute": ("repro.core.change", "RemoveStaticRoute"),
    "SetLocalPref": ("repro.core.change", "SetLocalPref"),
    "SetOspfCost": ("repro.core.change", "SetOspfCost"),
    "ShutdownInterface": ("repro.core.change", "ShutdownInterface"),
    "EnableInterface": ("repro.core.change", "EnableInterface"),
    "WithdrawPrefix": ("repro.core.change", "WithdrawPrefix"),
    "parse_change": ("repro.core.change_text", "parse_change"),
    "parse_change_batch": ("repro.core.change_text", "parse_change_batch"),
    "serialize_change": ("repro.core.change_text", "serialize_change"),
    "serialize_change_batch": (
        "repro.core.change_text",
        "serialize_change_batch",
    ),
    "DirtySet": ("repro.core.pipeline", "DirtySet"),
    "register_change_handler": (
        "repro.core.handlers",
        "register_change_handler",
    ),
    "registered_change_handlers": (
        "repro.core.handlers",
        "registered_change_handlers",
    ),
    "compose_reports": ("repro.core.delta", "compose_reports"),
    "trace_packet": ("repro.query.trace", "trace_packet"),
    "path_diff": ("repro.query.paths", "path_diff"),
    "EquivalenceOracle": ("repro.core.oracle", "EquivalenceOracle"),
    "simulate": ("repro.controlplane.simulation", "simulate"),
    "CampaignReport": ("repro.campaign.report", "CampaignReport"),
    "CampaignRunner": ("repro.campaign.runner", "CampaignRunner"),
    "ScenarioOutcome": ("repro.campaign.report", "ScenarioOutcome"),
    "WhatIfScenario": ("repro.campaign.scenarios", "WhatIfScenario"),
    "acl_block_sweep": ("repro.campaign.scenarios", "acl_block_sweep"),
    "all_single_link_failures": (
        "repro.campaign.scenarios",
        "all_single_link_failures",
    ),
    "bgp_policy_sweep": ("repro.campaign.scenarios", "bgp_policy_sweep"),
    "sampled_k_link_failures": (
        "repro.campaign.scenarios",
        "sampled_k_link_failures",
    ),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value  # cache for next access
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
