"""Per-atom reachability, loop, and blackhole analysis.

For one atom, the data plane induces a directed graph over routers
(the union of ECMP forward legs).  The questions answered here:

- **Reachability**: for each *owner* (router that delivers the atom
  locally), which source routers have some path to it?  Computed with
  one reverse BFS per owner — O(E) per owner per atom.
- **Loops**: routers sitting on a forwarding cycle (non-trivial SCCs
  or self-loops of the forward graph).
- **Blackholes**: routers with no matching FIB entry for the atom.

:class:`ReachabilityIndex` caches per-atom results and exposes
invalidation hooks for the incremental layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dataplane.atoms import Atom
from repro.dataplane.forwarding import DataPlane


@dataclass(frozen=True)
class AtomReachability:
    """Converged data-plane behaviour of one atom."""

    atom: Atom
    owners: frozenset[str]
    # owner -> all routers with some forwarding path to it (owner incl.)
    sources: dict[str, frozenset[str]]
    loop_routers: frozenset[str]
    blackhole_routers: frozenset[str]
    mixed_routers: frozenset[str]

    def reaches(self, source: str, owner: str) -> bool:
        """True if ``source`` can reach delivery at ``owner``."""
        return source in self.sources.get(owner, frozenset())

    def pair_set(self) -> frozenset[tuple[str, str]]:
        """All (source, owner) reachable pairs, for diffing."""
        return frozenset(
            (source, owner)
            for owner, sources in self.sources.items()
            for source in sources
        )


def compute_atom_reachability(dataplane: DataPlane, atom: Atom) -> AtomReachability:
    """Analyse one atom from scratch."""
    actions = dataplane.actions_for_atom(atom)
    forward: dict[str, frozenset[str]] = {}
    owners: set[str] = set()
    blackholes: set[str] = set()
    mixed: set[str] = set()
    for router, action in actions.items():
        forward[router] = action.forward_neighbors()
        if action.delivers():
            owners.add(router)
        if action.is_blackhole():
            blackholes.add(router)
        if action.mixed:
            mixed.add(router)

    reverse: dict[str, set[str]] = {router: set() for router in forward}
    for router, neighbors in forward.items():
        for neighbor in neighbors:
            if neighbor in reverse:
                reverse[neighbor].add(router)

    sources: dict[str, frozenset[str]] = {}
    for owner in owners:
        seen = {owner}
        stack = [owner]
        while stack:
            node = stack.pop()
            for predecessor in reverse[node]:
                if predecessor not in seen:
                    seen.add(predecessor)
                    stack.append(predecessor)
        sources[owner] = frozenset(seen)

    loop_routers = _cycle_routers(forward)
    return AtomReachability(
        atom=atom,
        owners=frozenset(owners),
        sources=sources,
        loop_routers=loop_routers,
        blackhole_routers=frozenset(blackholes),
        mixed_routers=frozenset(mixed),
    )


def _cycle_routers(forward: dict[str, frozenset[str]]) -> frozenset[str]:
    """Routers on a forwarding cycle (iterative Tarjan SCC)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cyclic: set[str] = set()

    for start in forward:
        if start in index:
            continue
        work: list[tuple[str, Iterable[str]]] = [(start, iter(forward[start]))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in forward:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(forward[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)
                elif component and component[0] in forward[component[0]]:
                    cyclic.add(component[0])  # self-loop
    return frozenset(cyclic)


class ReachabilityIndex:
    """Cached per-atom reachability over a :class:`DataPlane`."""

    def __init__(self, dataplane: DataPlane) -> None:
        self.dataplane = dataplane
        self._cache: dict[Atom, AtomReachability] = {}

    def for_atom(self, atom: Atom) -> AtomReachability:
        """Reachability of one atom (cached)."""
        cached = self._cache.get(atom)
        if cached is None:
            cached = compute_atom_reachability(self.dataplane, atom)
            self._cache[atom] = cached
        return cached

    def compute_all(self) -> dict[Atom, AtomReachability]:
        """Analyse every live atom (the baseline's full pass)."""
        return {
            atom: self.for_atom(atom) for atom in self.dataplane.atom_table.atoms()
        }

    def invalidate(self, atoms: Iterable[Atom]) -> None:
        """Drop cached results for dirty atoms."""
        for atom in atoms:
            self._cache.pop(atom, None)

    def restore(self, entries: Iterable[AtomReachability]) -> None:
        """Reinstate previously captured results keyed by their atoms.

        Used by fork rollback: the atom table has been restored to the
        structure the entries were computed against, so reinserting
        them rebuilds the pre-fork coverage without recomputation.
        """
        for reach in entries:
            self._cache[reach.atom] = reach

    def cached_atoms(self) -> set[Atom]:
        """Atoms currently analysed."""
        return set(self._cache)

    def entries_overlapping(
        self, spans: Iterable[tuple[int, int]]
    ) -> list[tuple[int, int, AtomReachability]]:
        """Cached results whose atom overlaps any of ``spans``.

        Keys may be *stale* atoms (from before a structural change);
        that is exactly what the incremental differ needs: the
        pre-change behaviour of the dirty region.
        """
        span_list = [s for s in spans if s[0] < s[1]]
        results = []
        for atom, reach in self._cache.items():
            for lo, hi in span_list:
                if atom.lo < hi and lo < atom.hi:
                    results.append((atom.lo, atom.hi, reach))
                    break
        return results

    def purge_overlapping(self, spans: Iterable[tuple[int, int]]) -> None:
        """Drop every cached result overlapping any of ``spans``
        (including stale keys left behind by splits/merges)."""
        span_list = [s for s in spans if s[0] < s[1]]
        stale = [
            atom
            for atom in self._cache
            if any(atom.lo < hi and lo < atom.hi for lo, hi in span_list)
        ]
        for atom in stale:
            del self._cache[atom]

    def reaches(self, source: str, owner: str, address: int) -> bool:
        """Point query: can ``source`` reach ``owner`` for ``address``?"""
        atom = self.dataplane.atom_table.atom_containing(address)
        return self.for_atom(atom).reaches(source, owner)
