"""Forwarding tables with longest-prefix-match lookup.

A :class:`Fib` stores one router's forwarding entries in a binary trie
keyed by prefix bits, giving O(32) longest-prefix-match and cheap
insert/remove — the operations the incremental layer hammers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.controlplane.rib import NextHop
from repro.net.addr import Prefix


@dataclass(frozen=True)
class FibEntry:
    """One forwarding entry: a prefix and its resolved next hops.

    ``next_hops`` may contain forwarding hops (neighbor set), a local
    delivery (neighbor None, drop False), or a drop.  ``protocol``
    records which routing protocol installed the entry (useful in
    reports).
    """

    prefix: Prefix
    next_hops: frozenset[NextHop]
    protocol: str = ""

    def is_drop(self) -> bool:
        """True if every next hop discards."""
        return bool(self.next_hops) and all(nh.drop for nh in self.next_hops)

    def forwards_to(self) -> frozenset[str]:
        """Neighbor routers packets are sent to."""
        return frozenset(
            nh.neighbor for nh in self.next_hops if nh.neighbor is not None
        )

    def __str__(self) -> str:
        hops = ", ".join(str(nh) for nh in sorted(self.next_hops))
        return f"{self.prefix} -> {{{hops}}}"


class _TrieNode:
    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: list["_TrieNode | None"] = [None, None]
        self.entry: FibEntry | None = None


class Fib:
    """One router's forwarding table."""

    def __init__(self, router: str) -> None:
        self.router = router
        self._root = _TrieNode()
        self._entries: dict[Prefix, FibEntry] = {}

    # -- writes -------------------------------------------------------------

    def install(self, entry: FibEntry) -> FibEntry | None:
        """Insert or replace the entry for its prefix.

        Returns the entry previously installed for the same prefix (or
        None).
        """
        node = self._root
        prefix = entry.prefix
        for position in range(prefix.length):
            bit = prefix.bit(position)
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        previous = node.entry
        node.entry = entry
        self._entries[prefix] = entry
        return previous

    def remove(self, prefix: Prefix) -> FibEntry | None:
        """Delete the entry for ``prefix``; returns it (or None).

        Trie nodes are left in place (they are tiny and reinsertion is
        common under churn); the entry pointer is cleared.
        """
        if prefix not in self._entries:
            return None
        node: _TrieNode | None = self._root
        for position in range(prefix.length):
            assert node is not None
            node = node.children[prefix.bit(position)]
            if node is None:
                return None
        assert node is not None
        previous = node.entry
        node.entry = None
        del self._entries[prefix]
        return previous

    # -- reads ----------------------------------------------------------------

    def lookup(self, address: int) -> FibEntry | None:
        """Longest-prefix-match for a destination address."""
        node: _TrieNode | None = self._root
        best = self._root.entry
        for position in range(32):
            assert node is not None
            bit = (address >> (31 - position)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.entry is not None:
                best = node.entry
        return best

    def entry_for(self, prefix: Prefix) -> FibEntry | None:
        """Exact-match entry for a prefix."""
        return self._entries.get(prefix)

    def entries(self) -> Iterator[FibEntry]:
        """All installed entries, in prefix order."""
        for prefix in sorted(self._entries):
            yield self._entries[prefix]

    def prefixes(self) -> set[Prefix]:
        """All installed prefixes."""
        return set(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._entries

    def __str__(self) -> str:
        lines = [f"FIB {self.router} ({len(self)} entries):"]
        lines.extend(f"  {entry}" for entry in self.entries())
        return "\n".join(lines)

    def lookup_linear(self, address: int) -> FibEntry | None:
        """Reference LPM by scanning all entries (oracle for tests)."""
        best: FibEntry | None = None
        for prefix, entry in self._entries.items():
            if prefix.contains_address(address):
                if best is None or prefix.length > best.prefix.length:
                    best = entry
        return best
