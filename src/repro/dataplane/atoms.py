"""Atom decomposition of the destination address space.

An *atom* is a maximal half-open interval ``[lo, hi)`` of destination
addresses that no FIB prefix and no ACL destination boundary cuts
through: every router forwards every address in an atom identically,
so one forwarding graph per atom captures the whole data plane.

The table reference-counts cut points so incremental FIB/ACL deltas
maintain the decomposition: installing a prefix adds (at most) two cut
points, removing it may merge neighbouring atoms, and only atoms
overlapping the changed interval are reported dirty.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.addr import Prefix

SPAN_LO = 0
SPAN_HI = 1 << 32


@dataclass(frozen=True, order=True)
class Atom:
    """One atom: a half-open destination interval."""

    lo: int
    hi: int

    @property
    def representative(self) -> int:
        """Any address inside the atom (its low end)."""
        return self.lo

    @property
    def size(self) -> int:
        return self.hi - self.lo

    def overlaps_prefix(self, prefix: Prefix) -> bool:
        """True if the atom intersects the prefix."""
        lo, hi = prefix.interval()
        return self.lo < hi and lo < self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi})"


class AtomTable:
    """Reference-counted cut points over the destination space.

    ``register(lo, hi)`` / ``unregister(lo, hi)`` adjust the counts of
    the two boundary points; the live atoms are the intervals between
    points with positive counts (plus the span ends).  Both return the
    structural consequence so callers can maintain per-atom caches:

    - register -> list of (old_atom, [new_subatoms]) splits
    - unregister -> list of (merged_atom, [old_subatoms]) merges
    """

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._points: list[int] = [SPAN_LO, SPAN_HI]  # sorted, always ends

    # -- queries ----------------------------------------------------------------

    def atoms(self) -> Iterator[Atom]:
        """All live atoms in ascending order."""
        for index in range(len(self._points) - 1):
            yield Atom(self._points[index], self._points[index + 1])

    def num_atoms(self) -> int:
        return len(self._points) - 1

    def atom_containing(self, address: int) -> Atom:
        """The atom covering ``address``."""
        if not SPAN_LO <= address < SPAN_HI:
            raise ValueError(f"address {address} out of span")
        index = bisect_right(self._points, address) - 1
        return Atom(self._points[index], self._points[index + 1])

    def atoms_overlapping(self, lo: int, hi: int) -> list[Atom]:
        """All atoms intersecting ``[lo, hi)``."""
        if lo >= hi:
            return []
        start = bisect_right(self._points, lo) - 1
        result = []
        for index in range(start, len(self._points) - 1):
            a_lo, a_hi = self._points[index], self._points[index + 1]
            if a_lo >= hi:
                break
            result.append(Atom(a_lo, a_hi))
        return result

    def atoms_overlapping_prefix(self, prefix: Prefix) -> list[Atom]:
        """All atoms intersecting a prefix."""
        lo, hi = prefix.interval()
        return self.atoms_overlapping(lo, hi)

    # -- mutation ----------------------------------------------------------------

    def _add_point(self, point: int) -> Atom | None:
        """Bump a cut point; returns the atom it split (or None)."""
        if point in (SPAN_LO, SPAN_HI):
            return None
        count = self._counts.get(point, 0)
        self._counts[point] = count + 1
        if count > 0:
            return None
        index = bisect_right(self._points, point) - 1
        split = Atom(self._points[index], self._points[index + 1])
        insort(self._points, point)
        return split

    def _remove_point(self, point: int) -> Atom | None:
        """Drop one reference; returns the merged atom if it vanished."""
        if point in (SPAN_LO, SPAN_HI):
            return None
        count = self._counts.get(point, 0)
        if count <= 0:
            raise ValueError(f"cut point {point} not registered")
        if count > 1:
            self._counts[point] = count - 1
            return None
        del self._counts[point]
        index = bisect_left(self._points, point)
        merged = Atom(self._points[index - 1], self._points[index + 1])
        self._points.pop(index)
        return merged

    def register(self, lo: int, hi: int) -> list[tuple[Atom, list[Atom]]]:
        """Add the boundaries of ``[lo, hi)``; returns splits.

        Each split is ``(parent_atom, [sub_atoms])`` — the sub-atoms
        jointly cover the parent.
        """
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}, {hi})")
        splits: list[tuple[Atom, list[Atom]]] = []
        for point in (lo, hi):
            parent = self._add_point(point)
            if parent is not None:
                splits.append(
                    (parent, [Atom(parent.lo, point), Atom(point, parent.hi)])
                )
        return splits

    def unregister(self, lo: int, hi: int) -> list[tuple[Atom, list[Atom]]]:
        """Drop the boundaries of ``[lo, hi)``; returns merges.

        Each merge is ``(merged_atom, [sub_atoms])`` — the sub-atoms it
        replaced.
        """
        if lo >= hi:
            raise ValueError(f"empty interval [{lo}, {hi})")
        merges: list[tuple[Atom, list[Atom]]] = []
        for point in (lo, hi):
            merged = self._remove_point(point)
            if merged is not None:
                merges.append(
                    (merged, [Atom(merged.lo, point), Atom(point, merged.hi)])
                )
        return merges

    def register_prefix(self, prefix: Prefix) -> list[tuple[Atom, list[Atom]]]:
        """Register a prefix's interval."""
        lo, hi = prefix.interval()
        return self.register(lo, hi)

    def unregister_prefix(self, prefix: Prefix) -> list[tuple[Atom, list[Atom]]]:
        """Unregister a prefix's interval."""
        lo, hi = prefix.interval()
        return self.unregister(lo, hi)

    @classmethod
    def from_intervals(cls, intervals: Iterable[tuple[int, int]]) -> "AtomTable":
        """Bulk-build a table from many intervals."""
        table = cls()
        for lo, hi in intervals:
            table.register(lo, hi)
        return table

    def __str__(self) -> str:
        return f"AtomTable({self.num_atoms()} atoms)"
