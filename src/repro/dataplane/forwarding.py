"""Per-atom forwarding behaviour, with ACLs applied.

:class:`DataPlane` owns the atom table and a lazy cache of per-atom,
per-router :class:`Action` values.  An action is what one router does
with packets of one atom: forward to neighbours (ECMP), deliver onto a
connected subnet, drop explicitly (null route or ACL deny), or have no
matching entry at all (an implicit drop — a *blackhole* in reports).

ACL handling: ACLs bound to interfaces contribute their rules'
destination boundaries to the atom table, so within one atom each
bound ACL is constant (PERMIT, DENY, or MIXED — the latter when the
decision depends on non-destination fields).  An egress ACL denying
the atom kills the corresponding forward target; a MIXED verdict keeps
the target but marks the action, and reports surface the ambiguity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.acl import Acl, AclAction
from repro.dataplane.atoms import Atom, AtomTable
from repro.dataplane.fib import Fib, FibEntry
from repro.net.addr import Prefix


class TargetKind(enum.Enum):
    """What happens to a packet on one path out of a router."""

    FORWARD = "forward"
    DELIVER = "deliver"
    DROP = "drop"


@dataclass(frozen=True, order=True)
class Target:
    """One outcome of a router's action (one ECMP leg)."""

    kind: TargetKind
    neighbor: str | None = None
    interface: str | None = None

    def __str__(self) -> str:
        if self.kind is TargetKind.FORWARD:
            return f"->{self.neighbor}[{self.interface}]"
        return self.kind.value


@dataclass(frozen=True)
class Action:
    """A router's complete behaviour for one atom."""

    targets: frozenset[Target]
    mixed: bool = False  # some ACL verdict depended on non-dst fields

    def forward_neighbors(self) -> frozenset[str]:
        """Neighbours reachable on some ECMP leg."""
        return frozenset(
            t.neighbor
            for t in self.targets
            if t.kind is TargetKind.FORWARD and t.neighbor is not None
        )

    def delivers(self) -> bool:
        """True if some leg delivers locally."""
        return any(t.kind is TargetKind.DELIVER for t in self.targets)

    def is_blackhole(self) -> bool:
        """True if no entry matched at all (implicit drop)."""
        return not self.targets

    def drops_everything(self) -> bool:
        """True if every leg (if any) discards."""
        return bool(self.targets) and all(
            t.kind is TargetKind.DROP for t in self.targets
        )


NO_MATCH = Action(frozenset())


class DataPlane:
    """The atom-decomposed forwarding state of a whole snapshot."""

    def __init__(self, snapshot, fibs: dict[str, Fib]) -> None:
        self.snapshot = snapshot
        self.fibs = fibs
        self.atom_table = AtomTable()
        # Per-atom action cache: atom -> router -> Action.  Populated
        # lazily; routers absent from an atom's map are recomputed on
        # demand.
        self._actions: dict[Atom, dict[str, Action]] = {}
        self._register_initial_intervals()

    # -- construction -------------------------------------------------------

    def _register_initial_intervals(self) -> None:
        for fib in self.fibs.values():
            for entry in fib.entries():
                self.atom_table.register_prefix(entry.prefix)
        for router, interface, _direction, acl in self._acl_bindings():
            for rule in acl.rules:
                lo, hi = rule.dst.interval()
                self.atom_table.register(lo, hi)

    def _acl_bindings(self):
        """(router, interface, direction, Acl) for every live binding."""
        for router, config in self.snapshot.configs.items():
            for interface_name, settings in config.interfaces.items():
                for direction, name in (
                    ("in", settings.acl_in),
                    ("out", settings.acl_out),
                ):
                    if name is None:
                        continue
                    acl = config.acls.get(name)
                    if acl is None:
                        continue  # dangling binding: treated as absent
                    yield router, interface_name, direction, acl

    # -- action computation ----------------------------------------------------

    def action(self, router: str, atom: Atom) -> Action:
        """The (cached) behaviour of ``router`` for ``atom``."""
        per_atom = self._actions.setdefault(atom, {})
        cached = per_atom.get(router)
        if cached is None:
            cached = self._compute_action(router, atom)
            per_atom[router] = cached
        return cached

    def actions_for_atom(self, atom: Atom) -> dict[str, Action]:
        """Behaviour of every router for one atom."""
        return {
            router: self.action(router, atom)
            for router in self.snapshot.topology.router_names()
        }

    def _acl_verdict(self, router: str, acl_name: str | None, atom: Atom) -> AclAction:
        """A bound ACL's verdict for the atom (PERMIT if unbound)."""
        if acl_name is None:
            return AclAction.PERMIT
        config = self.snapshot.configs.get(router)
        if config is None:
            return AclAction.PERMIT
        acl = config.acls.get(acl_name)
        if acl is None:
            return AclAction.PERMIT
        return acl_verdict_for_interval(acl, atom.representative)

    def _compute_action(self, router: str, atom: Atom) -> Action:
        fib = self.fibs.get(router)
        if fib is None:
            return NO_MATCH
        entry = fib.lookup(atom.representative)
        if entry is None:
            return NO_MATCH
        topology = self.snapshot.topology
        config = self.snapshot.configs.get(router)
        targets: set[Target] = set()
        mixed = False
        for hop in entry.next_hops:
            if hop.drop:
                targets.add(Target(TargetKind.DROP))
                continue
            if hop.neighbor is None:
                targets.add(Target(TargetKind.DELIVER, interface=hop.interface))
                continue
            # Egress ACL on our side.
            out_verdict = AclAction.PERMIT
            if config is not None:
                settings = config.interface_config(hop.interface)
                out_verdict = self._acl_verdict(router, settings.acl_out, atom)
            if out_verdict is AclAction.DENY:
                targets.add(Target(TargetKind.DROP, interface=hop.interface))
                continue
            if out_verdict is AclAction.MIXED:
                mixed = True
            # Ingress ACL on the neighbour's receiving interface.
            in_verdict = AclAction.PERMIT
            peer = topology.interface_peer(router, hop.interface)
            if peer is not None:
                peer_config = self.snapshot.configs.get(peer.router)
                if peer_config is not None:
                    peer_settings = peer_config.interface_config(peer.name)
                    in_verdict = self._acl_verdict(
                        peer.router, peer_settings.acl_in, atom
                    )
            if in_verdict is AclAction.DENY:
                targets.add(Target(TargetKind.DROP, interface=hop.interface))
                continue
            if in_verdict is AclAction.MIXED:
                mixed = True
            targets.add(
                Target(
                    TargetKind.FORWARD,
                    neighbor=hop.neighbor,
                    interface=hop.interface,
                )
            )
        return Action(targets=frozenset(targets), mixed=mixed)

    # -- incremental maintenance ---------------------------------------------

    def _apply_structure(
        self,
        splits: list[tuple[Atom, list[Atom]]],
        merges: list[tuple[Atom, list[Atom]]],
    ) -> set[Atom]:
        """Propagate atom splits/merges through the action cache.

        Sub-atoms of a split inherit the parent's cached actions (the
        parent was uniform, so any router whose FIB/ACLs did not change
        behaves identically on the halves).  Merged atoms start cold.
        Returns the set of structurally new atoms.
        """
        structural: set[Atom] = set()
        for parent, subs in splits:
            inherited = self._actions.pop(parent, None)
            for sub in subs:
                structural.add(sub)
                if inherited is not None:
                    self._actions[sub] = dict(inherited)
        for merged, subs in merges:
            for sub in subs:
                self._actions.pop(sub, None)
            structural.add(merged)
        return structural

    def update_fib_entry(
        self, router: str, prefix: Prefix, entry: FibEntry | None
    ) -> set[Atom]:
        """Install/replace/remove one FIB entry; returns dirty atoms.

        Dirty atoms are those whose forwarding graph may have changed:
        atoms overlapping the prefix (the router's action there is
        invalidated) plus atoms created or destroyed by cut-point
        changes.
        """
        fib = self.fibs.setdefault(router, Fib(router))
        had = prefix in fib
        if entry is None:
            if not had:
                return set()
            fib.remove(prefix)
            merges = self.atom_table.unregister_prefix(prefix)
            structural = self._apply_structure([], merges)
        else:
            fib.install(entry)
            splits: list[tuple[Atom, list[Atom]]] = []
            if not had:
                splits = self.atom_table.register_prefix(prefix)
            structural = self._apply_structure(splits, [])
        lo, hi = prefix.interval()
        dirty = set(self.atom_table.atoms_overlapping(lo, hi)) | structural
        for atom in dirty:
            per_atom = self._actions.get(atom)
            if per_atom is not None:
                per_atom.pop(router, None)
        return dirty

    def acl_interval_structure(
        self, lo: int, hi: int, register: bool
    ) -> set[Atom]:
        """Maintain atom *boundaries* for one ACL rule interval.

        Registers/unregisters the interval's cut points so atoms stay
        aligned with the ACL's verdict boundaries.  Split sub-atoms
        inherit their parent's actions (the boundary itself does not
        change behaviour); only structurally new atoms are returned.
        Behaviour invalidation is separate — see
        :meth:`invalidate_span` — because a permit rule's boundaries
        must not dirty regions whose verdict did not change.
        """
        if register:
            splits = self.atom_table.register(lo, hi)
            return self._apply_structure(splits, [])
        merges = self.atom_table.unregister(lo, hi)
        return self._apply_structure([], merges)

    def invalidate_span(self, lo: int, hi: int) -> set[Atom]:
        """Drop all cached actions in ``[lo, hi)``; returns the atoms.

        Used for ACL verdict changes, which can affect both ends of a
        link (egress ACL here, ingress ACL on the peer) — per-router
        surgery is not worth the bookkeeping.
        """
        dirty = set(self.atom_table.atoms_overlapping(lo, hi))
        for atom in dirty:
            self._actions.pop(atom, None)
        return dirty

    def invalidate_router(self, router: str) -> None:
        """Forget every cached action of one router (config rewired)."""
        for per_atom in self._actions.values():
            per_atom.pop(router, None)

    def stats(self) -> dict[str, int]:
        """Counters for reports and benchmarks."""
        return {
            "atoms": self.atom_table.num_atoms(),
            "fib_entries": sum(len(fib) for fib in self.fibs.values()),
            "routers": len(self.fibs),
        }


def acl_verdict_for_interval(acl: Acl, representative: int) -> AclAction:
    """The ACL's projected verdict at one destination address.

    Valid for a whole atom when the atom table contains the ACL's rule
    boundaries (the projection is constant between boundaries).
    """
    for interval_set, action in acl.project_dst():
        if interval_set.contains(representative):
            return action
    return AclAction.DENY  # unreachable: projection covers the space
