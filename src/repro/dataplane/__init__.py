"""Data-plane analysis: FIBs, atoms, reachability.

The forwarding state of every router is decomposed into *atoms* —
maximal destination-address intervals on which every FIB and every
bound ACL behaves uniformly (the delta-net construction).  Each atom
has one forwarding graph over the routers; reachability, loop, and
blackhole questions are answered per atom and aggregated.

The incremental path maintains the atom table under FIB/ACL deltas:
cut points are reference-counted, split atoms inherit the actions of
their parent for routers whose FIB did not change, and per-atom
reachability is recomputed only for atoms whose forwarding graph
actually changed.
"""

from repro.dataplane.fib import Fib, FibEntry
from repro.dataplane.atoms import Atom, AtomTable
from repro.dataplane.forwarding import Action, DataPlane, TargetKind
from repro.dataplane.reachability import AtomReachability, ReachabilityIndex

__all__ = [
    "Action",
    "Atom",
    "AtomReachability",
    "AtomTable",
    "DataPlane",
    "Fib",
    "FibEntry",
    "ReachabilityIndex",
    "TargetKind",
]
