"""Topology generators for the evaluation families.

Each generator returns a :class:`Fabric`: the wired topology plus the
structural metadata (router roles, host subnets, pod membership) that
the scenario builders in :mod:`repro.workloads` need to attach protocol
configuration.  Address assignment is deterministic: point-to-point
links draw /31s from ``10.0.0.0/8``, host subnets draw /24s from
``172.16.0.0/12``, and loopbacks draw /32s from ``192.168.0.0/16``, all
in creation order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, Prefix
from repro.topology.model import Topology, TopologyError

P2P_POOL = Prefix("10.0.0.0/8")
HOST_POOL = Prefix("172.16.0.0/12")
LOOPBACK_POOL = Prefix("192.168.0.0/16")


@dataclass
class Fabric:
    """A generated topology plus structural metadata.

    - ``roles`` maps router name -> role string (``core``, ``agg``,
      ``edge``, ``wan``, ...).
    - ``host_subnets`` maps edge router -> the /24s it serves (the
      destinations reachability questions are asked about).
    - ``pods`` maps pod index -> router names (fat-tree only).
    - ``kind`` records which generator produced the fabric.
    """

    topology: Topology
    kind: str
    roles: dict[str, str] = field(default_factory=dict)
    host_subnets: dict[str, list[Prefix]] = field(default_factory=dict)
    pods: dict[int, list[str]] = field(default_factory=dict)

    def routers_with_role(self, role: str) -> list[str]:
        """All routers carrying ``role``."""
        return [name for name, r in self.roles.items() if r == role]

    def all_host_subnets(self) -> list[Prefix]:
        """Every host subnet in the fabric, in a stable order."""
        subnets: list[Prefix] = []
        for router in sorted(self.host_subnets):
            subnets.extend(self.host_subnets[router])
        return subnets


class AddressAllocator:
    """Deterministic sequential address allocation from fixed pools."""

    def __init__(self) -> None:
        self._next_p2p = P2P_POOL.first
        self._next_host = HOST_POOL.first
        self._next_loopback = LOOPBACK_POOL.first

    def p2p_pair(self) -> tuple[IPv4Address, IPv4Address, int]:
        """Two addresses of a fresh /31 and the prefix length (31)."""
        base = self._next_p2p
        self._next_p2p += 2
        if self._next_p2p > P2P_POOL.last + 1:
            raise TopologyError("p2p address pool exhausted")
        return IPv4Address(base), IPv4Address(base + 1), 31

    def host_subnet(self) -> Prefix:
        """A fresh /24 host subnet."""
        base = self._next_host
        self._next_host += 256
        if self._next_host > HOST_POOL.last + 1:
            raise TopologyError("host subnet pool exhausted")
        return Prefix(base, 24)

    def loopback(self) -> IPv4Address:
        """A fresh /32 loopback address."""
        value = self._next_loopback
        self._next_loopback += 1
        if self._next_loopback > LOOPBACK_POOL.last + 1:
            raise TopologyError("loopback pool exhausted")
        return IPv4Address(value)


def _wire(
    topology: Topology,
    allocator: AddressAllocator,
    router1: str,
    router2: str,
    index1: int,
    index2: int,
) -> None:
    """Cable router1.eth<index1> to router2.eth<index2> over a /31."""
    addr1, addr2, length = allocator.p2p_pair()
    name1, name2 = f"eth{index1}", f"eth{index2}"
    topology.add_interface(router1, name1, addr1, length)
    topology.add_interface(router2, name2, addr2, length)
    topology.add_link(router1, name1, router2, name2)


def _attach_host_subnet(
    fabric: Fabric, allocator: AddressAllocator, router: str, index: int
) -> Prefix:
    """Add a host-facing interface carrying a fresh /24 to ``router``."""
    subnet = allocator.host_subnet()
    gateway = IPv4Address(subnet.first + 1)
    fabric.topology.add_interface(router, f"host{index}", gateway, 24)
    fabric.host_subnets.setdefault(router, []).append(subnet)
    return subnet


def _add_loopback(topology: Topology, allocator: AddressAllocator, router: str) -> None:
    topology.add_interface(router, "lo0", allocator.loopback(), 32)


def fat_tree(k: int, host_subnets_per_edge: int = 1) -> Fabric:
    """A k-ary fat-tree data-center fabric (k even, k >= 2).

    Produces ``(k/2)**2`` core routers and ``k`` pods of ``k/2``
    aggregation plus ``k/2`` edge routers.  Every edge router serves
    ``host_subnets_per_edge`` /24 subnets.  Total routers:
    ``5k**2/4``.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    fabric = Fabric(Topology(), kind=f"fat_tree_k{k}")
    topology = fabric.topology
    allocator = AddressAllocator()

    cores = [f"core{i}" for i in range(half * half)]
    for core in cores:
        topology.add_router(core)
        fabric.roles[core] = "core"
        _add_loopback(topology, allocator, core)

    for pod in range(k):
        aggs = [f"agg{pod}_{i}" for i in range(half)]
        edges = [f"edge{pod}_{i}" for i in range(half)]
        fabric.pods[pod] = aggs + edges
        for router in aggs + edges:
            topology.add_router(router)
            _add_loopback(topology, allocator, router)
        for router in aggs:
            fabric.roles[router] = "agg"
        for router in edges:
            fabric.roles[router] = "edge"

        # Edge <-> agg full bipartite inside the pod.
        for e_index, edge in enumerate(edges):
            for a_index, agg in enumerate(aggs):
                _wire(topology, allocator, edge, agg, a_index, e_index)
        # Agg <-> core: agg i uplinks to cores [i*half, (i+1)*half).
        for a_index, agg in enumerate(aggs):
            for uplink in range(half):
                core = cores[a_index * half + uplink]
                _wire(topology, allocator, agg, core, half + uplink, pod)
        # Host subnets on edges.
        for edge in edges:
            for subnet_index in range(host_subnets_per_edge):
                _attach_host_subnet(fabric, allocator, edge, subnet_index)

    return fabric


# The Internet2 / Abilene research WAN: nine PoPs, the classic link map.
_INTERNET2_NODES = (
    "SEAT", "LOSA", "SALT", "HOUS", "KANS", "CHIC", "ATLA", "WASH", "NEWY",
)
_INTERNET2_LINKS = (
    ("SEAT", "LOSA"), ("SEAT", "SALT"),
    ("LOSA", "HOUS"), ("LOSA", "SALT"),
    ("SALT", "KANS"), ("HOUS", "KANS"), ("HOUS", "ATLA"),
    ("KANS", "CHIC"), ("CHIC", "NEWY"), ("CHIC", "ATLA"),
    ("ATLA", "WASH"), ("WASH", "NEWY"),
)


def internet2(host_subnets_per_pop: int = 2) -> Fabric:
    """The Internet2 (Abilene) research WAN: 9 PoPs, 12 links.

    Every PoP serves ``host_subnets_per_pop`` /24 customer subnets;
    scenario builders attach eBGP customers on top of this fabric.
    """
    fabric = Fabric(Topology(), kind="internet2")
    topology = fabric.topology
    allocator = AddressAllocator()
    for node in _INTERNET2_NODES:
        topology.add_router(node)
        fabric.roles[node] = "wan"
        _add_loopback(topology, allocator, node)
    port_counter = {node: 0 for node in _INTERNET2_NODES}
    for left, right in _INTERNET2_LINKS:
        _wire(topology, allocator, left, right, port_counter[left], port_counter[right])
        port_counter[left] += 1
        port_counter[right] += 1
    for node in _INTERNET2_NODES:
        for index in range(host_subnets_per_pop):
            _attach_host_subnet(fabric, allocator, node, index)
    return fabric


# A GÉANT-like European research WAN: 22 PoPs.  The link map follows
# the published GÉANT core topology's shape (dual rings west/east with
# cross-links); exact fidelity to a given year is not claimed —
# DESIGN.md documents the approximation.
_GEANT_NODES = (
    "LON", "AMS", "BRU", "PAR", "GEN", "FRA", "MIL", "MAD", "LIS",
    "DUB", "CPH", "STO", "HEL", "TAL", "RIG", "KAU", "WAR", "PRA",
    "VIE", "BUD", "BUC", "ATH",
)
_GEANT_LINKS = (
    ("LON", "AMS"), ("LON", "PAR"), ("LON", "DUB"),
    ("AMS", "BRU"), ("AMS", "FRA"), ("AMS", "CPH"),
    ("BRU", "PAR"),
    ("PAR", "GEN"), ("PAR", "MAD"),
    ("GEN", "MIL"), ("GEN", "FRA"),
    ("FRA", "CPH"), ("FRA", "PRA"), ("FRA", "VIE"),
    ("MIL", "VIE"), ("MIL", "MAD"),
    ("MAD", "LIS"), ("LIS", "LON"),
    ("DUB", "AMS"),
    ("CPH", "STO"), ("STO", "HEL"), ("HEL", "TAL"),
    ("TAL", "RIG"), ("RIG", "KAU"), ("KAU", "WAR"),
    ("WAR", "PRA"), ("PRA", "VIE"), ("VIE", "BUD"),
    ("BUD", "BUC"), ("BUC", "ATH"), ("ATH", "MIL"),
    ("STO", "FRA"), ("WAR", "FRA"), ("BUD", "PRA"),
)


def geant(host_subnets_per_pop: int = 1) -> Fabric:
    """A GÉANT-like European WAN: 22 PoPs, 34 links."""
    fabric = Fabric(Topology(), kind="geant")
    topology = fabric.topology
    allocator = AddressAllocator()
    for node in _GEANT_NODES:
        topology.add_router(node)
        fabric.roles[node] = "wan"
        _add_loopback(topology, allocator, node)
    port_counter = {node: 0 for node in _GEANT_NODES}
    for left, right in _GEANT_LINKS:
        _wire(topology, allocator, left, right, port_counter[left], port_counter[right])
        port_counter[left] += 1
        port_counter[right] += 1
    for node in _GEANT_NODES:
        for index in range(host_subnets_per_pop):
            _attach_host_subnet(fabric, allocator, node, index)
    return fabric


def line(n: int, host_subnets_per_router: int = 1) -> Fabric:
    """A chain of ``n`` routers: r0 -- r1 -- ... -- r(n-1)."""
    if n < 1:
        raise TopologyError("line needs at least one router")
    fabric = Fabric(Topology(), kind=f"line_{n}")
    allocator = AddressAllocator()
    names = [f"r{i}" for i in range(n)]
    for name in names:
        fabric.topology.add_router(name)
        fabric.roles[name] = "node"
        _add_loopback(fabric.topology, allocator, name)
    for i in range(n - 1):
        _wire(fabric.topology, allocator, names[i], names[i + 1], 1, 0)
    for name in names:
        for index in range(host_subnets_per_router):
            _attach_host_subnet(fabric, allocator, name, index)
    return fabric


def ring(n: int, host_subnets_per_router: int = 1) -> Fabric:
    """A cycle of ``n`` routers (n >= 3)."""
    if n < 3:
        raise TopologyError("ring needs at least three routers")
    fabric = Fabric(Topology(), kind=f"ring_{n}")
    allocator = AddressAllocator()
    names = [f"r{i}" for i in range(n)]
    for name in names:
        fabric.topology.add_router(name)
        fabric.roles[name] = "node"
        _add_loopback(fabric.topology, allocator, name)
    for i in range(n):
        _wire(fabric.topology, allocator, names[i], names[(i + 1) % n], 1, 0)
    for name in names:
        for index in range(host_subnets_per_router):
            _attach_host_subnet(fabric, allocator, name, index)
    return fabric


def star(n_leaves: int, host_subnets_per_leaf: int = 1) -> Fabric:
    """A hub router with ``n_leaves`` spokes."""
    if n_leaves < 1:
        raise TopologyError("star needs at least one leaf")
    fabric = Fabric(Topology(), kind=f"star_{n_leaves}")
    allocator = AddressAllocator()
    fabric.topology.add_router("hub")
    fabric.roles["hub"] = "hub"
    _add_loopback(fabric.topology, allocator, "hub")
    for i in range(n_leaves):
        leaf = f"leaf{i}"
        fabric.topology.add_router(leaf)
        fabric.roles[leaf] = "leaf"
        _add_loopback(fabric.topology, allocator, leaf)
        _wire(fabric.topology, allocator, "hub", leaf, i, 0)
        for index in range(host_subnets_per_leaf):
            _attach_host_subnet(fabric, allocator, leaf, index)
    return fabric


def grid(rows: int, cols: int, host_subnets_per_router: int = 0) -> Fabric:
    """A rows x cols mesh; router ``g<r>_<c>`` links right and down."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    fabric = Fabric(Topology(), kind=f"grid_{rows}x{cols}")
    allocator = AddressAllocator()
    for r in range(rows):
        for c in range(cols):
            name = f"g{r}_{c}"
            fabric.topology.add_router(name)
            fabric.roles[name] = "node"
            _add_loopback(fabric.topology, allocator, name)
    for r in range(rows):
        for c in range(cols):
            name = f"g{r}_{c}"
            if c + 1 < cols:
                _wire(fabric.topology, allocator, name, f"g{r}_{c + 1}", 0, 1)
            if r + 1 < rows:
                _wire(fabric.topology, allocator, name, f"g{r + 1}_{c}", 2, 3)
    if host_subnets_per_router:
        for r in range(rows):
            for c in range(cols):
                for index in range(host_subnets_per_router):
                    _attach_host_subnet(fabric, allocator, f"g{r}_{c}", index)
    return fabric


def random_gnm(
    n: int,
    m: int,
    seed: int = 0,
    host_subnets_per_router: int = 1,
    ensure_connected: bool = True,
) -> Fabric:
    """A random graph with ``n`` routers and ``m`` extra links.

    With ``ensure_connected`` (the default) a random spanning tree is
    wired first, then ``m`` additional distinct router pairs are
    cabled, so the fabric is connected whenever ``n >= 1``.
    """
    if n < 1:
        raise TopologyError("random graph needs at least one router")
    rng = random.Random(seed)
    fabric = Fabric(Topology(), kind=f"gnm_{n}_{m}_s{seed}")
    allocator = AddressAllocator()
    names = [f"r{i}" for i in range(n)]
    for name in names:
        fabric.topology.add_router(name)
        fabric.roles[name] = "node"
        _add_loopback(fabric.topology, allocator, name)

    port = {name: 0 for name in names}
    wired: set[frozenset[str]] = set()

    def cable(a: str, b: str) -> None:
        _wire(fabric.topology, allocator, a, b, port[a], port[b])
        port[a] += 1
        port[b] += 1
        wired.add(frozenset((a, b)))

    if ensure_connected and n > 1:
        shuffled = names[:]
        rng.shuffle(shuffled)
        for i in range(1, n):
            cable(shuffled[i], shuffled[rng.randrange(i)])

    attempts = 0
    added = 0
    max_edges = n * (n - 1) // 2
    while added < m and len(wired) < max_edges and attempts < 50 * (m + 1):
        attempts += 1
        a, b = rng.sample(names, 2)
        if frozenset((a, b)) in wired:
            continue
        cable(a, b)
        added += 1

    for name in names:
        for index in range(host_subnets_per_router):
            _attach_host_subnet(fabric, allocator, name, index)
    return fabric
