"""Routers, interfaces, links, and the topology graph.

The topology is *physical only*: it knows which interfaces exist and
which pairs of interfaces are cabled together, plus an enabled flag per
link (the subject of ``LinkUp``/``LinkDown`` changes).  Protocol
configuration lives in :mod:`repro.config`; address assignment is done
by the generators but stored here on the interface, because both the
control plane (connected routes) and the data plane (subnet ownership)
need it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.net.addr import IPv4Address, Prefix


class TopologyError(ValueError):
    """Raised for malformed topology operations."""


@dataclass
class Interface:
    """A router interface, optionally numbered.

    ``address``/``prefix_length`` describe the interface subnet; a
    loopback or unnumbered interface leaves them ``None``.
    """

    router: str
    name: str
    address: IPv4Address | None = None
    prefix_length: int | None = None

    @property
    def key(self) -> tuple[str, str]:
        """Globally unique (router, interface-name) pair."""
        return (self.router, self.name)

    @property
    def subnet(self) -> Prefix | None:
        """The connected subnet, or None if unnumbered."""
        if self.address is None or self.prefix_length is None:
            return None
        return Prefix(self.address.value, self.prefix_length)

    def __str__(self) -> str:
        suffix = f" {self.address}/{self.prefix_length}" if self.address else ""
        return f"{self.router}[{self.name}]{suffix}"


@dataclass(frozen=True)
class Link:
    """An undirected point-to-point link between two interfaces.

    Endpoints are stored in sorted order so that the same cable always
    produces the same :class:`Link` value regardless of argument order.
    """

    side_a: tuple[str, str]
    side_b: tuple[str, str]

    @staticmethod
    def of(end1: tuple[str, str], end2: tuple[str, str]) -> "Link":
        """Build a link with canonical endpoint ordering."""
        if end1 == end2:
            raise TopologyError(f"link endpoints identical: {end1}")
        a, b = sorted((end1, end2))
        return Link(a, b)

    @property
    def routers(self) -> tuple[str, str]:
        """The two routers joined by the link."""
        return (self.side_a[0], self.side_b[0])

    def other_end(self, router: str) -> tuple[str, str]:
        """The endpoint on the far side from ``router``."""
        if self.side_a[0] == router:
            return self.side_b
        if self.side_b[0] == router:
            return self.side_a
        raise TopologyError(f"{router} is not on link {self}")

    def endpoint_on(self, router: str) -> tuple[str, str]:
        """The endpoint on ``router``'s side."""
        if self.side_a[0] == router:
            return self.side_a
        if self.side_b[0] == router:
            return self.side_b
        raise TopologyError(f"{router} is not on link {self}")

    def __str__(self) -> str:
        return (
            f"{self.side_a[0]}[{self.side_a[1]}]--"
            f"{self.side_b[0]}[{self.side_b[1]}]"
        )


@dataclass
class Router:
    """A network device: a name plus its interfaces."""

    name: str
    interfaces: dict[str, Interface] = field(default_factory=dict)

    def interface(self, name: str) -> Interface:
        """Look up one interface; raises TopologyError if missing."""
        try:
            return self.interfaces[name]
        except KeyError:
            raise TopologyError(f"{self.name} has no interface {name!r}") from None


class Topology:
    """The physical network graph.

    Mutable on purpose: snapshots clone the topology before applying
    changes.  Lookup structures (per-interface link map, adjacency) are
    maintained eagerly so queries stay O(1)/O(degree).
    """

    def __init__(self) -> None:
        self._routers: dict[str, Router] = {}
        self._links: dict[Link, bool] = {}
        self._link_by_interface: dict[tuple[str, str], Link] = {}

    # -- construction --------------------------------------------------

    def add_router(self, name: str) -> Router:
        """Create a router; idempotent if it already exists."""
        if name not in self._routers:
            self._routers[name] = Router(name)
        return self._routers[name]

    def add_interface(
        self,
        router: str,
        name: str,
        address: IPv4Address | str | int | None = None,
        prefix_length: int | None = None,
    ) -> Interface:
        """Create an interface on ``router`` (router auto-created)."""
        device = self.add_router(router)
        if name in device.interfaces:
            raise TopologyError(f"{router} already has interface {name!r}")
        if address is not None and not isinstance(address, IPv4Address):
            address = IPv4Address(address)
        interface = Interface(router, name, address, prefix_length)
        device.interfaces[name] = interface
        return interface

    def add_link(
        self,
        router1: str,
        interface1: str,
        router2: str,
        interface2: str,
        enabled: bool = True,
    ) -> Link:
        """Cable two existing interfaces together."""
        for router, interface in ((router1, interface1), (router2, interface2)):
            self.router(router).interface(interface)  # validates existence
            key = (router, interface)
            if key in self._link_by_interface:
                raise TopologyError(f"interface {key} already cabled")
        link = Link.of((router1, interface1), (router2, interface2))
        self._links[link] = enabled
        self._link_by_interface[link.side_a] = link
        self._link_by_interface[link.side_b] = link
        return link

    # -- mutation -------------------------------------------------------

    def set_link_enabled(self, link: Link, enabled: bool) -> None:
        """Administratively enable or disable a link."""
        if link not in self._links:
            raise TopologyError(f"unknown link {link}")
        self._links[link] = enabled

    # -- queries --------------------------------------------------------

    def router(self, name: str) -> Router:
        """Look up one router; raises TopologyError if missing."""
        try:
            return self._routers[name]
        except KeyError:
            raise TopologyError(f"unknown router {name!r}") from None

    def has_router(self, name: str) -> bool:
        """True if a router with this name exists."""
        return name in self._routers

    def routers(self) -> Iterator[Router]:
        """All routers, in insertion order."""
        return iter(self._routers.values())

    def router_names(self) -> list[str]:
        """All router names, in insertion order."""
        return list(self._routers)

    def links(self, include_disabled: bool = False) -> Iterator[Link]:
        """All links (by default only enabled ones)."""
        for link, enabled in self._links.items():
            if enabled or include_disabled:
                yield link

    def link_enabled(self, link: Link) -> bool:
        """True if the link is administratively up."""
        if link not in self._links:
            raise TopologyError(f"unknown link {link}")
        return self._links[link]

    def link_of_interface(self, router: str, interface: str) -> Link | None:
        """The link cabled to an interface, or None if uncabled."""
        return self._link_by_interface.get((router, interface))

    def find_link(self, router1: str, router2: str) -> Link | None:
        """The first enabled link between two routers, if any."""
        for link in self.links():
            if set(link.routers) == {router1, router2}:
                return link
        return None

    def neighbors(self, router: str) -> Iterator[tuple[str, Link]]:
        """(neighbor router, link) pairs over enabled links."""
        device = self.router(router)
        for name in device.interfaces:
            link = self._link_by_interface.get((router, name))
            if link is None or not self._links[link]:
                continue
            yield link.other_end(router)[0], link

    def interface_peer(self, router: str, interface: str) -> Interface | None:
        """The interface on the far end of an enabled link, if any."""
        link = self._link_by_interface.get((router, interface))
        if link is None or not self._links[link]:
            return None
        peer_router, peer_interface = link.other_end(router)
        return self.router(peer_router).interface(peer_interface)

    def connected_subnets(self, router: str) -> Iterator[tuple[Interface, Prefix]]:
        """Numbered interfaces and their subnets for one router."""
        for interface in self.router(router).interfaces.values():
            subnet = interface.subnet
            if subnet is not None:
                yield interface, subnet

    def num_routers(self) -> int:
        """Router count."""
        return len(self._routers)

    def num_links(self, include_disabled: bool = False) -> int:
        """Link count (enabled only unless asked otherwise)."""
        if include_disabled:
            return len(self._links)
        return sum(1 for enabled in self._links.values() if enabled)

    # -- copying --------------------------------------------------------

    def clone(self) -> "Topology":
        """A deep copy sharing no mutable state with the original."""
        copy = Topology()
        for router in self._routers.values():
            copy.add_router(router.name)
            for interface in router.interfaces.values():
                copy.add_interface(
                    interface.router,
                    interface.name,
                    interface.address,
                    interface.prefix_length,
                )
        for link, enabled in self._links.items():
            copy.add_link(
                link.side_a[0], link.side_a[1],
                link.side_b[0], link.side_b[1],
                enabled=enabled,
            )
        return copy

    def __str__(self) -> str:
        return (
            f"Topology({self.num_routers()} routers, "
            f"{self.num_links(include_disabled=True)} links)"
        )


def validate_addressing(topology: Topology) -> list[str]:
    """Sanity-check address assignment; returns a list of problems.

    Checks that both ends of every link sit in the same subnet and
    carry distinct addresses.  Generators are expected to produce a
    clean bill; the config text parser uses this to flag bad input.
    """
    problems: list[str] = []
    for link in topology.links(include_disabled=True):
        ends = []
        for router, name in (link.side_a, link.side_b):
            ends.append(topology.router(router).interface(name))
        first, second = ends
        if first.subnet is None or second.subnet is None:
            continue  # unnumbered link: nothing to check
        if first.subnet != second.subnet:
            problems.append(
                f"link {link}: subnet mismatch {first.subnet} vs {second.subnet}"
            )
        elif first.address == second.address:
            problems.append(f"link {link}: duplicate address {first.address}")
    return problems
