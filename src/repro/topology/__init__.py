"""Network topology substrate.

A :class:`~repro.topology.model.Topology` is the physical layer of a
snapshot: routers, their interfaces, and point-to-point links.  The
:mod:`~repro.topology.generators` module builds the topology families
used throughout the evaluation (fat-tree fabrics, the Internet2 WAN,
random graphs, rings, grids, stars, lines), assigning addresses from
deterministic allocation pools so runs are reproducible.
"""

from repro.topology.model import Interface, Link, Router, Topology, TopologyError
from repro.topology.generators import (
    fat_tree,
    grid,
    internet2,
    line,
    random_gnm,
    ring,
    star,
)

__all__ = [
    "Interface",
    "Link",
    "Router",
    "Topology",
    "TopologyError",
    "fat_tree",
    "grid",
    "internet2",
    "line",
    "random_gnm",
    "ring",
    "star",
]
