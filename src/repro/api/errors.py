"""The public exception surface of :mod:`repro.api`.

One importable home for everything the facade, the serializer, and the
service raise on purpose::

    ReproError                      # catch-all base
    ├── SchemaError                 # (also ValueError) bad document version/kind
    ├── ConvergenceError            # (also RuntimeError) base failed to converge
    ├── InvalidChangeError          # (also ValueError) change/argument misfit
    │   ├── ChangeError             #   edit cannot apply to this snapshot
    │   └── ChangeParseError        #   malformed change script (line context)
    └── ProtocolError               # (also ValueError) malformed service frame

Each class double-inherits from the stdlib exception it historically
was, so legacy ``except ValueError`` call sites keep catching.  The
service layer maps this hierarchy onto structured error frames by
class name (see :mod:`repro.service.protocol`), and clients re-raise
the matching class on their side — errors round-trip the wire typed.
"""

from repro.core.change import ChangeError
from repro.core.change_text import ChangeParseError
from repro.core.errors import (
    ConvergenceError,
    InvalidChangeError,
    ProtocolError,
    ReproError,
    SchemaError,
)

__all__ = [
    "ChangeError",
    "ChangeParseError",
    "ConvergenceError",
    "InvalidChangeError",
    "ProtocolError",
    "ReproError",
    "SchemaError",
]
