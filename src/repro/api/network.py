"""The :class:`Network` session facade.

One object wraps the whole differential toolchain — a snapshot, the
converged analyzer state, what-if forking, campaigns, packet queries,
and invariant checking — behind a small typed surface::

    net = Network.generate("fat_tree", size=4)
    outage = ChangeSet("fail spine").link_down("agg0_0", "core0")

    report = net.preview(outage)          # fork-backed, non-committing
    violations = net.check(report, ["loop-freedom"])
    net.apply(outage)                     # commits; state advances

    trace = net.trace("edge0_0", "172.16.3.1")
    campaign = net.campaign(scenarios, jobs=4)

Every outcome object (:class:`~repro.core.delta.DeltaReport`,
:class:`~repro.campaign.report.CampaignReport`,
:class:`~repro.query.trace.PacketTrace`,
:class:`~repro.query.paths.PathDiff`,
:class:`~repro.core.invariants.Violation`) serializes through
``to_dict()/from_dict()`` with a ``schema_version`` field, so results
round-trip through JSON byte-stably across process and service
boundaries.

Convergence is lazy: constructing a ``Network`` is free, and the first
method that needs converged state pays for one simulation.  All later
calls reuse that warm state — including campaign workers, which fork
from it instead of re-simulating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence, Union

from repro.api.errors import ConvergenceError, InvalidChangeError, ReproError
from repro.campaign.report import CampaignReport
from repro.campaign.runner import CampaignRunner
from repro.campaign.scenarios import WhatIfScenario
from repro.controlplane.simulation import NetworkState
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change
from repro.core.delta import DeltaReport
from repro.core.invariants import (
    Invariant,
    Violation,
    _check_invariants,
    make_invariant,
)
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.obs import NULL_TRACER, EventLog, MetricsRegistry, Tracer
from repro.query.paths import ForwardingPaths, PathDiff, _forwarding_paths
from repro.query.trace import PacketTrace, _trace_packet
from repro.topology.model import Topology
from repro.workloads.scenarios import Scenario

from repro.api.changeset import ChangeSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.client import ServiceClient

ChangeLike = Union[Change, ChangeSet]
ChangesLike = Union[ChangeLike, Sequence[ChangeLike]]
InvariantLike = Union[Invariant, str]
DestinationLike = Union[IPv4Address, int, str]

TOPOLOGY_KINDS = ("fat_tree", "ring", "line", "random", "geant", "internet2")


def _as_change(change: ChangeLike) -> Change:
    if isinstance(change, ChangeSet):
        return change.build()
    return change


def _as_changes(changes: ChangesLike) -> list[Change]:
    if isinstance(changes, (Change, ChangeSet)):
        return [_as_change(changes)]
    return [_as_change(change) for change in changes]


def _as_dst(dst: DestinationLike) -> int:
    if isinstance(dst, int):
        return dst
    if isinstance(dst, str):
        return IPv4Address(dst).value
    return dst.value


def _resolve_invariants(
    invariants: Iterable[InvariantLike],
) -> list[Invariant]:
    resolved: list[Invariant] = []
    for invariant in invariants:
        if isinstance(invariant, str):
            resolved.append(make_invariant(invariant))
        else:
            resolved.append(invariant)
    return resolved


class Network:
    """Typed session facade over one converged network model.

    This is *the* supported entry point for analysis: construct it
    from a snapshot, topology, on-disk directory, or generator, then
    ask differential questions against the shared converged state.
    """

    def __init__(
        self,
        snapshot: Snapshot,
        trace: "Tracer | bool" = False,
    ) -> None:
        self.snapshot = snapshot
        # Generator metadata (roles, host subnets) when built via
        # :meth:`generate`; the campaign enumerators consume it.
        self.scenario: Scenario | None = None
        self._analyzer: DifferentialNetworkAnalyzer | None = None
        # Observability: ``trace=True`` records a span tree for every
        # analysis on this session (``trace=`` also accepts a caller's
        # Tracer); the default null tracer records nothing.  The work
        # metrics registry is always on — it only counts.
        if isinstance(trace, Tracer):
            self._tracer = trace
        else:
            self._tracer = Tracer() if trace else NULL_TRACER
        self._metrics = MetricsRegistry()
        # Structured event log: provenance-enabled analyses append
        # span/metric/provenance records here under monotonic sequence
        # numbers.  Always attached, populated only on demand.
        self._events = EventLog()
        # The campaign runner (and its encoded base payload) is cached
        # across :meth:`campaign` calls with equal configuration, so a
        # service answering many campaign requests encodes the base
        # once; :meth:`close` releases it.
        self._runner: CampaignRunner | None = None
        self._runner_key: tuple[Any, ...] | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls, snapshot: Snapshot, trace: "Tracer | bool" = False
    ) -> "Network":
        """Wrap an in-memory snapshot (topology + device configs)."""
        return cls(snapshot, trace=trace)

    @classmethod
    def from_topology(
        cls, topology: Topology, trace: "Tracer | bool" = False
    ) -> "Network":
        """Wrap a bare topology with empty device configurations."""
        return cls(Snapshot(topology=topology), trace=trace)

    @classmethod
    def from_analyzer(cls, analyzer: DifferentialNetworkAnalyzer) -> "Network":
        """Adopt an already-converged analyzer (no re-simulation).

        The analyzer's tracer and metrics registry are adopted too, so
        spans recorded before and after adoption land in one tree.
        """
        network = cls(analyzer.snapshot)
        network._analyzer = analyzer
        network._tracer = analyzer.tracer
        network._metrics = analyzer.metrics
        if analyzer.events is not None:
            network._events = analyzer.events
        else:
            analyzer.events = network._events
        return network

    @classmethod
    def load(cls, directory: str, trace: "Tracer | bool" = False) -> "Network":
        """Load a snapshot saved with :meth:`save` / ``Snapshot.save``."""
        return cls(Snapshot.load(directory), trace=trace)

    @classmethod
    def generate(
        cls,
        topology: str = "fat_tree",
        size: int = 4,
        seed: int = 0,
        edges: int | None = None,
        trace: "Tracer | bool" = False,
    ) -> "Network":
        """A configured built-in scenario network.

        ``topology`` is one of :data:`TOPOLOGY_KINDS`; ``size`` is the
        fat-tree arity or router count, ``seed``/``edges`` parameterize
        the random generator.  The generator metadata (roles, host
        subnets) stays available as :attr:`scenario` for the campaign
        enumerators.
        """
        from repro.workloads import scenarios as builders

        scenario: Scenario
        if topology == "fat_tree":
            scenario = builders.fat_tree_ospf(size)
        elif topology == "ring":
            scenario = builders.ring_ospf(size)
        elif topology == "line":
            scenario = builders.line_static(size)
        elif topology == "random":
            if edges is None:
                edges = size + size // 2
            scenario = builders.random_ospf(size, edges, seed=seed)
        elif topology == "geant":
            scenario = builders.geant_ospf()
        elif topology == "internet2":
            scenario = builders.internet2_bgp()
        else:
            raise InvalidChangeError(
                f"unknown topology {topology!r}; known: {TOPOLOGY_KINDS}"
            )
        network = cls(scenario.snapshot, trace=trace)
        network.scenario = scenario
        return network

    @staticmethod
    def connect(address: str) -> "ServiceClient":
        """A client session against a running what-if service.

        ``address`` is ``host:port`` (TCP) or a filesystem path (Unix
        socket) of a ``repro serve`` daemon.  The returned
        :class:`~repro.service.client.ServiceClient` speaks the
        newline-delimited versioned-JSON frame protocol and mirrors
        the facade's query surface — ``preview``/``analyze_batch``/
        ``campaign``/``explain`` return the same result types this
        class does, decoded from the same versioned documents.  Use it
        as a context manager, like the in-process facade.
        """
        from repro.service.client import ServiceClient

        return ServiceClient.connect(address)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release everything the session holds beyond the snapshot.

        Drops the converged analyzer (and with it any fork journal),
        the cached campaign runner and its encoded base payload, and
        the recorded spans/events.  The facade stays usable — the next
        analysis re-converges — but a ``with Network...`` block exits
        with the heavy state gone.
        """
        if self._runner is not None:
            self._runner.close()
        self._runner = None
        self._runner_key = None
        self._analyzer = None
        self._events = EventLog()
        if self._tracer is not NULL_TRACER:
            self._tracer = Tracer()

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- converged state -----------------------------------------------------

    @property
    def analyzer(self) -> DifferentialNetworkAnalyzer:
        """The underlying differential analyzer (converges on first use).

        A snapshot the simulator cannot converge raises
        :class:`~repro.api.errors.ConvergenceError` (chaining the
        underlying failure) instead of leaking engine internals.
        """
        if self._analyzer is None:
            try:
                self._analyzer = DifferentialNetworkAnalyzer(
                    self.snapshot,
                    tracer=self._tracer,
                    metrics=self._metrics,
                    events=self._events,
                )
            except ReproError:
                raise
            except Exception as error:
                raise ConvergenceError(
                    f"base network failed to converge: {error}"
                ) from error
        return self._analyzer

    # -- observability -------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The session tracer (the null tracer unless ``trace=`` set)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """Cumulative work metrics across every analysis on this session."""
        return self._metrics

    @property
    def events(self) -> EventLog:
        """The session's structured event log.

        Provenance-enabled analyses (``apply``/``preview`` with
        ``provenance=True``) append span, metric, and provenance
        records here; export with ``events.to_dict()`` (versioned
        JSON) or ``events.to_jsonl()``.
        """
        return self._events

    def profile(self) -> dict[str, Any]:
        """The recorded span tree as a versioned JSON document.

        Meaningful after analyses on a session constructed with
        ``trace=True`` (or an explicit tracer); the null tracer yields
        an empty span list.
        """
        return self._tracer.to_dict()

    @property
    def state(self) -> NetworkState:
        """The converged control/data-plane state."""
        return self.analyzer.state

    def converged(self) -> bool:
        """True once the one-time simulation has run."""
        return self._analyzer is not None

    def summary(self) -> str:
        """One-line description of the snapshot."""
        return self.snapshot.summary()

    def save(self, directory: str) -> None:
        """Write the (current) snapshot to a config directory."""
        self.snapshot.save(directory)

    # -- differential analysis -----------------------------------------------

    def changeset(self, label: str = "") -> ChangeSet:
        """A fresh fluent :class:`ChangeSet` builder (convenience)."""
        return ChangeSet(label)

    def apply(
        self,
        change: ChangesLike,
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Commit a change — or a whole batch of changes — and return
        everything it (they) did.

        Accepts one :class:`Change`/:class:`ChangeSet` or a sequence of
        them.  A sequence is analyzed **batched**: every edit applies
        to control-plane state first, the per-change dirty sets are
        unioned, and scoped recomputation plus the differential data
        plane run exactly once — equal output to applying the changes
        sequentially (``counters["edits_batched"]`` records the batch
        size), at a fraction of the cost.  The network's converged
        state advances to the post-change network; subsequent queries
        see the change applied.

        ``provenance=True`` attributes every delta to the edits that
        (may have) caused it and streams structured records into
        :attr:`events` — see :meth:`DeltaReport.why`.
        """
        return self.analyzer.analyze_batch(
            _as_changes(change), label=label, provenance=provenance
        )

    def preview(
        self,
        change: ChangesLike,
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Evaluate a change (or batch of changes) without committing.

        Fork-backed: the report is identical to :meth:`apply` of the
        same change(s), but the converged state rolls back afterwards —
        also when the change fails to apply.  Sequences run through the
        same single-recompute batch pipeline as :meth:`apply`.
        ``provenance=True`` behaves exactly as in :meth:`apply`; the
        provenance record and event-log records survive the rollback.
        """
        return self.analyzer.what_if_batch(
            _as_changes(change), label=label, provenance=provenance
        )

    def campaign(
        self,
        scenarios: Sequence[WhatIfScenario],
        jobs: int = 1,
        backend: str | None = None,
        invariants: Sequence[InvariantLike] | None = None,
        monitored: Sequence[Prefix] | None = None,
        with_signatures: bool = True,
        label: str = "",
        provenance: bool = False,
        with_spans: bool = False,
    ) -> CampaignReport:
        """Batch what-if analysis of many scenarios against this state.

        Workers fork the warm converged state per scenario (serial
        backend) or unpickle one replica each (``jobs > 1``); the
        report is byte-identical either way.  ``backend`` selects
        ``"serial"`` or ``"multiprocessing"`` explicitly; by default
        ``jobs`` decides.  Batches of one scenario always run serially
        (there is nothing to parallelize) — check ``report.backend``
        for what actually ran.  ``invariants`` accepts instances or
        registered names; ``monitored`` scopes blast-radius ranking to
        the given prefixes.  ``provenance=True`` attributes every
        scenario's deltas and violations to its edits (outcome
        ``causes``) and merges per-worker event logs into
        ``report.events``; ``with_spans=True`` records per-scenario
        span forests for ``report.chrome_trace()``.
        """
        if backend is not None:
            if backend == "serial":
                jobs = 1
            elif backend == "multiprocessing":
                jobs = max(jobs, 2)
            else:
                raise InvalidChangeError(
                    f"unknown backend {backend!r}; "
                    "expected 'serial' or 'multiprocessing'"
                )
        # Runner reuse: equal configuration means the runner (and its
        # cached encoded-base payload) can serve this call too — a
        # service answering many campaign requests encodes the base
        # once per generation instead of once per request.  Invariant
        # *instances* key by identity; the key holds the instances
        # themselves (not id()) so a dead invariant's recycled address
        # can never alias a live one into a stale runner.
        key = (
            tuple(invariants or []),
            with_signatures,
            label,
            tuple(str(p) for p in monitored) if monitored is not None else None,
            provenance,
            with_spans,
        )
        if self._runner is None or self._runner_key != key:
            self._runner = CampaignRunner.from_analyzer(
                self.analyzer,
                invariants=_resolve_invariants(invariants or []),
                with_signatures=with_signatures,
                label=label or self.snapshot.summary(),
                monitored=list(monitored) if monitored is not None else None,
                provenance=provenance,
                with_spans=with_spans,
            )
            self._runner_key = key
        return self._runner.run(list(scenarios), jobs=jobs)

    # -- queries -------------------------------------------------------------

    def trace(
        self,
        source: str,
        dst: DestinationLike,
        src: DestinationLike | None = None,
        proto: int | None = None,
        dport: int | None = None,
        max_hops: int = 64,
    ) -> PacketTrace:
        """Follow one concrete packet from ``source`` to its fates.

        ``dst``/``src`` accept dotted-quad strings, addresses, or raw
        ints; unset header fields are wildcard-ish zeros.
        """
        packet: dict[str, int] = {"dst": _as_dst(dst)}
        if src is not None:
            packet["src"] = _as_dst(src)
        if proto is not None:
            packet["proto"] = proto
        if dport is not None:
            packet["dport"] = dport
        return _trace_packet(self.state, source, packet, max_hops)

    def paths(
        self, source: str, dst: DestinationLike, max_hops: int = 64
    ) -> ForwardingPaths:
        """The forwarding DAG from ``source`` for one destination."""
        edges, delivered = _forwarding_paths(
            self.state, source, _as_dst(dst), max_hops
        )
        return ForwardingPaths(source=source, edges=edges, delivered=delivered)

    def path_diff(
        self, change: ChangeLike, source: str, dst: DestinationLike
    ) -> PathDiff:
        """How a change would move the (source, destination) DAG.

        Fork-backed like :meth:`preview`: the change is applied
        speculatively, the post-change DAG extracted, and the state
        rolled back.
        """
        address = _as_dst(dst)
        before = self.paths(source, address)
        analyzer = self.analyzer
        with analyzer.fork():
            analyzer.analyze(_as_change(change))
            after_edges, after_delivered = _forwarding_paths(
                analyzer.state, source, address
            )
        return PathDiff(
            added_edges=after_edges - before.edges,
            removed_edges=before.edges - after_edges,
            reachable_before=before.delivered,
            reachable_after=after_delivered,
        )

    # -- invariants ----------------------------------------------------------

    def check(
        self,
        report: DeltaReport,
        invariants: Sequence[InvariantLike],
    ) -> list[Violation]:
        """Violations a change introduced or repaired.

        ``invariants`` mixes instances and registered names (see
        :func:`repro.core.invariants.register_invariant`); verdicts
        come back flat, in invariant order.
        """
        violations: list[Violation] = []
        for invariant in _resolve_invariants(invariants):
            violations.extend(invariant.check(report))
        return violations

    def check_by_invariant(
        self,
        report: DeltaReport,
        invariants: Sequence[InvariantLike],
    ) -> Mapping[str, list[Violation]]:
        """Like :meth:`check`, grouped by invariant name (non-empty only)."""
        return _check_invariants(report, _resolve_invariants(invariants))

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:
        converged = "converged" if self.converged() else "not converged"
        return f"Network({self.snapshot.summary()}; {converged})"
