"""The unified session API: one typed entry point for everything.

The repo's engines — the differential analyzer, the campaign runner,
the packet tracer, the invariant suite — grew up with four disjoint
calling idioms.  This package is the stable surface that replaces
them:

- :class:`Network` — the session facade.  Construct it once
  (``from_snapshot`` / ``from_topology`` / ``load`` / ``generate``),
  then ``apply``, ``preview``, ``campaign``, ``trace``, ``paths``,
  ``path_diff``, and ``check`` against the shared converged state.
- :class:`ChangeSet` — a fluent, typed builder over every primitive
  edit, compiling to one atomic change batch.
- The invariant **registry** — ``register_invariant`` /
  ``make_invariant`` / ``registered_invariants`` let services refer to
  invariants by name and users plug in their own.
- The change-handler **registry** — ``register_change_handler`` /
  ``registered_change_handlers`` (from :mod:`repro.core.handlers`)
  let workloads add whole new change kinds to the analysis pipeline
  without touching the analyzer.
- Versioned results — every outcome type carries
  ``to_dict()/from_dict()`` with a ``schema_version`` field
  (:mod:`repro.core.serialize`); :class:`SchemaError` rejects unknown
  versions, so payloads cross service boundaries safely.

Typical session::

    from repro.api import ChangeSet, Network

    net = Network.generate("fat_tree", size=4)
    drain = ChangeSet("drain").link_down("agg0_0", "core0")

    report = net.preview(drain)                   # non-committing
    assert not net.check(report, ["loop-freedom"])
    payload = report.to_dict()                    # versioned JSON
"""

from repro.api.changeset import ChangeSet
from repro.api.errors import (
    ChangeError,
    ChangeParseError,
    ConvergenceError,
    InvalidChangeError,
    ProtocolError,
    ReproError,
    SchemaError,
)
from repro.api.network import Network
from repro.core.handlers import (
    register_change_handler,
    registered_change_handlers,
)
from repro.core.invariants import (
    Invariant,
    Violation,
    invariant_class,
    make_invariant,
    register_invariant,
    registered_invariants,
)
from repro.core.serialize import SCHEMA_VERSION
from repro.obs import MetricsRegistry, NullTracer, Tracer

__all__ = [
    "ChangeError",
    "ChangeParseError",
    "ChangeSet",
    "ConvergenceError",
    "Invariant",
    "InvalidChangeError",
    "MetricsRegistry",
    "Network",
    "NullTracer",
    "ProtocolError",
    "ReproError",
    "SCHEMA_VERSION",
    "SchemaError",
    "Tracer",
    "Violation",
    "invariant_class",
    "make_invariant",
    "register_change_handler",
    "register_invariant",
    "registered_change_handlers",
    "registered_invariants",
]
