"""Shared causality-query answering over a provenance record.

``repro explain`` (CLI) and the ``explain`` service op answer the same
questions — which edits changed one FIB/RIB entry, everything one edit
caused, behaviour changes toward an address, violations attributed to
edits.  This module holds the one implementation both surfaces call:
:func:`explain_answer` builds the structured JSON answer *and* the
human-readable rendering in one pass, so the two outputs can never
drift apart.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.api.errors import InvalidChangeError
from repro.core.delta import DeltaReport
from repro.core.invariants import Violation
from repro.net.addr import IPv4Address
from repro.obs.provenance import ProvenanceRecord


def explain_answer(
    record: ProvenanceRecord,
    report: DeltaReport | None = None,
    violations: Sequence[Violation] = (),
    edit: int | None = None,
    router: str | None = None,
    prefix: str | None = None,
    dst: str | None = None,
    top: int = 10,
) -> tuple[dict[str, Any], list[str]]:
    """Answer causality queries against one provenance record.

    Returns ``(answer, lines)``: the structured answer payload (the
    CLI's ``--json`` body and the service's ``explain-answer``
    document) and its text rendering.  With no query arguments the
    answer is the edit-table headline.  Bad arguments (unknown edit
    id, half an entry query, a malformed address) raise
    :class:`~repro.api.errors.InvalidChangeError`.
    """
    answer: dict[str, Any] = {"label": record.label}
    lines: list[str] = []

    queried = False
    if edit is not None:
        queried = True
        try:
            attribution = record.attribution(edit)
        except KeyError as error:
            raise InvalidChangeError(str(error.args[0])) from None
        answer["edit"] = attribution
        info = record.edit(edit)
        lines.append(f"{info} caused:")
        lines.append(f"  {len(attribution['rib'])} RIB changes, "
                     f"{len(attribution['fib'])} FIB changes, "
                     f"{len(attribution['acl_spans'])} ACL spans")
        for entry_router, entry_prefix in attribution["fib"][:top]:
            lines.append(f"    fib {entry_router} {entry_prefix}")
    if router is not None or prefix is not None:
        if router is None or prefix is None:
            raise InvalidChangeError(
                "--router and --prefix go together (one FIB/RIB entry)"
            )
        queried = True
        ids = sorted(record.entry_causes(router, prefix))
        answer["entry"] = {"router": router, "prefix": prefix, "edits": ids}
        header = f"{router} / {prefix}"
        if ids:
            lines.append(f"{header} changed because of:")
            lines.extend(f"  {line}" for line in record.describe(ids))
        else:
            lines.append(f"{header}: no recorded cause (entry unchanged)")
    if dst is not None:
        queried = True
        try:
            value = IPv4Address(dst).value
        except ValueError as error:
            raise InvalidChangeError(str(error)) from None
        ids = sorted(record.causes_over(value, value + 1))
        answer["dst"] = {"address": dst, "edits": ids}
        if ids:
            lines.append(f"behaviour toward {dst} changed because of:")
            lines.extend(f"  {line}" for line in record.describe(ids))
        else:
            lines.append(f"behaviour toward {dst} did not change")
    if violations:
        assert report is not None
        attributed: list[dict[str, Any]] = []
        for violation in violations:
            causes = sorted(info.edit_id for info in report.why(violation))
            attributed.append(
                {
                    "invariant": violation.invariant,
                    "detail": violation.detail,
                    "repaired": violation.repaired,
                    "edits": causes,
                }
            )
            lines.append(f"{violation}")
            lines.extend(
                f"  caused by {line}" for line in record.describe(causes)
            )
        answer["violations"] = attributed
    if not queried and not violations:
        # No specific query: show the edit table, the causal headline.
        answer["edits"] = [info.to_payload() for info in record.edits]
        lines.append(
            f"provenance {record.label!r}: {len(record.edits)} edits, "
            f"{len(record.rib_causes)} RIB / {len(record.fib_causes)} FIB "
            f"cause sets, {len(record.acl_causes)} ACL spans"
        )
        lines.extend(f"  {info}" for info in record.edits)
        lines.append("query with --router/--prefix, --dst, or --edit N")

    return answer, lines
