"""Fluent builder over the primitive edit vocabulary.

A :class:`ChangeSet` accumulates edits through chainable, typed
methods and compiles to one atomic :class:`~repro.core.change.Change`
batch::

    change = (
        ChangeSet("drain agg0_0")
        .link_down("agg0_0", "core0")
        .set_ospf_cost("agg0_0", "eth2", 500)
        .build()
    )
    network.preview(change)

:meth:`repro.api.Network.apply` / :meth:`~repro.api.Network.preview`
accept a :class:`ChangeSet` directly, so ``build()`` is only needed
when handing the batch to lower-level machinery.  ``from_script`` /
``to_script`` bridge to the on-disk change-script format
(:mod:`repro.core.change_text`).
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.config.acl import AclAction, AclRule
from repro.config.routemap import RouteMapClause
from repro.config.routing import BgpNeighborConfig, StaticRouteConfig
from repro.core.change import (
    AddAclRule,
    AddBgpNeighbor,
    AddRouteMapClause,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    Change,
    DisableOspfInterface,
    Edit,
    EnableInterface,
    EnableOspfInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveBgpNeighbor,
    RemoveRouteMapClause,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.core.change_text import parse_change, serialize_change
from repro.net.addr import IPv4Address, Prefix

PrefixLike = Union[Prefix, str]
AddressLike = Union[IPv4Address, str]


def _prefix(value: PrefixLike) -> Prefix:
    return value if isinstance(value, Prefix) else Prefix(value)


def _address(value: AddressLike) -> IPv4Address:
    return value if isinstance(value, IPv4Address) else IPv4Address(value)


class ChangeSet:
    """Chainable builder for an atomic batch of configuration edits.

    Every method appends one primitive edit and returns ``self``.  The
    batch is ordered: edits apply in the order they were added, exactly
    like a hand-built :class:`~repro.core.change.Change`.
    """

    def __init__(self, label: str = "") -> None:
        self._label = label
        self._edits: list[Edit] = []

    # -- assembly ------------------------------------------------------------

    def label(self, label: str) -> "ChangeSet":
        """Set the human-readable label of the batch."""
        self._label = label
        return self

    def add(self, *edits: Edit) -> "ChangeSet":
        """Append pre-built edits (escape hatch for custom Edit types)."""
        self._edits.extend(edits)
        return self

    def build(self) -> Change:
        """Compile to an atomic :class:`~repro.core.change.Change`."""
        return Change(edits=list(self._edits), label=self._label)

    @classmethod
    def from_change(cls, change: Change) -> "ChangeSet":
        """Wrap an existing change batch for further chaining."""
        changeset = cls(change.label)
        changeset._edits = list(change.edits)
        return changeset

    @classmethod
    def from_script(cls, text: str, label: str = "") -> "ChangeSet":
        """Parse the on-disk change-script format."""
        return cls.from_change(parse_change(text, label=label))

    def to_script(self) -> str:
        """Serialize back to the change-script format."""
        return serialize_change(self.build())

    # -- physical layer ------------------------------------------------------

    def link_down(
        self,
        router1: str,
        router2: str,
        interface1: str | None = None,
        interface2: str | None = None,
    ) -> "ChangeSet":
        """Fail the link between two routers."""
        return self.add(LinkDown(router1, router2, interface1, interface2))

    def link_up(
        self,
        router1: str,
        router2: str,
        interface1: str | None = None,
        interface2: str | None = None,
    ) -> "ChangeSet":
        """Recover a previously failed link."""
        return self.add(LinkUp(router1, router2, interface1, interface2))

    def shutdown_interface(self, router: str, interface: str) -> "ChangeSet":
        """Administratively disable one interface."""
        return self.add(ShutdownInterface(router, interface))

    def enable_interface(self, router: str, interface: str) -> "ChangeSet":
        """Re-enable a previously shut down interface."""
        return self.add(EnableInterface(router, interface))

    # -- static routes -------------------------------------------------------

    def add_static_route(
        self,
        router: str,
        prefix: PrefixLike,
        next_hop: AddressLike | None = None,
        interface: str | None = None,
        drop: bool = False,
    ) -> "ChangeSet":
        """Install a static route (next-hop, interface, or null route)."""
        route = StaticRouteConfig(
            prefix=_prefix(prefix),
            next_hop=None if next_hop is None else _address(next_hop),
            interface=interface,
            drop=drop,
        )
        return self.add(AddStaticRoute(router, route))

    def remove_static_route(
        self,
        router: str,
        prefix: PrefixLike,
        next_hop: AddressLike | None = None,
        interface: str | None = None,
        drop: bool = False,
    ) -> "ChangeSet":
        """Remove a static route (matched by value)."""
        route = StaticRouteConfig(
            prefix=_prefix(prefix),
            next_hop=None if next_hop is None else _address(next_hop),
            interface=interface,
            drop=drop,
        )
        return self.add(RemoveStaticRoute(router, route))

    # -- OSPF ----------------------------------------------------------------

    def set_ospf_cost(
        self, router: str, interface: str, cost: int
    ) -> "ChangeSet":
        """Change an interface's OSPF cost."""
        return self.add(SetOspfCost(router, interface, cost))

    def enable_ospf(
        self,
        router: str,
        interface: str,
        area: int = 0,
        cost: int = 10,
        passive: bool = False,
    ) -> "ChangeSet":
        """Start running OSPF on an interface."""
        return self.add(
            EnableOspfInterface(router, interface, area, cost, passive)
        )

    def disable_ospf(self, router: str, interface: str) -> "ChangeSet":
        """Stop running OSPF on an interface."""
        return self.add(DisableOspfInterface(router, interface))

    # -- BGP -----------------------------------------------------------------

    def announce(self, router: str, prefix: PrefixLike) -> "ChangeSet":
        """Add a BGP ``network`` statement (origination)."""
        return self.add(AnnouncePrefix(router, _prefix(prefix)))

    def withdraw(self, router: str, prefix: PrefixLike) -> "ChangeSet":
        """Remove a BGP ``network`` statement."""
        return self.add(WithdrawPrefix(router, _prefix(prefix)))

    def add_bgp_neighbor(
        self,
        router: str,
        peer_ip: AddressLike,
        remote_asn: int,
        import_policy: str | None = None,
        export_policy: str | None = None,
        next_hop_self: bool = False,
    ) -> "ChangeSet":
        """Configure a new BGP session endpoint."""
        neighbor = BgpNeighborConfig(
            peer_ip=_address(peer_ip),
            remote_asn=remote_asn,
            import_policy=import_policy,
            export_policy=export_policy,
            next_hop_self=next_hop_self,
        )
        return self.add(AddBgpNeighbor(router, neighbor))

    def remove_bgp_neighbor(
        self, router: str, peer_ip: AddressLike
    ) -> "ChangeSet":
        """Tear down a BGP session endpoint."""
        return self.add(RemoveBgpNeighbor(router, _address(peer_ip)))

    def set_local_pref(
        self, router: str, route_map: str, seq: int, local_pref: int
    ) -> "ChangeSet":
        """Rewrite the local-pref action of an existing route-map clause."""
        return self.add(SetLocalPref(router, route_map, seq, local_pref))

    def add_route_map_clause(
        self, router: str, route_map: str, clause: RouteMapClause
    ) -> "ChangeSet":
        """Insert a clause into a route map (creating the map if needed)."""
        return self.add(AddRouteMapClause(router, route_map, clause))

    def remove_route_map_clause(
        self, router: str, route_map: str, seq: int
    ) -> "ChangeSet":
        """Delete a clause from a route map."""
        return self.add(RemoveRouteMapClause(router, route_map, seq))

    # -- ACLs ----------------------------------------------------------------

    def permit(
        self,
        router: str,
        acl: str,
        dst: PrefixLike,
        src: PrefixLike | None = None,
        proto: int | None = None,
        dport: tuple[int, int] | None = None,
        position: int | None = None,
    ) -> "ChangeSet":
        """Append (or insert) a PERMIT rule in an ACL."""
        return self._acl_rule(
            AclAction.PERMIT, router, acl, dst, src, proto, dport, position
        )

    def deny(
        self,
        router: str,
        acl: str,
        dst: PrefixLike,
        src: PrefixLike | None = None,
        proto: int | None = None,
        dport: tuple[int, int] | None = None,
        position: int | None = None,
    ) -> "ChangeSet":
        """Append (or insert) a DENY rule in an ACL."""
        return self._acl_rule(
            AclAction.DENY, router, acl, dst, src, proto, dport, position
        )

    def _acl_rule(
        self,
        action: AclAction,
        router: str,
        acl: str,
        dst: PrefixLike,
        src: PrefixLike | None,
        proto: int | None,
        dport: tuple[int, int] | None,
        position: int | None,
    ) -> "ChangeSet":
        rule = AclRule(
            action=action,
            dst=_prefix(dst),
            src=None if src is None else _prefix(src),
            proto=proto,
            dport_lo=None if dport is None else dport[0],
            dport_hi=None if dport is None else dport[1],
        )
        return self.add(AddAclRule(router, acl, rule, position))

    def add_acl_rule(
        self, router: str, acl: str, rule: AclRule, position: int | None = None
    ) -> "ChangeSet":
        """Append (or insert) a pre-built rule in an ACL."""
        return self.add(AddAclRule(router, acl, rule, position))

    def remove_acl_rule(
        self, router: str, acl: str, rule: AclRule
    ) -> "ChangeSet":
        """Remove the first rule equal to ``rule`` from an ACL."""
        return self.add(RemoveAclRule(router, acl, rule))

    def bind_acl(
        self, router: str, interface: str, acl: str, direction: str = "out"
    ) -> "ChangeSet":
        """Attach an ACL to an interface."""
        return self.add(BindAcl(router, interface, acl, direction))

    def unbind_acl(
        self, router: str, interface: str, direction: str = "out"
    ) -> "ChangeSet":
        """Detach whatever ACL is bound in ``direction``."""
        return self.add(BindAcl(router, interface, None, direction))

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        """Multi-line description of the batch (see Change.describe)."""
        return self.build().describe()

    def __len__(self) -> int:
        return len(self._edits)

    def __iter__(self) -> Iterator[Edit]:
        return iter(self._edits)

    def __repr__(self) -> str:
        label = f"{self._label!r}, " if self._label else ""
        return f"ChangeSet({label}{len(self._edits)} edits)"
