"""Campaign aggregation: per-scenario outcomes and the ranked report.

Workers reduce each :class:`~repro.core.delta.DeltaReport` to a
:class:`ScenarioOutcome` — counts, invariant verdicts, and (optionally)
the behaviour signature used to prove serial/parallel agreement — so
the parallel backend ships compact records instead of full reports.
:class:`CampaignReport` collects outcomes in enumeration order and
ranks them by blast radius.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.core import serialize
from repro.core.delta import DeltaReport
from repro.core.invariants import Invariant, Violation, _check_invariants
from repro.obs import EventLog, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.scenarios import WhatIfScenario


def _cause_summary(
    report: DeltaReport,
    violations: Mapping[str, list[Violation]],
) -> dict[str, Any]:
    """JSON-ready per-scenario causality digest.

    Ships the batch's edit table, per-segment cause sets, and — the
    headline — every invariant violation attributed to the edit ids
    that (may have) caused it.  Derived entirely from deterministic
    cause maps, so it is byte-identical across backends.
    """
    record = report.provenance
    assert record is not None
    return {
        "edits": [info.to_payload() for info in record.edits],
        "segments": record.segment_causes(report.reach_segments),
        "violations": [
            {
                "invariant": name,
                "detail": violation.detail,
                "segment": [violation.segment_lo, violation.segment_hi],
                "repaired": violation.repaired,
                "edits": sorted(
                    record.causes_over(
                        violation.segment_lo, violation.segment_hi
                    )
                ),
            }
            for name, per_invariant in sorted(violations.items())
            for violation in per_invariant
        ],
    }


@dataclass
class ScenarioOutcome:
    """What one what-if scenario did to the base network."""

    name: str
    kind: str = "what-if"
    ok: bool = True
    error: str | None = None
    rib_changes: int = 0
    fib_changes: int = 0
    pairs_gained: int = 0
    pairs_lost: int = 0
    segments: int = 0
    duration: float = 0.0
    violations: dict[str, list[Violation]] = field(default_factory=dict)
    # Pair churn restricted to the campaign's monitored prefixes (e.g.
    # host subnets); None when the campaign monitors everything.  A
    # failed link's own /31 vanishing is not an outage — monitoring
    # keeps it out of the impact ranking.
    monitored_pairs_gained: int | None = None
    monitored_pairs_lost: int | None = None
    # Hashable behaviour summary (None when signatures are disabled).
    signature: tuple[Any, ...] | None = None
    # Scoped work-metrics snapshot (a MetricsRegistry payload) of this
    # scenario's evaluation.  Deterministic by the obs contract, so it
    # is identical across backends and the parent can merge snapshots
    # byte-stably in enumeration order.
    metrics: dict[str, Any] | None = None
    # Causality digest (edit table, per-segment causes, violation
    # attribution) of a provenance-enabled evaluation; None otherwise.
    causes: dict[str, Any] | None = None
    # Scoped event-log slice (raw records, scenario-local seq numbers)
    # of a provenance-enabled evaluation.  The parent report absorbs
    # slices in enumeration order, so the merged log is byte-identical
    # across backends.
    events: list[dict[str, Any]] | None = None
    # Scoped span-forest payloads (wall-clock!) recorded when the
    # campaign runs with spans on — feeds the merged chrome trace.
    # Never part of any determinism contract.
    spans: list[dict[str, Any]] | None = None

    @classmethod
    def from_report(
        cls,
        scenario: WhatIfScenario,
        report: DeltaReport,
        invariants: list[Invariant],
        with_signature: bool = True,
        monitored_spans: list[tuple[int, int]] | None = None,
        metrics: dict[str, Any] | None = None,
        events: list[dict[str, Any]] | None = None,
        spans: list[dict[str, Any]] | None = None,
    ) -> "ScenarioOutcome":
        """Reduce one delta report to an outcome record."""
        gained, lost = report.num_pair_changes()
        monitored_gained: int | None = None
        monitored_lost: int | None = None
        if monitored_spans is not None:
            monitored_gained = monitored_lost = 0
            for segment in report.reach_segments:
                if any(
                    segment.lo < hi and lo < segment.hi
                    for lo, hi in monitored_spans
                ):
                    monitored_gained += len(segment.added)
                    monitored_lost += len(segment.removed)
        violations = _check_invariants(report, invariants)
        causes = (
            _cause_summary(report, violations)
            if report.provenance is not None
            else None
        )
        return cls(
            name=scenario.name,
            kind=scenario.kind,
            rib_changes=report.num_rib_changes(),
            fib_changes=report.num_fib_changes(),
            pairs_gained=gained,
            pairs_lost=lost,
            segments=len(report.reach_segments),
            duration=report.timings.get("total", 0.0),
            violations=violations,
            monitored_pairs_gained=monitored_gained,
            monitored_pairs_lost=monitored_lost,
            signature=report.behavior_signature() if with_signature else None,
            metrics=metrics,
            causes=causes,
            events=events,
            spans=spans,
        )

    @classmethod
    def from_error(
        cls,
        scenario: WhatIfScenario,
        error: Exception,
        metrics: dict[str, Any] | None = None,
        events: list[dict[str, Any]] | None = None,
        spans: list[dict[str, Any]] | None = None,
    ) -> "ScenarioOutcome":
        """An outcome for a scenario that failed to apply."""
        return cls(
            name=scenario.name,
            kind=scenario.kind,
            ok=False,
            error=f"{type(error).__name__}: {error}",
            metrics=metrics,
            events=events,
            spans=spans,
        )

    def blast_radius(self) -> int:
        """Reachable (source, owner) pairs the change flipped.

        The headline impact metric: behaviour the network lost plus
        behaviour it gained (a leak is as much an incident as an
        outage).  When the campaign monitors specific prefixes, only
        churn touching them counts — so a link failure whose only
        effect is its own /31 disappearing ranks as a pure reroute.
        Ties are broken by FIB churn in :meth:`CampaignReport.ranked`.
        """
        if self.monitored_pairs_lost is not None:
            return self.monitored_pairs_lost + (self.monitored_pairs_gained or 0)
        return self.pairs_lost + self.pairs_gained

    def num_violations(self) -> int:
        """Introduced (non-repaired) invariant violations."""
        return sum(
            1
            for violations in self.violations.values()
            for violation in violations
            if not violation.repaired
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready fragment (the enclosing report carries the
        schema version)."""
        data: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "ok": self.ok,
            "error": self.error,
            "rib_changes": self.rib_changes,
            "fib_changes": self.fib_changes,
            "pairs_gained": self.pairs_gained,
            "pairs_lost": self.pairs_lost,
            "segments": self.segments,
            "duration": self.duration,
            "violations": {
                name: [violation.to_dict() for violation in violations]
                for name, violations in sorted(self.violations.items())
            },
            "monitored_pairs_gained": self.monitored_pairs_gained,
            "monitored_pairs_lost": self.monitored_pairs_lost,
            "signature": (
                None
                if self.signature is None
                else serialize.encode_signature(self.signature)
            ),
            "metrics": self.metrics,
        }
        # Opt-in payloads keep the base document byte-stable: the keys
        # appear only when the campaign ran with the feature enabled.
        if self.causes is not None:
            data["causes"] = self.causes
        if self.events is not None:
            data["events"] = self.events
        if self.spans is not None:
            data["spans"] = self.spans
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioOutcome":
        signature = data["signature"]
        return cls(
            name=data["name"],
            kind=data["kind"],
            ok=data["ok"],
            error=data["error"],
            rib_changes=data["rib_changes"],
            fib_changes=data["fib_changes"],
            pairs_gained=data["pairs_gained"],
            pairs_lost=data["pairs_lost"],
            segments=data["segments"],
            duration=data["duration"],
            violations={
                name: [Violation.from_dict(item) for item in violations]
                for name, violations in data["violations"].items()
            },
            monitored_pairs_gained=data["monitored_pairs_gained"],
            monitored_pairs_lost=data["monitored_pairs_lost"],
            signature=(
                None
                if signature is None
                else serialize.decode_signature(signature)
            ),
            metrics=data.get("metrics"),
            causes=data.get("causes"),
            events=data.get("events"),
            spans=data.get("spans"),
        )

    def __str__(self) -> str:
        if not self.ok:
            return f"{self.name}: ERROR {self.error}"
        if self.monitored_pairs_lost is not None:
            pairs = (
                f"-{self.monitored_pairs_lost}/+{self.monitored_pairs_gained} "
                f"monitored pairs,"
            )
        else:
            pairs = f"-{self.pairs_lost}/+{self.pairs_gained} pairs,"
        parts = [f"{self.name}:", pairs, f"{self.fib_changes} FIB changes"]
        if self.violations:
            parts.append(f"({self.num_violations()} violations)")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"ScenarioOutcome({self})"


class CampaignReport:
    """All outcomes of one campaign, in enumeration order."""

    def __init__(
        self,
        label: str = "",
        backend: str = "serial",
        jobs: int = 1,
    ) -> None:
        self.label = label
        self.backend = backend
        self.jobs = jobs
        self.outcomes: list[ScenarioOutcome] = []
        self.wall_time = 0.0
        # Merged work metrics across all outcomes (see finish()).
        self.metrics: MetricsRegistry = MetricsRegistry()
        # Merged structured event log across all provenance-enabled
        # outcomes (see finish()); empty otherwise.
        self.events: EventLog = EventLog()
        # Sanctioned stopwatch: wall_time is the one explicitly
        # labelled timing field (never a metric); comparisons
        # canonicalize it to zero (service.protocol.canonical_result).
        self._started = time.perf_counter()  # repro-lint: disable=D1

    # -- collection ----------------------------------------------------------

    def add(self, outcome: ScenarioOutcome) -> None:
        self.outcomes.append(outcome)

    def finish(self) -> "CampaignReport":
        # Same sanctioned stopwatch as __init__ (operator-facing only).
        self.wall_time = time.perf_counter() - self._started  # repro-lint: disable=D1
        # Merge per-scenario snapshots in enumeration order.  Both
        # backends add outcomes in that order and the snapshots are
        # deterministic work counts, so the merged registry — and its
        # sorted-JSON dump — is byte-identical serial vs parallel.
        merged = MetricsRegistry()
        merged.counter("campaign.scenarios").inc(len(self.outcomes))
        merged.counter("campaign.errors").inc(len(self.failed()))
        for outcome in self.outcomes:
            if outcome.metrics is not None:
                merged.merge_payload(outcome.metrics)
        self.metrics = merged
        # Per-worker event-log slices merge exactly like the metrics:
        # enumeration order, with sequence numbers reassigned densely —
        # so the merged log is byte-identical serial vs multiprocessing.
        log = EventLog()
        for outcome in self.outcomes:
            if outcome.events:
                log.absorb(outcome.events)
        self.events = log
        return self

    # -- views ----------------------------------------------------------------

    def ranked(self) -> list[ScenarioOutcome]:
        """Outcomes by descending blast radius (FIB churn, name tiebreaks)."""
        return sorted(
            (o for o in self.outcomes if o.ok),
            key=lambda o: (-o.blast_radius(), -o.fib_changes, o.name),
        )

    def violating(self) -> list[ScenarioOutcome]:
        """Outcomes that introduced at least one invariant violation."""
        return [o for o in self.outcomes if o.ok and o.num_violations()]

    def failed(self) -> list[ScenarioOutcome]:
        """Scenarios whose change could not be applied."""
        return [o for o in self.outcomes if not o.ok]

    def harmless(self) -> list[ScenarioOutcome]:
        """Scenarios that changed no behaviour at all."""
        return [
            o
            for o in self.outcomes
            if o.ok and not o.blast_radius() and not o.fib_changes
        ]

    def signatures(self) -> list[tuple[Any, ...] | None]:
        """Per-scenario behaviour signatures, enumeration order."""
        return [o.signature for o in self.outcomes]

    def total_analysis_time(self) -> float:
        """Sum of per-scenario analysis seconds (CPU work, not wall)."""
        return sum(o.duration for o in self.outcomes)

    def chrome_trace(self) -> dict[str, Any]:
        """One Chrome trace-event timeline over every scenario's spans.

        Each scenario's recorded span forest (see the runner's
        ``with_spans``) becomes one named thread on the timeline, so
        ``chrome://tracing`` / Perfetto shows the whole campaign —
        serial or multiprocessing — side by side.  Scenarios without
        spans are skipped.
        """
        events: list[dict[str, Any]] = []
        for tid, outcome in enumerate(self.outcomes):
            if not outcome.spans:
                continue
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": outcome.name},
                }
            )

            def visit(payload: Mapping[str, Any], tid: int = tid) -> None:
                events.append(
                    {
                        "name": payload["name"],
                        "ph": "X",
                        "ts": payload["start"] * 1e6,
                        "dur": payload["duration"] * 1e6,
                        "pid": 0,
                        "tid": tid,
                        "args": {
                            key: payload["labels"][key]
                            for key in sorted(payload["labels"])
                        },
                    }
                )
                for child in payload["children"]:
                    visit(child, tid)

            for root in outcome.spans:
                visit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # -- rendering -------------------------------------------------------------

    def summary(self, top: int = 10) -> str:
        """Human-readable digest: headline counts + top blast radii."""
        lines = [
            f"Campaign({self.label or 'unlabelled'}): "
            f"{len(self.outcomes)} scenarios via {self.backend} "
            f"backend (jobs={self.jobs}) in {self.wall_time:.2f}s",
        ]
        failed = self.failed()
        violating = self.violating()
        lines.append(
            f"  impactful: {sum(1 for o in self.outcomes if o.ok and o.blast_radius())}"
            f"  reroute-only: "
            f"{sum(1 for o in self.outcomes if o.ok and not o.blast_radius() and o.fib_changes)}"
            f"  harmless: {len(self.harmless())}"
            f"  errors: {len(failed)}"
        )
        if violating:
            lines.append(f"  invariant violations in {len(violating)} scenarios:")
            for outcome in violating[:top]:
                for name, violations in sorted(outcome.violations.items()):
                    introduced = [v for v in violations if not v.repaired]
                    if introduced:
                        lines.append(
                            f"    {outcome.name}: {name} "
                            f"({len(introduced)} violations)"
                        )
        ranked = [o for o in self.ranked() if o.blast_radius()][:top]
        if ranked:
            lines.append(f"  top blast radius:")
            for outcome in ranked:
                lines.append(f"    {outcome}")
        for outcome in failed[:top]:
            lines.append(f"  {outcome}")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (see :mod:`repro.core.serialize`)."""
        payload: dict[str, Any] = {
            "label": self.label,
            "backend": self.backend,
            "jobs": self.jobs,
            "wall_time": self.wall_time,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "metrics": self.metrics.to_payload(),
        }
        if len(self.events):
            payload["events"] = self.events.to_payload()
        return serialize.document("campaign-report", payload)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignReport":
        """Rebuild a report; raises SchemaError on unknown versions."""
        serialize.check_document(data, "campaign-report")
        report = cls(
            label=data["label"], backend=data["backend"], jobs=data["jobs"]
        )
        report.wall_time = data["wall_time"]
        for outcome in data["outcomes"]:
            report.add(ScenarioOutcome.from_dict(outcome))
        if "metrics" in data:
            report.metrics = MetricsRegistry.from_payload(data["metrics"])
        if "events" in data:
            report.events.absorb(data["events"])
        return report

    def __str__(self) -> str:
        return self.summary()

    def __repr__(self) -> str:
        return (
            f"CampaignReport({self.label!r}: {len(self.outcomes)} outcomes, "
            f"{len(self.violating())} violating, {len(self.failed())} failed, "
            f"backend={self.backend!r})"
        )

    def __len__(self) -> int:
        return len(self.outcomes)
