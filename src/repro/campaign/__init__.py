"""Campaign engine: parallel batch what-if analysis.

A *campaign* evaluates a batch of independent candidate changes or
failure scenarios against one converged base network and aggregates
the outcomes: which scenarios break invariants, which merely reroute,
and how big each blast radius is.

- :mod:`~repro.campaign.scenarios` — deterministic scenario
  enumerators (all single-link failures, sampled k-link failures,
  per-device ACL sweeps, BGP policy sweeps) built on
  :mod:`repro.workloads`.
- :mod:`~repro.campaign.runner` — :class:`CampaignRunner`: a serial
  backend reusing one forkable analyzer
  (:meth:`~repro.core.analyzer.DifferentialNetworkAnalyzer.what_if`)
  and a ``multiprocessing`` backend with per-worker analyzer replicas
  seeded from one pickled base state.
- :mod:`~repro.campaign.report` — per-scenario outcomes and the
  :class:`CampaignReport` aggregate (invariant violations, blast
  radius ranking).

CLI: ``python -m repro campaign``.
"""

from repro.campaign.report import CampaignReport, ScenarioOutcome
from repro.campaign.runner import CampaignRunner
from repro.campaign.scenarios import (
    WhatIfScenario,
    acl_block_sweep,
    all_single_link_failures,
    bgp_policy_sweep,
    sampled_k_link_failures,
)

__all__ = [
    "CampaignReport",
    "CampaignRunner",
    "ScenarioOutcome",
    "WhatIfScenario",
    "acl_block_sweep",
    "all_single_link_failures",
    "bgp_policy_sweep",
    "sampled_k_link_failures",
]
