"""What-if scenario enumeration for campaigns.

Each generator walks a configured :class:`~repro.workloads.scenarios.Scenario`
and yields :class:`WhatIfScenario` values — a name, a kind tag, and the
:class:`~repro.core.change.Change` to evaluate.  Generators are
deterministic (the sampled ones take an explicit seed) so campaign runs
are reproducible and serial/parallel backends see the same batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config.acl import AclAction, AclRule
from repro.core.change import (
    AddAclRule,
    BindAcl,
    Change,
    LinkDown,
    SetLocalPref,
)
from repro.net.addr import Prefix
from repro.topology.model import Link
from repro.workloads.scenarios import Scenario

PERMIT_ALL = AclRule(action=AclAction.PERMIT, dst=Prefix("0.0.0.0/0"))


@dataclass(frozen=True)
class WhatIfScenario:
    """One candidate change to score against the base network."""

    name: str
    change: Change
    kind: str = "what-if"
    # Free-form labels generators attach (e.g. the failed link names).
    tags: tuple[str, ...] = field(default_factory=tuple)
    # Multi-edit scenarios may carry their constituent changes split
    # out (e.g. one Change per failed link); the runner evaluates the
    # whole tuple in one batched recompute pass (``what_if_batch``),
    # which is equivalent to — and cheaper than — ``change``.
    changes: tuple[Change, ...] = ()

    def batch(self) -> tuple[Change, ...]:
        """The changes the runner evaluates, always non-empty."""
        return self.changes if self.changes else (self.change,)

    def __str__(self) -> str:
        return f"{self.kind}: {self.name}"

    def __repr__(self) -> str:
        tags = f", tags={list(self.tags)}" if self.tags else ""
        return (
            f"WhatIfScenario({self.name!r}, kind={self.kind!r}, "
            f"{len(self.change)} edits{tags})"
        )


def _core_links(
    scenario: Scenario, include_customer_links: bool
) -> list[Link]:
    links: list[Link] = []
    for link in scenario.topology.links():
        if not include_customer_links:
            roles = {
                scenario.fabric.roles.get(router, "node")
                for router in link.routers
            }
            if "customer" in roles:
                continue
        links.append(link)
    return links


def _fail_link_change(link: Link) -> Change:
    (r1, i1), (r2, i2) = link.side_a, link.side_b
    return Change.of(LinkDown(r1, r2, i1, i2), label=f"fail {link}")


def all_single_link_failures(
    scenario: Scenario, include_customer_links: bool = False
) -> list[WhatIfScenario]:
    """One scenario per enabled link: that link fails.

    Customer uplinks are excluded by default — they are single points
    of attachment by construction and would drown the ranking.
    """
    return [
        WhatIfScenario(
            name=f"fail {link}",
            change=_fail_link_change(link),
            kind="link-failure",
            tags=tuple(sorted(link.routers)),
        )
        for link in _core_links(scenario, include_customer_links)
    ]


def sampled_k_link_failures(
    scenario: Scenario,
    k: int = 2,
    samples: int = 20,
    seed: int = 0,
    include_customer_links: bool = False,
) -> list[WhatIfScenario]:
    """``samples`` distinct simultaneous ``k``-link failures, seeded.

    Exhaustive k-subsets explode combinatorially; campaigns sample
    them instead.  Distinctness is by link set, so the batch never
    evaluates the same failure twice.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    links = _core_links(scenario, include_customer_links)
    if len(links) < k:
        return []
    rng = random.Random(seed)
    seen: set[frozenset[Link]] = set()
    scenarios: list[WhatIfScenario] = []
    attempts = 0
    while len(scenarios) < samples and attempts < samples * 50:
        attempts += 1
        combo = rng.sample(links, k)
        key = frozenset(combo)
        if key in seen:
            continue
        seen.add(key)
        combo = sorted(combo, key=str)
        label = " + ".join(str(link) for link in combo)
        scenarios.append(
            WhatIfScenario(
                name=f"fail {label}",
                change=Change(
                    edits=[_fail_link_change(link).edits[0] for link in combo],
                    label=f"fail {label}",
                ),
                kind=f"{k}-link-failure",
                tags=tuple(sorted({r for link in combo for r in link.routers})),
                # Split per link: the runner batches these through one
                # merged-DirtySet recompute pass.
                changes=tuple(_fail_link_change(link) for link in combo),
            )
        )
    return scenarios


def _cabled_interfaces(scenario: Scenario, router: str) -> list[str]:
    device = scenario.topology.router(router)
    return [
        interface.name
        for interface in device.interfaces.values()
        if scenario.topology.link_of_interface(router, interface.name)
        is not None
    ]


def acl_block_sweep(
    scenario: Scenario,
    routers: list[str] | None = None,
    max_scenarios: int | None = None,
) -> list[WhatIfScenario]:
    """Per-device ACL sweep: block each host subnet at each router.

    For every (router, host subnet) pair, the scenario binds a fresh
    outbound ACL — deny the subnet, permit everything else — on the
    router's first cabled interface.  The campaign then shows exactly
    which flows each candidate filter would break.
    """
    subnets = scenario.fabric.all_host_subnets()
    if routers is None:
        routers = [
            name
            for name in scenario.topology.router_names()
            if scenario.fabric.roles.get(name) != "customer"
        ]
    scenarios: list[WhatIfScenario] = []
    for router in routers:
        interfaces = _cabled_interfaces(scenario, router)
        if not interfaces:
            continue
        interface = interfaces[0]
        for subnet in subnets:
            if max_scenarios is not None and len(scenarios) >= max_scenarios:
                return scenarios
            acl_name = f"CMP_{router}_{interface}".upper()
            deny = AclRule(action=AclAction.DENY, dst=subnet)
            scenarios.append(
                WhatIfScenario(
                    name=f"{router}[{interface}] block {subnet}",
                    change=Change.of(
                        AddAclRule(router, acl_name, PERMIT_ALL),
                        AddAclRule(router, acl_name, deny, position=0),
                        BindAcl(router, interface, acl_name, "out"),
                        label=f"{router}[{interface}]: block {subnet}",
                    ),
                    kind="acl-block",
                    tags=(router, str(subnet)),
                )
            )
    return scenarios


def bgp_policy_sweep(
    scenario: Scenario, local_prefs: tuple[int, ...] = (50, 200)
) -> list[WhatIfScenario]:
    """Local-pref sweep over every policy clause that sets one.

    For each route-map clause with a ``set local-preference`` action
    and each candidate value (skipping the current one), the scenario
    rewrites that single clause — the canonical BGP policy what-if.
    """
    scenarios: list[WhatIfScenario] = []
    for router in sorted(scenario.snapshot.configs):
        config = scenario.snapshot.configs[router]
        for map_name in sorted(config.route_maps):
            route_map = config.route_maps[map_name]
            for clause in route_map.clauses:
                if clause.set_local_pref is None:
                    continue
                for pref in local_prefs:
                    if pref == clause.set_local_pref:
                        continue
                    scenarios.append(
                        WhatIfScenario(
                            name=(
                                f"{router} {map_name}[{clause.seq}] "
                                f"local-pref {clause.set_local_pref}->{pref}"
                            ),
                            change=Change.of(
                                SetLocalPref(router, map_name, clause.seq, pref),
                                label=(
                                    f"{router}: {map_name} seq {clause.seq} "
                                    f"local-pref {pref}"
                                ),
                            ),
                            kind="bgp-policy",
                            tags=(router, map_name),
                        )
                    )
    return scenarios
