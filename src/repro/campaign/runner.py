"""Campaign execution: serial and multiprocessing backends.

Both backends evaluate every scenario with
:meth:`~repro.core.analyzer.DifferentialNetworkAnalyzer.what_if`
against the same converged base state, so their per-scenario reports
are identical; the parallel backend only changes *where* the work
runs.

Serial: one forkable analyzer, evaluated in-process — zero setup cost,
ideal for small batches and interactive use.

Parallel: the converged base analyzer is encoded **once per runner**
into the chunked binary container of :mod:`repro.core.codec`
(digest-checked, compressed — several times smaller than the raw
pickle it replaced; cached across runs and invalidated by the
analyzer's ``generation`` stamp — scenarios share one base, so there
is nothing to re-encode); each worker decodes its own replica at pool
startup (no re-simulation) and then serves chunks of the scenario
queue.
Outcomes travel back as compact
:class:`~repro.campaign.report.ScenarioOutcome` records and are
reassembled in enumeration order, so ``jobs=N`` is a pure speedup with
byte-identical output.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Any

from repro.campaign.report import CampaignReport, ScenarioOutcome
from repro.campaign.scenarios import WhatIfScenario
from repro.core import codec
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import ChangeError
from repro.core.invariants import Invariant
from repro.core.snapshot import Snapshot
from repro.net.addr import Prefix
from repro.obs import EventLog, MetricsRegistry, Tracer
from repro.topology.model import TopologyError

# Worker-process globals, installed once per worker by _init_worker.
_WORKER: dict[str, Any] = {}


def _init_worker(
    payload: bytes,
    invariants: list[Invariant],
    with_signatures: bool,
    monitored_spans: list[tuple[int, int]] | None,
    provenance: bool,
    with_spans: bool,
) -> None:
    _WORKER["analyzer"] = codec.loads_base(payload)
    _WORKER["invariants"] = invariants
    _WORKER["with_signatures"] = with_signatures
    _WORKER["monitored_spans"] = monitored_spans
    _WORKER["provenance"] = provenance
    _WORKER["with_spans"] = with_spans


def _evaluate_in_worker(
    item: tuple[int, WhatIfScenario],
) -> tuple[int, ScenarioOutcome]:
    index, scenario = item
    outcome = _evaluate(
        _WORKER["analyzer"],
        scenario,
        _WORKER["invariants"],
        _WORKER["with_signatures"],
        _WORKER["monitored_spans"],
        _WORKER["provenance"],
        _WORKER["with_spans"],
    )
    return index, outcome


def _evaluate(
    analyzer: DifferentialNetworkAnalyzer,
    scenario: WhatIfScenario,
    invariants: list[Invariant],
    with_signatures: bool,
    monitored_spans: list[tuple[int, int]] | None,
    provenance: bool = False,
    with_spans: bool = False,
) -> ScenarioOutcome:
    # Each scenario evaluates against its own scoped metrics registry:
    # the snapshot ships back with the outcome (also across process
    # boundaries) and the parent merges snapshots in enumeration
    # order, so serial and multiprocessing backends aggregate to
    # byte-identical metrics.  The registry holds only deterministic
    # work counts — wall time stays in report.timings and spans.
    # Provenance-enabled campaigns scope an event log the same way
    # (its payloads are deterministic too); ``with_spans`` scopes a
    # recording tracer whose wall-clock forest feeds the chrome
    # timeline and is never part of a determinism contract.
    scoped = MetricsRegistry()
    saved = analyzer.metrics
    analyzer.metrics = scoped
    scoped_events: EventLog | None = (
        EventLog() if provenance else None
    )
    saved_events = analyzer.events
    if scoped_events is not None:
        analyzer.events = scoped_events
    scoped_tracer = Tracer() if with_spans else None
    saved_tracer = analyzer.tracer
    if scoped_tracer is not None:
        analyzer.tracer = scoped_tracer

    def _events_payload() -> list[dict[str, Any]] | None:
        return scoped_events.to_payload() if scoped_events else None

    def _spans_payload() -> list[dict[str, Any]] | None:
        if scoped_tracer is None:
            return None
        return [root.to_payload() for root in scoped_tracer.roots]

    try:
        # Multi-change scenarios batch through one merged-DirtySet
        # recompute pass; the report (and its label) is identical to
        # what_if of the combined change.
        report = analyzer.what_if_batch(
            scenario.batch(),
            label=scenario.change.label,
            provenance=provenance,
        )
    except (ChangeError, TopologyError) as error:
        # Both are "this change does not fit this network" — edits
        # raise ChangeError themselves but their topology lookups
        # (unknown router/link) raise TopologyError directly.  Either
        # way the fork rolled back; record and move on so one bad
        # scenario cannot poison the batch (or abort a worker pool).
        return ScenarioOutcome.from_error(
            scenario,
            error,
            metrics=scoped.to_payload(),
            events=_events_payload(),
            spans=_spans_payload(),
        )
    finally:
        analyzer.metrics = saved
        analyzer.events = saved_events
        analyzer.tracer = saved_tracer
    return ScenarioOutcome.from_report(
        scenario,
        report,
        invariants,
        with_signature=with_signatures,
        monitored_spans=monitored_spans,
        metrics=scoped.to_payload(),
        events=_events_payload(),
        spans=_spans_payload(),
    )


class CampaignRunner:
    """Batch what-if evaluation against one converged base state."""

    def __init__(
        self,
        snapshot: Snapshot,
        invariants: list[Invariant] | None = None,
        with_signatures: bool = True,
        label: str = "",
        monitored: list[Prefix] | None = None,
        provenance: bool = False,
        with_spans: bool = False,
    ) -> None:
        # Converging is the expensive part; do it once, up front, and
        # share the warm analyzer across runs and backends.
        self._configure(
            DifferentialNetworkAnalyzer(snapshot),
            invariants,
            with_signatures,
            label,
            monitored,
            provenance,
            with_spans,
        )

    @classmethod
    def from_analyzer(
        cls,
        analyzer: DifferentialNetworkAnalyzer,
        invariants: list[Invariant] | None = None,
        with_signatures: bool = True,
        label: str = "",
        monitored: list[Prefix] | None = None,
        provenance: bool = False,
        with_spans: bool = False,
    ) -> "CampaignRunner":
        """Wrap an existing warm analyzer instead of re-simulating."""
        runner = cls.__new__(cls)
        runner._configure(
            analyzer,
            invariants,
            with_signatures,
            label,
            monitored,
            provenance,
            with_spans,
        )
        return runner

    def _configure(
        self,
        analyzer: DifferentialNetworkAnalyzer,
        invariants: list[Invariant] | None,
        with_signatures: bool,
        label: str,
        monitored: list[Prefix] | None,
        provenance: bool = False,
        with_spans: bool = False,
    ) -> None:
        self.analyzer = analyzer
        self.invariants = list(invariants or [])
        self.with_signatures = with_signatures
        self.label = label or analyzer.snapshot.summary()
        # Provenance attributes every scenario's deltas and violations
        # to its edits and ships scoped event-log slices back with the
        # outcomes; with_spans records a per-scenario span forest for
        # the merged chrome timeline.  Both default off — they widen
        # outcome payloads.
        self.provenance = provenance
        self.with_spans = with_spans
        # The encoded base payload (codec container, not raw pickle)
        # is hoisted across runs: scenarios share one converged base,
        # so re-encoding it per run (let alone per scenario) is pure
        # waste.  ``pickle_count`` counts encodes so tests can assert
        # the hoist; the analyzer's ``generation`` stamp invalidates
        # the cache if someone commits a change on the shared base
        # between runs.
        self._base_payload: bytes | None = None
        self._base_generation: int | None = None
        self.pickle_count = 0
        # With ``monitored`` (typically the host subnets), impact
        # ranking counts only pair churn touching those prefixes —
        # infrastructure /31s disappearing with a failed link is not
        # an outage.
        self.monitored_spans = (
            [prefix.interval() for prefix in monitored]
            if monitored is not None
            else None
        )

    # ------------------------------------------------------------------

    def run(
        self,
        scenarios: list[WhatIfScenario],
        jobs: int = 1,
        chunk_size: int | None = None,
    ) -> CampaignReport:
        """Evaluate the batch with ``jobs`` workers.

        ``jobs == 1`` runs serially in-process.  Larger batches use a
        process pool; ``chunk_size`` controls work-queue granularity
        (default: enough chunks for ~4 rounds per worker).  ``jobs``
        below 1 is a configuration mistake — it falls back to the
        serial backend with a warning rather than crashing mid-batch.
        """
        if jobs < 1:
            warnings.warn(
                f"CampaignRunner.run(jobs={jobs}) is invalid; "
                "falling back to the serial backend (jobs=1)",
                RuntimeWarning,
                stacklevel=2,
            )
            jobs = 1
        scenarios = list(scenarios)
        if jobs <= 1 or len(scenarios) <= 1:
            with self.analyzer.tracer.span(
                "campaign.run", backend="serial", scenarios=len(scenarios)
            ):
                return self._run_serial(scenarios)
        with self.analyzer.tracer.span(
            "campaign.run",
            backend="multiprocessing",
            scenarios=len(scenarios),
            jobs=min(jobs, len(scenarios)),
        ):
            return self._run_parallel(scenarios, jobs, chunk_size)

    def _pickled_base(self) -> bytes:
        """The base analyzer, encoded once and cached across runs.

        The payload is the :mod:`repro.core.codec` chunk container
        (digest-checked, compressed) — the same unit the what-if
        service ships — not a raw pickle.
        """
        generation = self.analyzer.generation
        if self._base_payload is None or self._base_generation != generation:
            self._base_payload = codec.dumps_base(self.analyzer)
            self._base_generation = generation
            self.pickle_count += 1
        return self._base_payload

    def close(self) -> None:
        """Release the cached base payload (the runner stays usable —
        the next parallel run re-encodes)."""
        self._base_payload = None
        self._base_generation = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_serial(self, scenarios: list[WhatIfScenario]) -> CampaignReport:
        report = CampaignReport(self.label, backend="serial", jobs=1)
        for scenario in scenarios:
            report.add(
                _evaluate(
                    self.analyzer,
                    scenario,
                    self.invariants,
                    self.with_signatures,
                    self.monitored_spans,
                    self.provenance,
                    self.with_spans,
                )
            )
        return report.finish()

    def _run_parallel(
        self,
        scenarios: list[WhatIfScenario],
        jobs: int,
        chunk_size: int | None,
    ) -> CampaignReport:
        jobs = min(jobs, len(scenarios))
        if chunk_size is None:
            chunk_size = max(1, len(scenarios) // (jobs * 4))
        report = CampaignReport(self.label, backend="multiprocessing", jobs=jobs)
        payload = self._pickled_base()
        results: dict[int, ScenarioOutcome] = {}
        with multiprocessing.Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(
                payload,
                self.invariants,
                self.with_signatures,
                self.monitored_spans,
                self.provenance,
                self.with_spans,
            ),
        ) as pool:
            for index, outcome in pool.imap_unordered(
                _evaluate_in_worker,
                enumerate(scenarios),
                chunksize=chunk_size,
            ):
                results[index] = outcome
        for index in range(len(scenarios)):
            report.add(results[index])
        return report.finish()
