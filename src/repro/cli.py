"""Command-line interface: ``python -m repro <command>``.

Operator-facing workflow over on-disk snapshots:

- ``show <snapshot-dir>`` — snapshot summary and converged state stats.
- ``analyze <snapshot-dir> <change-script>`` — differential review of
  a change script (see :mod:`repro.core.change_text` for the format);
  ``--commit`` writes the changed snapshot back, ``--baseline`` also
  runs the snapshot-diff baseline and verifies agreement.
- ``trace <snapshot-dir> <source> <dst-ip>`` — packet trace with
  optional ``--src/--proto/--dport``.
- ``demo <directory>`` — write a small example snapshot + change
  script to play with.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.change_text import parse_change, serialize_change
from repro.core.snapshot import Snapshot


def _load(directory: str) -> Snapshot:
    try:
        return Snapshot.load(directory)
    except FileNotFoundError as error:
        raise SystemExit(f"error: cannot load snapshot: {error}")


def cmd_show(args: argparse.Namespace) -> int:
    from repro.controlplane.simulation import simulate

    snapshot = _load(args.snapshot)
    print(snapshot.summary())
    state = simulate(snapshot)
    stats = state.dataplane.stats()
    print(f"converged: {stats['fib_entries']} FIB entries, "
          f"{stats['atoms']} atoms, "
          f"{len(state.bgp_solutions)} BGP prefixes")
    for router in sorted(state.ribs)[: args.limit]:
        rib = state.ribs[router]
        print(f"  {router}: {len(rib)} routes")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.analyzer import DifferentialNetworkAnalyzer
    from repro.core.snapshot_diff import SnapshotDiff

    snapshot = _load(args.snapshot)
    with open(args.change) as handle:
        change = parse_change(handle.read(), label=args.change)
    print(change.describe())

    analyzer = DifferentialNetworkAnalyzer(snapshot)
    if args.baseline:
        baseline = SnapshotDiff(analyzer.snapshot.clone())
        reference = baseline.analyze(change)
    report = analyzer.analyze(change)
    print()
    print(report.summary())
    if args.baseline:
        agree = report.behavior_signature() == reference.behavior_signature()
        speedup = reference.timings["total"] / max(report.timings["total"], 1e-9)
        print(f"\nbaseline agrees: {agree} (speedup {speedup:.1f}x)")
        if not agree:
            return 1
    if args.commit:
        analyzer.snapshot.save(args.snapshot)
        print(f"\ncommitted to {args.snapshot}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.controlplane.simulation import simulate
    from repro.net.addr import IPv4Address
    from repro.query.trace import trace_packet

    snapshot = _load(args.snapshot)
    state = simulate(snapshot)
    packet = {"dst": IPv4Address(args.dst).value}
    if args.src:
        packet["src"] = IPv4Address(args.src).value
    if args.proto is not None:
        packet["proto"] = args.proto
    if args.dport is not None:
        packet["dport"] = args.dport
    trace = trace_packet(state, args.source, packet)
    print(trace.render())
    return 0 if trace.is_delivered() else 2


def cmd_demo(args: argparse.Namespace) -> int:
    import os

    from repro.workloads.scenarios import ring_ospf

    scenario = ring_ospf(6)
    scenario.snapshot.save(args.directory)
    script = os.path.join(args.directory, "change.dna")
    with open(script, "w") as handle:
        handle.write("# demo change: fail one ring link\nlink down r0 r1\n")
    print(f"wrote demo snapshot + change script under {args.directory}")
    print(f"try: python -m repro analyze {args.directory} {script} --baseline")
    subnet = scenario.fabric.host_subnets["r3"][0]
    gateway = str(scenario.topology.router("r3").interface("host0").address)
    print(f"try: python -m repro trace {args.directory} r0 {gateway}")
    del subnet
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Differential Network Analysis CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="summarize a snapshot")
    show.add_argument("snapshot")
    show.add_argument("--limit", type=int, default=10, help="routers to list")
    show.set_defaults(handler=cmd_show)

    analyze = commands.add_parser("analyze", help="review a change script")
    analyze.add_argument("snapshot")
    analyze.add_argument("change")
    analyze.add_argument("--commit", action="store_true",
                         help="write the changed snapshot back")
    analyze.add_argument("--baseline", action="store_true",
                         help="also run the snapshot-diff baseline and compare")
    analyze.set_defaults(handler=cmd_analyze)

    trace = commands.add_parser("trace", help="trace one packet")
    trace.add_argument("snapshot")
    trace.add_argument("source", help="injecting router")
    trace.add_argument("dst", help="destination IPv4 address")
    trace.add_argument("--src", help="source IPv4 address")
    trace.add_argument("--proto", type=int)
    trace.add_argument("--dport", type=int)
    trace.set_defaults(handler=cmd_trace)

    demo = commands.add_parser("demo", help="write a demo snapshot")
    demo.add_argument("directory")
    demo.set_defaults(handler=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
