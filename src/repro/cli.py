"""Command-line interface: ``python -m repro <command>``.

Operator-facing workflow over on-disk snapshots:

- ``show <snapshot-dir>`` — snapshot summary and converged state stats.
- ``analyze <snapshot-dir> <change-script>`` — differential review of
  a change script (see :mod:`repro.core.change_text` for the format);
  ``--commit`` writes the changed snapshot back, ``--baseline`` also
  runs the snapshot-diff baseline and verifies agreement.
- ``trace <snapshot-dir> <source> <dst-ip>`` — packet trace with
  optional ``--src/--proto/--dport``.
- ``campaign <kind>`` — batch what-if analysis over a built-in
  scenario: enumerate failures/policy candidates (``links``,
  ``k-links``, ``acl``, ``bgp``), evaluate them with forked analyzer
  state (``--jobs N`` for the multiprocessing backend), and print the
  ranked blast-radius report.
- ``demo <directory>`` — write a small example snapshot + change
  script to play with (``--topology/--size/--seed`` pick the fabric).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.change_text import parse_change, serialize_change
from repro.core.snapshot import Snapshot


def _load(directory: str) -> Snapshot:
    try:
        return Snapshot.load(directory)
    except FileNotFoundError as error:
        raise SystemExit(f"error: cannot load snapshot: {error}")


def cmd_show(args: argparse.Namespace) -> int:
    from repro.controlplane.simulation import simulate

    snapshot = _load(args.snapshot)
    print(snapshot.summary())
    state = simulate(snapshot)
    stats = state.dataplane.stats()
    print(f"converged: {stats['fib_entries']} FIB entries, "
          f"{stats['atoms']} atoms, "
          f"{len(state.bgp_solutions)} BGP prefixes")
    for router in sorted(state.ribs)[: args.limit]:
        rib = state.ribs[router]
        print(f"  {router}: {len(rib)} routes")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.analyzer import DifferentialNetworkAnalyzer
    from repro.core.snapshot_diff import SnapshotDiff

    snapshot = _load(args.snapshot)
    with open(args.change) as handle:
        change = parse_change(handle.read(), label=args.change)
    print(change.describe())

    analyzer = DifferentialNetworkAnalyzer(snapshot)
    if args.baseline:
        baseline = SnapshotDiff(analyzer.snapshot.clone())
        reference = baseline.analyze(change)
    report = analyzer.analyze(change)
    print()
    print(report.summary())
    if args.baseline:
        agree = report.behavior_signature() == reference.behavior_signature()
        speedup = reference.timings["total"] / max(report.timings["total"], 1e-9)
        print(f"\nbaseline agrees: {agree} (speedup {speedup:.1f}x)")
        if not agree:
            return 1
    if args.commit:
        analyzer.snapshot.save(args.snapshot)
        print(f"\ncommitted to {args.snapshot}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.controlplane.simulation import simulate
    from repro.net.addr import IPv4Address
    from repro.query.trace import trace_packet

    snapshot = _load(args.snapshot)
    state = simulate(snapshot)
    packet = {"dst": IPv4Address(args.dst).value}
    if args.src:
        packet["src"] = IPv4Address(args.src).value
    if args.proto is not None:
        packet["proto"] = args.proto
    if args.dport is not None:
        packet["dport"] = args.dport
    trace = trace_packet(state, args.source, packet)
    print(trace.render())
    return 0 if trace.is_delivered() else 2


def _build_scenario(name: str, size: int, edges: int | None, seed: int):
    """A named built-in scenario (shared by ``campaign`` and ``demo``)."""
    from repro.workloads import scenarios as builders

    if name == "fat_tree":
        return builders.fat_tree_ospf(size)
    if name == "ring":
        return builders.ring_ospf(size)
    if name == "line":
        return builders.line_static(size)
    if name == "random":
        if edges is None:
            edges = size + size // 2
        return builders.random_ospf(size, edges, seed=seed)
    if name == "geant":
        return builders.geant_ospf()
    if name == "internet2":
        return builders.internet2_bgp()
    raise SystemExit(f"error: unknown scenario {name!r}")


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignRunner,
        acl_block_sweep,
        all_single_link_failures,
        bgp_policy_sweep,
        sampled_k_link_failures,
    )
    from repro.core.invariants import BlackholeFreedom, LoopFreedom

    scenario = _build_scenario(args.scenario, args.size, args.edges, args.seed)
    if args.kind == "links":
        batch = all_single_link_failures(scenario)
    elif args.kind == "k-links":
        batch = sampled_k_link_failures(
            scenario, k=args.k, samples=args.samples, seed=args.seed
        )
    elif args.kind == "acl":
        batch = acl_block_sweep(scenario, max_scenarios=args.samples)
    elif args.kind == "bgp":
        batch = bgp_policy_sweep(scenario)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"error: unknown campaign kind {args.kind!r}")
    if not batch:
        print("no scenarios to evaluate")
        return 0

    host_subnets = scenario.fabric.all_host_subnets()
    invariants = [
        LoopFreedom(),
        BlackholeFreedom(monitored=host_subnets),
    ]
    print(
        f"campaign: {len(batch)} {args.kind} scenarios on "
        f"{scenario.name} ({scenario.topology.num_routers()} routers), "
        f"jobs={args.jobs}"
    )
    runner = CampaignRunner(
        scenario.snapshot,
        invariants=invariants,
        label=scenario.name,
        # Rank by host-visible impact: a failed link's own /31
        # vanishing is a reroute, not an outage.
        monitored=host_subnets,
    )
    report = runner.run(batch, jobs=args.jobs)
    print()
    print(report.summary(top=args.top))
    return 1 if report.failed() else 0


def cmd_demo(args: argparse.Namespace) -> int:
    import os

    scenario = _build_scenario(
        args.topology, args.size, args.edges, args.seed
    )
    scenario.snapshot.save(args.directory)
    link = next(iter(scenario.topology.links()))
    (r1, _i1), (r2, _i2) = link.side_a, link.side_b
    script = os.path.join(args.directory, "change.dna")
    with open(script, "w") as handle:
        handle.write(f"# demo change: fail one link\nlink down {r1} {r2}\n")
    print(f"wrote demo snapshot + change script under {args.directory}")
    print(f"try: python -m repro analyze {args.directory} {script} --baseline")
    # Suggest a multi-hop trace: inject at r1, target the host subnet
    # of a router in the middle of the listing (never r1's own
    # gateway, and in symmetric fabrics several hops away).
    owners = [
        router
        for router in scenario.topology.router_names()
        if router != r1 and scenario.fabric.host_subnets.get(router)
    ]
    if owners:
        device = scenario.topology.router(owners[len(owners) // 2])
        gateway = str(device.interface("host0").address)
        print(f"try: python -m repro trace {args.directory} {r1} {gateway}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Differential Network Analysis CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="summarize a snapshot")
    show.add_argument("snapshot")
    show.add_argument("--limit", type=int, default=10, help="routers to list")
    show.set_defaults(handler=cmd_show)

    analyze = commands.add_parser("analyze", help="review a change script")
    analyze.add_argument("snapshot")
    analyze.add_argument("change")
    analyze.add_argument("--commit", action="store_true",
                         help="write the changed snapshot back")
    analyze.add_argument("--baseline", action="store_true",
                         help="also run the snapshot-diff baseline and compare")
    analyze.set_defaults(handler=cmd_analyze)

    trace = commands.add_parser("trace", help="trace one packet")
    trace.add_argument("snapshot")
    trace.add_argument("source", help="injecting router")
    trace.add_argument("dst", help="destination IPv4 address")
    trace.add_argument("--src", help="source IPv4 address")
    trace.add_argument("--proto", type=int)
    trace.add_argument("--dport", type=int)
    trace.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign", help="batch what-if analysis over a built-in scenario"
    )
    campaign.add_argument(
        "kind",
        choices=["links", "k-links", "acl", "bgp"],
        help="what to enumerate: all single-link failures, sampled "
        "k-link failures, per-device ACL blocks, or BGP policy sweeps",
    )
    campaign.add_argument(
        "--scenario",
        default="fat_tree",
        choices=["fat_tree", "ring", "line", "random", "geant", "internet2"],
        help="built-in base network (default: fat_tree)",
    )
    campaign.add_argument(
        "--size", type=int, default=4,
        help="k for fat_tree, n for ring/line/random (default: 4)",
    )
    campaign.add_argument(
        "--edges", type=int, default=None, help="edge count for random"
    )
    campaign.add_argument(
        "--k", type=int, default=2, help="simultaneous failures for k-links"
    )
    campaign.add_argument(
        "--samples", type=int, default=20,
        help="sample budget for k-links / acl sweeps (default: 20)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial backend)",
    )
    campaign.add_argument(
        "--seed", type=int, default=0,
        help="seed for sampled scenarios and random topologies",
    )
    campaign.add_argument(
        "--top", type=int, default=10, help="rows in the ranked summary"
    )
    campaign.set_defaults(handler=cmd_campaign)

    demo = commands.add_parser("demo", help="write a demo snapshot")
    demo.add_argument("directory")
    demo.add_argument(
        "--topology",
        default="ring",
        choices=["fat_tree", "ring", "line", "random", "geant", "internet2"],
        help="fabric to generate (default: ring)",
    )
    demo.add_argument(
        "--size", type=int, default=6,
        help="k for fat_tree, n for ring/line/random (default: 6)",
    )
    demo.add_argument(
        "--edges", type=int, default=None, help="edge count for random"
    )
    demo.add_argument(
        "--seed", type=int, default=0,
        help="seed for randomized topology generators (reproducible runs)",
    )
    demo.set_defaults(handler=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
