"""Command-line interface: ``python -m repro <command>``.

Operator-facing workflow over on-disk snapshots, built entirely on the
:class:`repro.api.Network` session facade:

- ``show <snapshot-dir>`` — snapshot summary and converged state stats.
- ``analyze <snapshot-dir> <change-script>`` — differential review of
  a change script (see :mod:`repro.core.change_text` for the format;
  ``---`` lines split the script into multiple changes that are
  analyzed **batched**, converging in one recompute pass —
  ``counters.edits_batched`` in the report records the batch size);
  ``--commit`` writes the changed snapshot back, ``--baseline`` also
  runs the snapshot-diff baseline and verifies agreement, ``--json``
  emits the schema-versioned delta report.  ``--profile`` traces the
  analysis with :mod:`repro.obs` and emits the versioned span-tree
  JSON (per-stage timings with dirty-set attribution);
  ``--profile-out FILE`` / ``--chrome-out FILE`` write the span tree
  / a Chrome trace-event timeline to disk instead (``--json
  --profile`` emits both documents, report first).  ``--provenance``
  attributes every delta to its causing edits; ``--provenance-out`` /
  ``--events-out`` / ``--metrics-out`` save the provenance document,
  the structured event log (JSONL), and the work metrics.
- ``explain`` — causality queries over a provenance-enabled analysis
  (``explain <snapshot> <change-script>``, fork-backed, never
  commits) or a saved document (``explain --from FILE``): which edits
  changed one FIB/RIB entry (``--router/--prefix``), everything one
  edit caused (``--edit N``), behaviour changes toward an address
  (``--dst IP``), and invariant violations attributed to edits
  (``--invariant NAME``).
- ``trace <snapshot-dir> <source> <dst-ip>`` — packet trace with
  optional ``--src/--proto/--dport``; ``--json`` emits the trace.
- ``campaign <kind>`` — batch what-if analysis over a built-in
  scenario: enumerate failures/policy candidates (``links``,
  ``k-links``, ``acl``, ``bgp``), evaluate them with forked analyzer
  state (``--jobs N`` for the multiprocessing backend), and print the
  ranked blast-radius report (or the full report with ``--json``).
  ``--invariant NAME`` picks checks from the invariant registry;
  ``--metrics-out FILE`` writes the merged work-metrics document
  (byte-identical across backends); ``--provenance`` /
  ``--events-out FILE`` attribute each scenario's deltas to its edits
  and write the merged event log; ``--chrome-out FILE`` writes one
  timeline with every scenario's span forest as a named thread.
- ``demo <directory>`` — write a small example snapshot + change
  script to play with (``--topology/--size/--seed`` pick the fabric).

- ``serve`` — run the always-on what-if service: converge one base
  and answer concurrent ``preview``/``analyze_batch``/``campaign``/
  ``explain``/``stats`` requests over TCP or a Unix socket
  (newline-delimited versioned-JSON frames, digest-keyed result
  cache; see :mod:`repro.service`).
- ``client`` — one request against a running service (``ping``,
  ``stats``, ``preview``, ``explain``, ``campaign``, ``shutdown``).
- ``lint`` — the contract-aware static analyzer (:mod:`repro.lint`):
  fork-safety, determinism, schema-drift, registry-coverage, and
  obs-naming rules over ``src/repro``; exit 0 iff no new findings
  and no stale baseline entries (``--update-baseline`` /
  ``--update-fingerprints`` regenerate the committed artifacts,
  ``--json`` emits the versioned lint report).

``--json`` output is one uniform envelope across analyze/trace/
campaign/explain/client: ``{"kind", "schema_version", "result"}``
where ``result`` is the versioned document from
:mod:`repro.core.serialize` — byte-interchangeable with the ``result``
field of a service response frame for the same question.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Any

from repro.api import Network, make_invariant, registered_invariants
from repro.api.errors import InvalidChangeError, ReproError
from repro.api.network import TOPOLOGY_KINDS
from repro.core.serialize import envelope


def _no_arg_invariants() -> list[str]:
    """Registered invariant names the CLI can instantiate (no required
    constructor arguments); parameterized ones (reachability,
    isolation) need the Python API."""
    names = []
    for name, cls in sorted(registered_invariants().items()):
        parameters = inspect.signature(cls).parameters.values()
        if all(
            p.default is not inspect.Parameter.empty
            or p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
            for p in parameters
        ):
            names.append(name)
    return names


def _load(directory: str, trace: bool = False) -> Network:
    try:
        return Network.load(directory, trace=trace)
    except FileNotFoundError as error:
        raise SystemExit(f"error: cannot load snapshot: {error}")


def _emit_json(document: dict[str, Any]) -> None:
    """Print one output envelope (the uniform ``--json`` shape)."""
    print(json.dumps(envelope(document), sort_keys=True, indent=2))


def _write_json(path: str, document: dict[str, Any]) -> None:
    """Deterministic on-disk JSON (sorted keys, trailing newline)."""
    with open(path, "w") as handle:
        handle.write(json.dumps(document, sort_keys=True, indent=2))
        handle.write("\n")


def cmd_show(args: argparse.Namespace) -> int:
    with _load(args.snapshot) as network:
        print(network.summary())
        state = network.state
        stats = state.dataplane.stats()
        print(f"converged: {stats['fib_entries']} FIB entries, "
              f"{stats['atoms']} atoms, "
              f"{len(state.bgp_solutions)} BGP prefixes")
        for router in sorted(state.ribs)[: args.limit]:
            rib = state.ribs[router]
            print(f"  {router}: {len(rib)} routes")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.change import Change
    from repro.core.change_text import parse_change_batch
    from repro.core.snapshot_diff import SnapshotDiff

    profiling = args.profile or args.profile_out or args.chrome_out
    # --profile without --profile-out streams the span-tree JSON to
    # stdout, so human chatter is suppressed like --json does.
    quiet = args.json or args.profile
    with _load(args.snapshot, trace=profiling) as network:
        with open(args.change) as handle:
            # `---` separators split the script into multiple changes;
            # the whole batch converges in one recompute pass either way.
            changes = parse_change_batch(handle.read(), label=args.change)
        if not quiet:
            for change in changes:
                print(change.describe())

        if args.baseline:
            baseline = SnapshotDiff(network.snapshot.clone())
            combined = Change(
                edits=[edit for change in changes for edit in change.edits],
                label=args.change,
            )
            reference = baseline.analyze(combined)
        wants_provenance = bool(
            args.provenance or args.provenance_out or args.events_out
        )
        report = network.apply(
            changes, label=args.change, provenance=wants_provenance
        )
        if not quiet and len(changes) > 1:
            print(
                f"\nbatched: {report.counters['edits_batched']} edits "
                f"across {len(changes)} changes in one recompute pass"
            )
        if args.json:
            _emit_json(report.to_dict())
        elif not args.profile:
            print()
            print(report.summary())
        if args.provenance_out:
            assert report.provenance is not None
            _write_json(
                args.provenance_out,
                report.provenance.to_dict(report.reach_segments),
            )
        if args.events_out:
            with open(args.events_out, "w") as handle:
                handle.write(network.events.to_jsonl())
                handle.write("\n")
        if args.metrics_out:
            _write_json(args.metrics_out, network.metrics.to_dict())
        if profiling:
            profile_document = network.profile()
            if args.profile_out:
                _write_json(args.profile_out, profile_document)
            if args.chrome_out:
                _write_json(args.chrome_out, network.tracer.to_chrome_trace())
            if args.profile:
                # Both --json and --profile emit their documents: the
                # delta report first, then the span tree (sequential
                # JSON values on stdout — any streaming parser reads
                # them back).
                _emit_json(profile_document)
        if args.baseline:
            agree = (
                report.behavior_signature() == reference.behavior_signature()
            )
            speedup = (
                reference.timings["total"] / max(report.timings["total"], 1e-9)
            )
            if not quiet:
                print(f"\nbaseline agrees: {agree} (speedup {speedup:.1f}x)")
            if not agree:
                return 1
        if args.commit:
            network.save(args.snapshot)
            if not quiet:
                print(f"\ncommitted to {args.snapshot}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    with _load(args.snapshot) as network:
        trace = network.trace(
            args.source,
            args.dst,
            src=args.src,
            proto=args.proto,
            dport=args.dport,
        )
    if args.json:
        _emit_json(trace.to_dict())
    else:
        print(trace.render())
    return 0 if trace.is_delivered() else 2


def cmd_campaign(args: argparse.Namespace) -> int:
    network = Network.generate(
        args.scenario, size=args.size, seed=args.seed, edges=args.edges
    )
    scenario = network.scenario
    assert scenario is not None
    with network:
        return _run_campaign(args, network, scenario)


def _run_campaign(args: argparse.Namespace, network: Network, scenario) -> int:
    from repro.campaign import (
        acl_block_sweep,
        all_single_link_failures,
        bgp_policy_sweep,
        sampled_k_link_failures,
    )

    if args.kind == "links":
        batch = all_single_link_failures(scenario)
    elif args.kind == "k-links":
        batch = sampled_k_link_failures(
            scenario, k=args.k, samples=args.samples, seed=args.seed
        )
    elif args.kind == "acl":
        batch = acl_block_sweep(scenario, max_scenarios=args.samples)
    elif args.kind == "bgp":
        batch = bgp_policy_sweep(scenario)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"error: unknown campaign kind {args.kind!r}")
    if not batch:
        print("no scenarios to evaluate")
        return 0

    host_subnets = scenario.fabric.all_host_subnets()
    # Default suite; --invariant overrides with registry names.
    # blackhole-freedom is scoped to host subnets either way (the
    # failed link's own /31 always blackholes and is not an outage).
    names = args.invariant or ["loop-freedom", "blackhole-freedom"]
    invariants = []
    for name in names:
        try:
            if name == "blackhole-freedom":
                invariants.append(make_invariant(name, monitored=host_subnets))
            else:
                invariants.append(make_invariant(name))
        except (TypeError, ValueError) as error:
            raise SystemExit(f"error: {error}")
    if not args.json:
        print(
            f"campaign: {len(batch)} {args.kind} scenarios on "
            f"{scenario.name} ({scenario.topology.num_routers()} routers), "
            f"jobs={args.jobs}"
        )
    report = network.campaign(
        batch,
        jobs=args.jobs,
        invariants=invariants,
        label=scenario.name,
        # Rank by host-visible impact: a failed link's own /31
        # vanishing is a reroute, not an outage.
        monitored=host_subnets,
        provenance=bool(args.provenance or args.events_out),
        with_spans=bool(args.chrome_out),
    )
    if args.metrics_out:
        _write_json(args.metrics_out, report.metrics.to_dict())
    if args.chrome_out:
        _write_json(args.chrome_out, report.chrome_trace())
    if args.events_out:
        with open(args.events_out, "w") as handle:
            handle.write(report.events.to_jsonl())
            handle.write("\n")
    if args.json:
        _emit_json(report.to_dict())
    else:
        print()
        print(report.summary(top=args.top))
    return 1 if report.failed() else 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.api.explain import explain_answer
    from repro.core.serialize import SchemaError, document
    from repro.obs.provenance import ProvenanceRecord

    report = None
    violations: list = []
    if args.from_file:
        if args.snapshot or args.change:
            raise SystemExit(
                "error: --from FILE replaces the snapshot/change arguments"
            )
        try:
            with open(args.from_file) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise SystemExit(f"error: cannot read {args.from_file}: {error}")
        if data.get("kind") == "delta-report":
            # A saved delta report embeds its provenance document.
            data = data.get("provenance")
            if data is None:
                raise SystemExit(
                    "error: this delta report was produced without "
                    "--provenance; re-run analyze with it"
                )
        try:
            record = ProvenanceRecord.from_dict(data)
        except (SchemaError, KeyError, TypeError) as error:
            raise SystemExit(
                f"error: not a provenance document: {error}"
            )
    else:
        if not (args.snapshot and args.change):
            raise SystemExit(
                "error: provide a snapshot directory and change script, "
                "or query a saved document with --from FILE"
            )
        from repro.core.change_text import parse_change_batch

        with _load(args.snapshot) as network:
            with open(args.change) as handle:
                changes = parse_change_batch(handle.read(), label=args.change)
            # Fork-backed: explain never commits the change.
            report = network.preview(
                changes, label=args.change, provenance=True
            )
            record = report.provenance
            assert record is not None
            for name in args.invariant or []:
                try:
                    violations.extend(network.check(report, [name]))
                except (TypeError, ValueError) as error:
                    raise SystemExit(f"error: {error}")
        if args.provenance_out:
            _write_json(
                args.provenance_out,
                record.to_dict(report.reach_segments),
            )

    try:
        answer, lines = explain_answer(
            record,
            report=report,
            violations=violations,
            edit=args.edit,
            router=args.router,
            prefix=args.prefix,
            dst=args.dst,
            top=args.top,
        )
    except InvalidChangeError as error:
        raise SystemExit(f"error: {error}")

    if args.json:
        _emit_json(document("explain-answer", answer))
    else:
        for line in lines:
            print(line)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ReproService

    if args.snapshot:
        network = _load(args.snapshot, trace=args.trace)
    elif args.generate:
        network = Network.generate(
            args.generate,
            size=args.size,
            seed=args.seed,
            edges=args.edges,
            trace=args.trace,
        )
    else:
        raise SystemExit(
            "error: provide a snapshot directory or --generate TOPOLOGY"
        )
    with network:
        try:
            service = ReproService(network, cache_size=args.cache_size)
        except ReproError as error:
            raise SystemExit(f"error: {error}")
        try:
            asyncio.run(service.run(args.listen))
        except KeyboardInterrupt:
            pass
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    script = None
    if args.change:
        try:
            with open(args.change) as handle:
                script = handle.read()
        except OSError as error:
            raise SystemExit(f"error: cannot read {args.change}: {error}")
    if args.op in ("preview", "explain", "campaign") and script is None:
        raise SystemExit(f"error: {args.op} needs --change FILE")

    try:
        with Network.connect(args.address) as remote:
            if args.op == "ping":
                result = remote.ping()
            elif args.op == "stats":
                result = remote.stats()
            elif args.op == "shutdown":
                result = remote.shutdown()
            elif args.op == "preview":
                result = remote.request(
                    "preview",
                    script=script,
                    label=args.label or args.change,
                    provenance=args.provenance,
                )
            elif args.op == "explain":
                result = remote.request(
                    "explain",
                    script=script,
                    edit=args.edit,
                    router=args.router,
                    prefix=args.prefix,
                    dst=args.dst,
                    invariants=args.invariant or [],
                    top=args.top,
                    label=args.label or args.change,
                )
            else:  # campaign: the whole script file is one scenario
                result = remote.request(
                    "campaign",
                    scenarios=[
                        {
                            "name": args.label or args.change,
                            "script": script,
                        }
                    ],
                    jobs=args.jobs,
                    invariants=args.invariant or [],
                    label=args.label or args.change,
                )
            cache = remote.last_cache
    except (ReproError, OSError) as error:
        raise SystemExit(f"error: {error}")

    if args.json:
        # Every service result is a versioned document, so the client
        # emits the same envelope as the in-process commands.
        _emit_json(result)
    else:
        line = json.dumps(result, sort_keys=True, indent=2)
        if cache is not None:
            print(f"cache: {cache}")
        print(line)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    import os

    network = Network.generate(
        args.topology, size=args.size, seed=args.seed, edges=args.edges
    )
    scenario = network.scenario
    assert scenario is not None
    network.save(args.directory)
    link = next(iter(scenario.topology.links()))
    (r1, _i1), (r2, _i2) = link.side_a, link.side_b
    script = os.path.join(args.directory, "change.dna")
    with open(script, "w") as handle:
        handle.write(f"# demo change: fail one link\nlink down {r1} {r2}\n")
    print(f"wrote demo snapshot + change script under {args.directory}")
    print(f"try: python -m repro analyze {args.directory} {script} --baseline")
    # Suggest a multi-hop trace: inject at r1, target the host subnet
    # of a router in the middle of the listing (never r1's own
    # gateway, and in symmetric fabrics several hops away).
    owners = [
        router
        for router in scenario.topology.router_names()
        if router != r1 and scenario.fabric.host_subnets.get(router)
    ]
    if owners:
        device = scenario.topology.router(owners[len(owners) // 2])
        gateway = str(device.interface("host0").address)
        print(f"try: python -m repro trace {args.directory} {r1} {gateway}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import run_lint

    result = run_lint(
        args.root,
        update_baseline=args.update_baseline,
        update_fingerprints=args.update_fingerprints,
    )
    if args.json:
        _emit_json(result.to_dict())
        return 0 if result.clean else 1
    for finding in result.new:
        print(f"{finding}")
    for entry in result.stale:
        print(
            f"stale baseline entry {entry['fingerprint']} "
            f"({entry['rule']} {entry['path']}): the finding is gone — "
            "remove it with --update-baseline (the baseline only shrinks)"
        )
    suppressed = len(result.baselined)
    summary = (
        f"checked {result.checked_files} files: "
        f"{len(result.new)} new finding(s), {suppressed} baselined, "
        f"{len(result.stale)} stale baseline entr(y/ies)"
    )
    print(summary)
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Differential Network Analysis CLI"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="summarize a snapshot")
    show.add_argument("snapshot")
    show.add_argument("--limit", type=int, default=10, help="routers to list")
    show.set_defaults(handler=cmd_show)

    analyze = commands.add_parser(
        "analyze",
        help="review a change script ('---' lines batch multiple changes)",
    )
    analyze.add_argument("snapshot")
    analyze.add_argument("change")
    analyze.add_argument("--commit", action="store_true",
                         help="write the changed snapshot back")
    analyze.add_argument("--baseline", action="store_true",
                         help="also run the snapshot-diff baseline and compare")
    analyze.add_argument("--json", action="store_true",
                         help="emit the schema-versioned delta report as JSON")
    analyze.add_argument("--profile", action="store_true",
                         help="trace the analysis and emit the versioned "
                         "span-tree JSON (per-stage timings with dirty-set "
                         "attribution) to stdout; combine with --json by "
                         "using --profile-out instead")
    analyze.add_argument("--profile-out", metavar="FILE",
                         help="write the span-tree JSON document to FILE "
                         "(implies tracing)")
    analyze.add_argument("--chrome-out", metavar="FILE",
                         help="write a Chrome trace-event JSON timeline to "
                         "FILE (open in chrome://tracing; implies tracing)")
    analyze.add_argument("--metrics-out", metavar="FILE",
                         help="write the session work-metrics JSON document "
                         "to FILE (deterministic work counts)")
    analyze.add_argument("--provenance", action="store_true",
                         help="attribute every delta to the edits that "
                         "caused it (the --json report gains a provenance "
                         "section; see also 'repro explain')")
    analyze.add_argument("--provenance-out", metavar="FILE",
                         help="write the provenance JSON document to FILE "
                         "(implies --provenance; query with "
                         "'repro explain --from FILE')")
    analyze.add_argument("--events-out", metavar="FILE",
                         help="write the structured event log as JSONL to "
                         "FILE (implies --provenance)")
    analyze.set_defaults(handler=cmd_analyze)

    trace = commands.add_parser("trace", help="trace one packet")
    trace.add_argument("snapshot")
    trace.add_argument("source", help="injecting router")
    trace.add_argument("dst", help="destination IPv4 address")
    trace.add_argument("--src", help="source IPv4 address")
    trace.add_argument("--proto", type=int)
    trace.add_argument("--dport", type=int)
    trace.add_argument("--json", action="store_true",
                       help="emit the schema-versioned trace as JSON")
    trace.set_defaults(handler=cmd_trace)

    campaign = commands.add_parser(
        "campaign", help="batch what-if analysis over a built-in scenario"
    )
    campaign.add_argument(
        "kind",
        choices=["links", "k-links", "acl", "bgp"],
        help="what to enumerate: all single-link failures, sampled "
        "k-link failures, per-device ACL blocks, or BGP policy sweeps",
    )
    campaign.add_argument(
        "--scenario",
        default="fat_tree",
        choices=list(TOPOLOGY_KINDS),
        help="built-in base network (default: fat_tree)",
    )
    campaign.add_argument(
        "--size", type=int, default=4,
        help="k for fat_tree, n for ring/line/random (default: 4)",
    )
    campaign.add_argument(
        "--edges", type=int, default=None, help="edge count for random"
    )
    campaign.add_argument(
        "--k", type=int, default=2, help="simultaneous failures for k-links"
    )
    campaign.add_argument(
        "--samples", type=int, default=20,
        help="sample budget for k-links / acl sweeps (default: 20)",
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial backend)",
    )
    campaign.add_argument(
        "--seed", type=int, default=0,
        help="seed for sampled scenarios and random topologies",
    )
    campaign.add_argument(
        "--top", type=int, default=10, help="rows in the ranked summary"
    )
    campaign.add_argument(
        "--invariant", action="append", metavar="NAME",
        help="registered invariant name to check (repeatable; default: "
        f"loop-freedom, blackhole-freedom; usable here: "
        f"{', '.join(_no_arg_invariants())}; parameterized invariants "
        "need the Python API)",
    )
    campaign.add_argument(
        "--json", action="store_true",
        help="emit the schema-versioned campaign report as JSON",
    )
    campaign.add_argument(
        "--metrics-out", metavar="FILE",
        help="write the merged work-metrics JSON document to FILE "
        "(byte-identical across serial and parallel backends)",
    )
    campaign.add_argument(
        "--chrome-out", metavar="FILE",
        help="record per-scenario span forests and write one merged "
        "Chrome trace-event timeline to FILE (every scenario is a "
        "named thread; open in chrome://tracing)",
    )
    campaign.add_argument(
        "--provenance", action="store_true",
        help="attribute each scenario's deltas and violations to its "
        "edits (outcome 'causes' in --json) and merge per-worker "
        "event logs into the report",
    )
    campaign.add_argument(
        "--events-out", metavar="FILE",
        help="write the merged structured event log as JSONL to FILE "
        "(implies --provenance; byte-identical across backends)",
    )
    campaign.set_defaults(handler=cmd_campaign)

    explain = commands.add_parser(
        "explain",
        help="answer causality queries: which edit caused which delta",
    )
    explain.add_argument(
        "snapshot", nargs="?",
        help="snapshot directory (omit when using --from)",
    )
    explain.add_argument(
        "change", nargs="?",
        help="change script to analyze with provenance (never commits)",
    )
    explain.add_argument(
        "--from", dest="from_file", metavar="FILE",
        help="query a saved provenance document (or a delta report "
        "saved with --provenance) instead of running an analysis",
    )
    explain.add_argument(
        "--router", help="router of the FIB/RIB entry to explain"
    )
    explain.add_argument(
        "--prefix", help="prefix of the FIB/RIB entry to explain"
    )
    explain.add_argument(
        "--dst", metavar="IP",
        help="explain every behaviour change toward one IPv4 address",
    )
    explain.add_argument(
        "--edit", type=int, metavar="N",
        help="show everything edit #N (may have) caused",
    )
    explain.add_argument(
        "--invariant", action="append", metavar="NAME",
        help="check an invariant and attribute its violations to edits "
        "(repeatable; live mode only)",
    )
    explain.add_argument(
        "--top", type=int, default=10,
        help="rows listed per attribution (default: 10)",
    )
    explain.add_argument(
        "--provenance-out", metavar="FILE",
        help="also save the provenance JSON document to FILE",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the query answer as JSON",
    )
    explain.set_defaults(handler=cmd_explain)

    serve = commands.add_parser(
        "serve",
        help="run the always-on what-if service over one converged base",
    )
    serve.add_argument(
        "snapshot", nargs="?",
        help="snapshot directory to serve (or use --generate)",
    )
    serve.add_argument(
        "--generate", metavar="TOPOLOGY", choices=list(TOPOLOGY_KINDS),
        help="serve a generated built-in scenario instead of a snapshot",
    )
    serve.add_argument(
        "--size", type=int, default=4,
        help="k for fat_tree, n for ring/line/random (default: 4)",
    )
    serve.add_argument(
        "--edges", type=int, default=None, help="edge count for random"
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed for randomized topology generators",
    )
    serve.add_argument(
        "--listen", metavar="ADDRESS", default="127.0.0.1:7421",
        help="host:port, host:0 for an ephemeral port, or a unix "
        "socket path (default: 127.0.0.1:7421)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256,
        help="result-cache entries (default: 256)",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="trace requests with repro.obs spans (visible via "
        "'repro client ADDRESS stats')",
    )
    serve.set_defaults(handler=cmd_serve)

    client = commands.add_parser(
        "client", help="one request against a running what-if service"
    )
    client.add_argument("address", help="service address (host:port or path)")
    client.add_argument(
        "op",
        choices=["ping", "stats", "preview", "explain", "campaign",
                 "shutdown"],
        help="request to send",
    )
    client.add_argument(
        "--change", metavar="FILE",
        help="change script for preview/explain/campaign ('---' lines "
        "batch multiple changes)",
    )
    client.add_argument(
        "--label", help="request label (default: the change file name)"
    )
    client.add_argument(
        "--provenance", action="store_true",
        help="preview with edit-level provenance attribution",
    )
    client.add_argument(
        "--edit", type=int, metavar="N",
        help="explain: show everything edit #N (may have) caused",
    )
    client.add_argument(
        "--router", help="explain: router of the FIB/RIB entry"
    )
    client.add_argument(
        "--prefix", help="explain: prefix of the FIB/RIB entry"
    )
    client.add_argument(
        "--dst", metavar="IP",
        help="explain: behaviour changes toward one IPv4 address",
    )
    client.add_argument(
        "--invariant", action="append", metavar="NAME",
        help="registered invariant to check (repeatable; "
        "explain/campaign)",
    )
    client.add_argument(
        "--top", type=int, default=10,
        help="explain: rows listed per attribution (default: 10)",
    )
    client.add_argument(
        "--jobs", type=int, default=1,
        help="campaign: worker processes on the service side",
    )
    client.add_argument(
        "--json", action="store_true",
        help="emit the result document in the uniform envelope",
    )
    client.set_defaults(handler=cmd_client)

    demo = commands.add_parser("demo", help="write a demo snapshot")
    demo.add_argument("directory")
    demo.add_argument(
        "--topology",
        default="ring",
        choices=list(TOPOLOGY_KINDS),
        help="fabric to generate (default: ring)",
    )
    demo.add_argument(
        "--size", type=int, default=6,
        help="k for fat_tree, n for ring/line/random (default: 6)",
    )
    demo.add_argument(
        "--edges", type=int, default=None, help="edge count for random"
    )
    demo.add_argument(
        "--seed", type=int, default=0,
        help="seed for randomized topology generators (reproducible runs)",
    )
    demo.set_defaults(handler=cmd_demo)

    lint = commands.add_parser(
        "lint",
        help="static contract checks (fork safety, determinism, schema, "
        "registry, obs naming)",
    )
    lint.add_argument(
        "--root", default=".",
        help="repo root containing src/repro (default: cwd)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the versioned lint-report document",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite LINT_BASELINE.json from the current findings",
    )
    lint.add_argument(
        "--update-fingerprints", action="store_true",
        help="rewrite SCHEMA_FINGERPRINTS.json from the current classes",
    )
    lint.set_defaults(handler=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
