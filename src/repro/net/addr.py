"""IPv4 addresses and CIDR prefixes.

These are deliberately lightweight value types (hashable, ordered,
immutable) rather than wrappers around :mod:`ipaddress`: the data-plane
layers manipulate millions of prefix objects and the hot paths need
cheap integer arithmetic.

An :class:`IPv4Address` is a thin wrapper over an ``int`` in
``[0, 2**32)``.  A :class:`Prefix` is a (network-int, length) pair with
the host bits already masked off; it exposes the half-open integer
interval ``[first, last+1)`` used by the atom decomposition.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

_MAX = (1 << 32) - 1


class AddressError(ValueError):
    """Raised for malformed addresses or prefixes."""


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@total_ordering
class IPv4Address:
    """An IPv4 address backed by a single integer.

    Accepts either an ``int`` in ``[0, 2**32)`` or a dotted-quad
    string.  Instances are immutable, hashable, and totally ordered by
    numeric value.
    """

    # ``_str`` lazily caches the dotted-quad form; it is derived state,
    # deliberately outside __reduce__/__eq__/__hash__.
    __slots__ = ("_value", "_str")

    def __init__(self, value: int | str) -> None:
        if isinstance(value, str):
            value = _parse_dotted_quad(value)
        if not isinstance(value, int):
            raise AddressError(f"cannot build address from {value!r}")
        if value < 0 or value > _MAX:
            raise AddressError(f"address {value} out of 32-bit range")
        object.__setattr__(self, "_value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IPv4Address is immutable")

    def __reduce__(self) -> tuple:
        # Slots + the immutability guard defeat pickle's default
        # state-setting path; rebuild through the constructor instead.
        return (IPv4Address, (self._value,))

    def __copy__(self) -> "IPv4Address":
        return self

    def __deepcopy__(self, memo: dict) -> "IPv4Address":
        return self

    @property
    def value(self) -> int:
        """The address as an integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        # Provenance keys cause maps by address/prefix strings, so the
        # same value is formatted many times per pass — cache it.
        try:
            return self._str
        except AttributeError:
            text = _format_dotted_quad(self._value)
            object.__setattr__(self, "_str", text)
            return text

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)


@total_ordering
class Prefix:
    """A CIDR prefix, e.g. ``10.1.0.0/16``.

    The network integer is stored with host bits masked to zero, so two
    prefixes constructed from different host addresses inside the same
    network compare equal.  Ordering is (network, length), which places
    a prefix immediately before its subprefixes — convenient for trie
    construction and deterministic iteration.
    """

    # ``_str`` lazily caches the CIDR text form (derived state, outside
    # __reduce__/__eq__/__hash__).
    __slots__ = ("_network", "_length", "_str")

    def __init__(self, network: int | str | IPv4Address, length: int | None = None) -> None:
        if isinstance(network, str) and "/" in network:
            if length is not None:
                raise AddressError("length given twice")
            addr_text, _, len_text = network.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"bad prefix length in {network!r}")
            network = _parse_dotted_quad(addr_text)
            length = int(len_text)
        elif isinstance(network, str):
            network = _parse_dotted_quad(network)
        elif isinstance(network, IPv4Address):
            network = network.value
        if length is None:
            raise AddressError("prefix length required")
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length {length} out of range")
        if network < 0 or network > _MAX:
            raise AddressError(f"network {network} out of 32-bit range")
        mask = _MAX ^ ((1 << (32 - length)) - 1) if length else 0
        object.__setattr__(self, "_network", network & mask)
        object.__setattr__(self, "_length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    def __reduce__(self) -> tuple:
        # Slots + the immutability guard defeat pickle's default
        # state-setting path; rebuild through the constructor instead.
        return (Prefix, (self._network, self._length))

    def __copy__(self) -> "Prefix":
        return self

    def __deepcopy__(self, memo: dict) -> "Prefix":
        return self

    @property
    def network(self) -> int:
        """Network address as an integer (host bits zero)."""
        return self._network

    @property
    def length(self) -> int:
        """Prefix length in bits (0..32)."""
        return self._length

    @property
    def mask(self) -> int:
        """Netmask as an integer."""
        if self._length == 0:
            return 0
        return _MAX ^ ((1 << (32 - self._length)) - 1)

    @property
    def first(self) -> int:
        """Lowest address covered (== network)."""
        return self._network

    @property
    def last(self) -> int:
        """Highest address covered (broadcast for the prefix)."""
        return self._network | ((1 << (32 - self._length)) - 1)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self._length)

    def interval(self) -> tuple[int, int]:
        """Half-open integer interval ``(first, last + 1)``."""
        # Inlined first/last: this runs per FIB delta on hot paths.
        return (
            self._network,
            (self._network | ((1 << (32 - self._length)) - 1)) + 1,
        )

    def contains_address(self, address: int | IPv4Address) -> bool:
        """True if ``address`` falls inside this prefix."""
        value = int(address)
        return self.first <= value <= self.last

    def contains_prefix(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or nested inside this prefix."""
        return (
            self._length <= other._length
            and (other._network & self.mask) == self._network
        )

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def parent(self) -> "Prefix":
        """The enclosing prefix one bit shorter.

        Raises :class:`AddressError` for ``0.0.0.0/0``, which has no
        parent.
        """
        if self._length == 0:
            raise AddressError("0.0.0.0/0 has no parent")
        return Prefix(self._network, self._length - 1)

    def children(self) -> tuple["Prefix", "Prefix"]:
        """The two subprefixes one bit longer (low half, high half)."""
        if self._length == 32:
            raise AddressError("/32 has no children")
        half = 1 << (32 - self._length - 1)
        return (
            Prefix(self._network, self._length + 1),
            Prefix(self._network | half, self._length + 1),
        )

    def bit(self, position: int) -> int:
        """The address bit at ``position`` (0 == most significant)."""
        if not 0 <= position < 32:
            raise AddressError(f"bit position {position} out of range")
        return (self._network >> (31 - position)) & 1

    def __str__(self) -> str:
        try:
            return self._str
        except AttributeError:
            text = f"{_format_dotted_quad(self._network)}/{self._length}"
            object.__setattr__(self, "_str", text)
            return text

    def __repr__(self) -> str:
        return f"Prefix('{self}')"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._network == other._network and self._length == other._length

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        return hash((self._network, self._length))


DEFAULT_ROUTE = Prefix(0, 0)


def iter_subprefixes(prefix: Prefix, length: int) -> Iterator[Prefix]:
    """Yield all subprefixes of ``prefix`` at the given ``length``.

    Used by topology generators to carve host subnets out of an
    allocation block.  Raises :class:`AddressError` if ``length`` is
    shorter than the prefix itself.
    """
    if length < prefix.length:
        raise AddressError(
            f"cannot enumerate /{length} inside {prefix} (too short)"
        )
    step = 1 << (32 - length)
    for network in range(prefix.first, prefix.last + 1, step):
        yield Prefix(network, length)
