"""Half-open integer intervals and interval sets.

The data plane reasons about *sets of destination addresses*.  Rather
than bit-vectors over 2**32 points, we represent such sets as sorted
lists of disjoint half-open intervals ``[lo, hi)`` — the same trick
delta-net uses for its atoms.  All set algebra (union, intersection,
difference, complement) is linear in the number of interval endpoints.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

FULL_SPAN = (0, 1 << 32)


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[lo, hi)`` over the integers.

    Empty intervals (``lo >= hi``) are rejected at construction so that
    every :class:`Interval` instance denotes at least one point.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi})")

    @property
    def size(self) -> int:
        """Number of points covered."""
        return self.hi - self.lo

    def contains(self, point: int) -> bool:
        """True if ``point`` lies inside the interval."""
        return self.lo <= point < self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one point."""
        return self.lo < other.hi and other.lo < self.hi

    def intersection(self, other: "Interval") -> "Interval | None":
        """The overlapping region, or None if disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo >= hi:
            return None
        return Interval(lo, hi)

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi})"


def _normalize(pairs: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort, drop empties, and coalesce adjacent/overlapping pairs."""
    cleaned = sorted((lo, hi) for lo, hi in pairs if lo < hi)
    merged: list[tuple[int, int]] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1]:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


class IntervalSet:
    """An immutable set of integers stored as disjoint sorted intervals.

    Supports the usual set algebra plus fast point membership via
    binary search.  Instances are hashable, so they can key atom maps.
    """

    __slots__ = ("_pairs", "_hash")

    def __init__(self, pairs: Iterable[tuple[int, int]] = ()) -> None:
        object.__setattr__(self, "_pairs", tuple(_normalize(pairs)))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IntervalSet is immutable")

    def __reduce__(self) -> tuple:
        # Slots + the immutability guard defeat pickle's default
        # state-setting path; rebuild through the constructor instead.
        return (IntervalSet, (self._pairs,))

    def __copy__(self) -> "IntervalSet":
        return self

    def __deepcopy__(self, memo: dict) -> "IntervalSet":
        return self

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return _EMPTY

    @classmethod
    def full(cls) -> "IntervalSet":
        """The full 32-bit address span."""
        return _FULL

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        """A singleton set ``{value}``."""
        return cls([(value, value + 1)])

    @classmethod
    def span(cls, lo: int, hi: int) -> "IntervalSet":
        """The set ``[lo, hi)``."""
        return cls([(lo, hi)])

    @property
    def pairs(self) -> Sequence[tuple[int, int]]:
        """The underlying sorted disjoint (lo, hi) pairs."""
        return self._pairs

    @property
    def size(self) -> int:
        """Total number of points covered."""
        return sum(hi - lo for lo, hi in self._pairs)

    def is_empty(self) -> bool:
        """True if the set covers no points."""
        return not self._pairs

    def intervals(self) -> Iterator[Interval]:
        """Iterate the member intervals in ascending order."""
        for lo, hi in self._pairs:
            yield Interval(lo, hi)

    def contains(self, point: int) -> bool:
        """Binary-search point membership."""
        # Find the first pair whose lo is > point, step back one.
        los = [lo for lo, _ in self._pairs]
        index = bisect_right(los, point) - 1
        if index < 0:
            return False
        lo, hi = self._pairs[index]
        return lo <= point < hi

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return IntervalSet(list(self._pairs) + list(other._pairs))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection via a linear merge of both pair lists."""
        result: list[tuple[int, int]] = []
        i, j = 0, 0
        a, b = self._pairs, other._pairs
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                result.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Points in self but not in other."""
        return self.intersection(other.complement())

    def complement(self) -> "IntervalSet":
        """The complement within the 32-bit address span."""
        result: list[tuple[int, int]] = []
        cursor = FULL_SPAN[0]
        for lo, hi in self._pairs:
            if cursor < lo:
                result.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < FULL_SPAN[1]:
            result.append((cursor, FULL_SPAN[1]))
        return IntervalSet(result)

    def overlaps(self, other: "IntervalSet") -> bool:
        """True if the two sets share at least one point."""
        i, j = 0, 0
        a, b = self._pairs, other._pairs
        while i < len(a) and j < len(b):
            if a[i][0] < b[j][1] and b[j][0] < a[i][1]:
                return True
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return False

    def issubset(self, other: "IntervalSet") -> bool:
        """True if every point of self is in other."""
        return self.difference(other).is_empty()

    def min_point(self) -> int:
        """The smallest member; raises ValueError if empty."""
        if not self._pairs:
            raise ValueError("empty interval set has no minimum")
        return self._pairs[0][0]

    def sample_points(self, per_interval: int = 1) -> list[int]:
        """A small representative sample (lo of each interval).

        With ``per_interval > 1``, also samples the last point and an
        interior midpoint of each interval when they are distinct.
        """
        points: list[int] = []
        for lo, hi in self._pairs:
            points.append(lo)
            if per_interval > 1 and hi - lo > 1:
                points.append(hi - 1)
            if per_interval > 2 and hi - lo > 2:
                points.append((lo + hi) // 2)
        return points

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash", hash(self._pairs))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __str__(self) -> str:
        if not self._pairs:
            return "{}"
        return " ∪ ".join(f"[{lo},{hi})" for lo, hi in self._pairs)

    def __repr__(self) -> str:
        return f"IntervalSet({list(self._pairs)!r})"


_EMPTY = IntervalSet()
_FULL = IntervalSet([FULL_SPAN])


def cut_points(sets: Iterable[IntervalSet]) -> list[int]:
    """All distinct interval endpoints across ``sets``, sorted.

    The atom decomposition slices the address space at exactly these
    points; consecutive cut points bound one atom candidate.
    """
    points: set[int] = {FULL_SPAN[0], FULL_SPAN[1]}
    for interval_set in sets:
        for lo, hi in interval_set.pairs:
            points.add(lo)
            points.add(hi)
    return sorted(points)
