"""Addressing and header-space primitives.

This package is the lowest layer of the system: IPv4 addresses, CIDR
prefixes, half-open integer intervals over the 32-bit address space,
and header-space sets (unions of disjoint intervals).  Everything above
— FIB tries, atom decomposition, ACL evaluation — is built on these.
"""

from repro.net.addr import IPv4Address, Prefix, iter_subprefixes
from repro.net.interval import Interval, IntervalSet
from repro.net.headerspace import HeaderSpace

__all__ = [
    "HeaderSpace",
    "IPv4Address",
    "Interval",
    "IntervalSet",
    "Prefix",
    "iter_subprefixes",
]
