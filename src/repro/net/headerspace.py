"""Multi-field header spaces.

Reachability questions sometimes need more than a destination address:
ACLs match on (src, dst, protocol, dst port).  A :class:`HeaderSpace`
is a product of per-field :class:`~repro.net.interval.IntervalSet`
constraints; the full space in a field is represented implicitly, so a
destination-only query stays cheap.

Fields and their domains:

- ``src``:   source IPv4 address, 0 .. 2**32
- ``dst``:   destination IPv4 address, 0 .. 2**32
- ``proto``: IP protocol number, 0 .. 256
- ``dport``: destination transport port, 0 .. 65536
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.net.addr import Prefix
from repro.net.interval import IntervalSet

FIELDS = ("src", "dst", "proto", "dport")

_FIELD_SPANS: dict[str, tuple[int, int]] = {
    "src": (0, 1 << 32),
    "dst": (0, 1 << 32),
    "proto": (0, 256),
    "dport": (0, 65536),
}


def field_full(field: str) -> IntervalSet:
    """The full domain of ``field`` as an IntervalSet."""
    lo, hi = _FIELD_SPANS[field]
    return IntervalSet.span(lo, hi)


class HeaderSpace:
    """A rectangular set of packet headers (product of field sets).

    A field absent from the constraint map is unconstrained.  The empty
    header space is canonicalized: if any stored field set is empty,
    the whole space is empty and the constraint map is cleared with an
    ``_empty`` flag set instead.
    """

    __slots__ = ("_constraints", "_empty")

    def __init__(self, constraints: Mapping[str, IntervalSet] | None = None) -> None:
        cleaned: dict[str, IntervalSet] = {}
        empty = False
        for field, value in (constraints or {}).items():
            if field not in _FIELD_SPANS:
                raise KeyError(f"unknown header field {field!r}")
            if value.is_empty():
                empty = True
                break
            if value == field_full(field):
                continue  # unconstrained; keep implicit
            cleaned[field] = value
        object.__setattr__(self, "_constraints", {} if empty else cleaned)
        object.__setattr__(self, "_empty", empty)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("HeaderSpace is immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def full(cls) -> "HeaderSpace":
        """All packets."""
        return cls()

    @classmethod
    def empty(cls) -> "HeaderSpace":
        """No packets."""
        space = cls()
        object.__setattr__(space, "_empty", True)
        return space

    @classmethod
    def dst_prefix(cls, prefix: Prefix) -> "HeaderSpace":
        """Packets destined to ``prefix``."""
        lo, hi = prefix.interval()
        return cls({"dst": IntervalSet.span(lo, hi)})

    @classmethod
    def src_prefix(cls, prefix: Prefix) -> "HeaderSpace":
        """Packets sourced from ``prefix``."""
        lo, hi = prefix.interval()
        return cls({"src": IntervalSet.span(lo, hi)})

    @classmethod
    def protocol(cls, proto: int) -> "HeaderSpace":
        """Packets of one IP protocol."""
        return cls({"proto": IntervalSet.point(proto)})

    @classmethod
    def dport_range(cls, lo: int, hi: int) -> "HeaderSpace":
        """Packets with destination port in ``[lo, hi]`` (inclusive)."""
        return cls({"dport": IntervalSet.span(lo, hi + 1)})

    # -- queries -------------------------------------------------------

    def is_empty(self) -> bool:
        """True if no packet matches."""
        return self._empty

    def field(self, name: str) -> IntervalSet:
        """The constraint on ``name`` (full domain if unconstrained)."""
        if self._empty:
            return IntervalSet.empty()
        return self._constraints.get(name, field_full(name))

    def constrained_fields(self) -> tuple[str, ...]:
        """Fields carrying a non-trivial constraint."""
        return tuple(f for f in FIELDS if f in self._constraints)

    def contains_packet(self, packet: Mapping[str, int]) -> bool:
        """True if a concrete packet (field -> value) matches."""
        if self._empty:
            return False
        for field, constraint in self._constraints.items():
            if field not in packet:
                raise KeyError(f"packet missing field {field!r}")
            if not constraint.contains(packet[field]):
                return False
        return True

    # -- algebra -------------------------------------------------------

    def intersect(self, other: "HeaderSpace") -> "HeaderSpace":
        """Packets in both spaces."""
        if self._empty or other._empty:
            return HeaderSpace.empty()
        merged: dict[str, IntervalSet] = dict(self._constraints)
        for field, constraint in other._constraints.items():
            if field in merged:
                merged[field] = merged[field].intersection(constraint)
            else:
                merged[field] = constraint
        return HeaderSpace(merged)

    def overlaps(self, other: "HeaderSpace") -> bool:
        """True if the two spaces share at least one packet."""
        return not self.intersect(other).is_empty()

    def subtract_field(self, field: str, removed: IntervalSet) -> "HeaderSpace":
        """Remove ``removed`` from one field's constraint.

        Note this stays rectangular because only a single field is
        touched; general header-space difference is a union of
        rectangles and is handled at the ACL layer instead.
        """
        if self._empty:
            return self
        remaining = self.field(field).difference(removed)
        merged = dict(self._constraints)
        merged[field] = remaining
        return HeaderSpace(merged)

    # -- dunder --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HeaderSpace):
            return NotImplemented
        return self._empty == other._empty and self._constraints == other._constraints

    def __hash__(self) -> int:
        return hash((self._empty, tuple(sorted(self._constraints.items(), key=lambda kv: kv[0]))))

    def __str__(self) -> str:
        if self._empty:
            return "∅"
        if not self._constraints:
            return "⊤"
        parts = [f"{field}∈{value}" for field, value in sorted(self._constraints.items())]
        return " ∧ ".join(parts)

    def __repr__(self) -> str:
        return f"HeaderSpace({self._constraints!r})" if not self._empty else "HeaderSpace.empty()"


def union_of_dst(spaces: Iterable[HeaderSpace]) -> IntervalSet:
    """Union of the destination constraints of many header spaces.

    Helper used when projecting a set of match conditions down to the
    destination axis for atom decomposition.
    """
    result = IntervalSet.empty()
    for space in spaces:
        if space.is_empty():
            continue
        result = result.union(space.field("dst"))
    return result
