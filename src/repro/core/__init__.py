"""The paper's primary contribution: differential network analysis.

- :mod:`~repro.core.snapshot` — a network snapshot (topology +
  configs) with on-disk round-tripping.
- :mod:`~repro.core.change` — the primitive configuration edits and
  the :class:`~repro.core.change.Change` batch container.
- :mod:`~repro.core.analyzer` — the incremental analyzer
  (:class:`~repro.core.analyzer.DifferentialNetworkAnalyzer`): change
  in, control-plane/forwarding/reachability deltas out, without
  re-simulating the network.  ``analyze_batch`` converges a whole
  sequence of changes in one recompute pass.
- :mod:`~repro.core.handlers` — the change-handler registry (stage 1
  of the pipeline): per-edit-type extraction functions, extensible via
  :func:`~repro.core.handlers.register_change_handler`.
- :mod:`~repro.core.pipeline` — the
  :class:`~repro.core.pipeline.DirtySet` intermediate representation
  and the scoped recompute + differential data plane stages.
- :mod:`~repro.core.forking` — the undo journal behind the analyzer's
  ``what_if`` / ``fork()`` speculative-analysis API.
- :mod:`~repro.core.snapshot_diff` — the Batfish-style baseline:
  simulate both snapshots fully and diff.
- :mod:`~repro.core.delta` — the common delta report both produce.
- :mod:`~repro.core.invariants` — invariant checks evaluated over
  deltas (reachability, isolation, loops, blackholes).
"""

from typing import Any

__all__ = [
    "Change",
    "DeltaReport",
    "DifferentialNetworkAnalyzer",
    "DirtySet",
    "Snapshot",
    "SnapshotDiff",
    "register_change_handler",
    "registered_change_handlers",
]

_LAZY = {
    "Change": ("repro.core.change", "Change"),
    "DeltaReport": ("repro.core.delta", "DeltaReport"),
    "DifferentialNetworkAnalyzer": ("repro.core.analyzer", "DifferentialNetworkAnalyzer"),
    "DirtySet": ("repro.core.pipeline", "DirtySet"),
    "Snapshot": ("repro.core.snapshot", "Snapshot"),
    "SnapshotDiff": ("repro.core.snapshot_diff", "SnapshotDiff"),
    "register_change_handler": ("repro.core.handlers", "register_change_handler"),
    "registered_change_handlers": ("repro.core.handlers", "registered_change_handlers"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
