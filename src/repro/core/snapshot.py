"""Network snapshots: topology + device configurations.

A snapshot is the unit both analyses consume: the Batfish-style
baseline simulates two snapshots and diffs; the differential analyzer
keeps one live snapshot and applies primitive edits to it.

Snapshots round-trip to a directory layout resembling a real config
repository::

    snapshot/
      topology.txt      # routers, interfaces, links
      configs.txt       # one ``device`` block per router

so examples can operate on on-disk state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.config.device import DeviceConfig
from repro.config.text import parse_configs, serialize_configs
from repro.net.addr import IPv4Address
from repro.topology.model import Topology, TopologyError


@dataclass
class Snapshot:
    """One version of the network: physical topology + configs."""

    topology: Topology
    configs: dict[str, DeviceConfig] = field(default_factory=dict)

    def config(self, router: str) -> DeviceConfig:
        """The config of ``router``, created empty on first access."""
        if router not in self.configs:
            if not self.topology.has_router(router):
                raise TopologyError(f"unknown router {router!r}")
            self.configs[router] = DeviceConfig(router)
        return self.configs[router]

    def clone(self) -> "Snapshot":
        """A deep copy sharing no mutable state."""
        return Snapshot(
            topology=self.topology.clone(),
            configs={name: c.clone() for name, c in self.configs.items()},
        )

    # -- persistence -----------------------------------------------------

    def save(self, directory: str) -> None:
        """Write ``topology.txt`` and ``configs.txt`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        with open(os.path.join(directory, "topology.txt"), "w") as handle:
            handle.write(serialize_topology(self.topology))
        with open(os.path.join(directory, "configs.txt"), "w") as handle:
            handle.write(serialize_configs(self.configs))

    @classmethod
    def load(cls, directory: str) -> "Snapshot":
        """Read a snapshot previously written by :meth:`save`."""
        with open(os.path.join(directory, "topology.txt")) as handle:
            topology = parse_topology(handle.read())
        with open(os.path.join(directory, "configs.txt")) as handle:
            configs = parse_configs(handle.read())
        return cls(topology=topology, configs=configs)

    def summary(self) -> str:
        """One-line description for logs and examples."""
        return (
            f"Snapshot({self.topology.num_routers()} routers, "
            f"{self.topology.num_links(include_disabled=True)} links, "
            f"{len(self.configs)} configs)"
        )


def serialize_topology(topology: Topology) -> str:
    """Render a topology as line-oriented text."""
    lines: list[str] = []
    for router in topology.routers():
        lines.append(f"router {router.name}")
        for interface in router.interfaces.values():
            if interface.address is not None:
                lines.append(
                    f"  interface {interface.name} "
                    f"{interface.address}/{interface.prefix_length}"
                )
            else:
                lines.append(f"  interface {interface.name}")
    for link in topology.links(include_disabled=True):
        state = "" if topology.link_enabled(link) else " down"
        lines.append(
            f"link {link.side_a[0]} {link.side_a[1]} "
            f"{link.side_b[0]} {link.side_b[1]}{state}"
        )
    return "\n".join(lines) + "\n"


def parse_topology(text: str) -> Topology:
    """Parse the output of :func:`serialize_topology`."""
    topology = Topology()
    current_router: str | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == "router" and len(tokens) == 2:
            current_router = tokens[1]
            topology.add_router(current_router)
        elif tokens[0] == "interface" and current_router is not None:
            if len(tokens) == 3 and "/" in tokens[2]:
                address_text, _, length_text = tokens[2].partition("/")
                topology.add_interface(
                    current_router,
                    tokens[1],
                    IPv4Address(address_text),
                    int(length_text),
                )
            elif len(tokens) == 2:
                topology.add_interface(current_router, tokens[1])
            else:
                raise TopologyError(f"line {line_number}: bad interface: {raw!r}")
        elif tokens[0] == "link" and len(tokens) in (5, 6):
            enabled = len(tokens) == 5 or tokens[5] != "down"
            topology.add_link(
                tokens[1], tokens[2], tokens[3], tokens[4], enabled=enabled
            )
        else:
            raise TopologyError(f"line {line_number}: bad topology line: {raw!r}")
    return topology
