"""Versioned JSON codecs for result objects.

Every outcome type the public API returns (:class:`DeltaReport`,
:class:`CampaignReport`, :class:`PacketTrace`, :class:`PathDiff`,
:class:`Violation`) carries ``to_dict()/from_dict()`` built on the
helpers here.  The contract is *byte-stable round-tripping*: for any
result ``r``, ``dumps(r.to_dict())`` equals
``dumps(type(r).from_dict(r.to_dict()).to_dict())`` when dumped with
``sort_keys=True`` — so results can cross process/service boundaries,
be cached, or be diffed as plain JSON.

Documents are versioned and tagged: every top-level dict carries
``schema_version`` and ``kind``.  ``from_dict`` rejects unknown
versions and mismatched kinds with :class:`SchemaError`, so a service
upgrade can never silently misparse an old payload.

The value codecs (routes, FIB entries, BGP attribute bundles,
behaviour signatures) normalize unordered containers to sorted lists,
which is what makes the round trip byte-stable.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config.routemap import AttributeBundle
from repro.controlplane.rib import NextHop, Route
from repro.core.errors import SchemaError
from repro.dataplane.fib import FibEntry
from repro.net.addr import IPv4Address, Prefix

SCHEMA_VERSION = 1

__all__ = ["SCHEMA_VERSION", "KNOWN_KINDS", "SchemaError", "register_kind",
           "document", "check_document", "envelope", "check_envelope"]

# Every document kind this build can emit or parse.  ``document`` and
# ``check_document`` reject kinds outside the registry, so a typo'd
# kind fails at emission instead of surfacing as a mismatched-kind
# error on some later consumer.  Extensions add their own kinds with
# :func:`register_kind`; the static analyzer (``repro lint``, rule S1)
# cross-checks every ``to_dict`` against this set.
KNOWN_KINDS: set[str] = {
    # result documents
    "delta-report",
    "violation",
    "packet-trace",
    "path-diff",
    "campaign-report",
    "span-trace",
    "metrics",
    "provenance",
    "event-log",
    "explain-answer",
    "lint-report",
    # service wire frames
    "request",
    "response",
    "error",
    "pong",
    "service-stats",
}


def register_kind(kind: str) -> str:
    """Register an extension document kind; returns ``kind``.

    Workloads that serialize their own result types call this once at
    import time, then use :func:`document`/:func:`check_document` as
    usual.
    """
    KNOWN_KINDS.add(kind)
    return kind


def document(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Wrap a payload as a versioned, kind-tagged document."""
    if kind not in KNOWN_KINDS:
        raise SchemaError(
            f"unregistered document kind {kind!r}; call "
            "repro.core.serialize.register_kind first"
        )
    return {"schema_version": SCHEMA_VERSION, "kind": kind, **payload}


def envelope(doc: Mapping[str, Any]) -> dict[str, Any]:
    """The uniform output envelope shared by the CLI and the service.

    ``{"kind", "schema_version", "result"}`` — the top-level ``kind``
    mirrors the wrapped document's so consumers can dispatch without
    descending, and ``result`` is the document itself, byte-identical
    whether it arrived via ``--json`` on the CLI or in a service
    response frame.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": doc["kind"],
        "result": dict(doc),
    }


def check_envelope(data: Mapping[str, Any]) -> dict[str, Any]:
    """Validate an envelope and return its ``result`` document."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    result = data.get("result")
    if not isinstance(result, dict) or data.get("kind") != result.get("kind"):
        raise SchemaError("not an output envelope: expected a 'result' "
                          "document matching the envelope 'kind'")
    return result


def check_document(data: Mapping[str, Any], kind: str) -> None:
    """Validate a document's version and kind (raises SchemaError)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    found = data.get("kind")
    if found != kind:
        raise SchemaError(f"expected a {kind!r} document, got {found!r}")
    if kind not in KNOWN_KINDS:
        raise SchemaError(
            f"unregistered document kind {kind!r}; call "
            "repro.core.serialize.register_kind first"
        )


# -- value codecs -----------------------------------------------------------


def encode_ip(address: IPv4Address | None) -> str | None:
    return None if address is None else str(address)


def decode_ip(data: str | None) -> IPv4Address | None:
    return None if data is None else IPv4Address(data)


def encode_prefix(prefix: Prefix) -> str:
    return str(prefix)


def decode_prefix(data: str) -> Prefix:
    return Prefix(data)


def _next_hop_sort_key(hop: NextHop) -> tuple[str, int, str, bool]:
    # NextHop's derived ordering breaks on None-vs-address ties; this
    # key is total over every well-formed hop.
    return (
        hop.interface,
        hop.ip.value if hop.ip is not None else -1,
        hop.neighbor or "",
        hop.drop,
    )


def encode_next_hop(hop: NextHop) -> dict[str, Any]:
    return {
        "interface": hop.interface,
        "ip": encode_ip(hop.ip),
        "neighbor": hop.neighbor,
        "drop": hop.drop,
    }


def decode_next_hop(data: Mapping[str, Any]) -> NextHop:
    return NextHop(
        interface=data["interface"],
        ip=decode_ip(data["ip"]),
        neighbor=data["neighbor"],
        drop=data["drop"],
    )


def encode_next_hops(hops: frozenset[NextHop]) -> list[dict[str, Any]]:
    return [
        encode_next_hop(hop) for hop in sorted(hops, key=_next_hop_sort_key)
    ]


def decode_next_hops(data: list[Mapping[str, Any]]) -> frozenset[NextHop]:
    return frozenset(decode_next_hop(item) for item in data)


def encode_bundle(bundle: AttributeBundle | None) -> dict[str, Any] | None:
    if bundle is None:
        return None
    return {
        "prefix": encode_prefix(bundle.prefix),
        "as_path": list(bundle.as_path),
        "local_pref": bundle.local_pref,
        "med": bundle.med,
        "origin_asn": bundle.origin_asn,
        "communities": sorted(list(pair) for pair in bundle.communities),
    }


def decode_bundle(data: Mapping[str, Any] | None) -> AttributeBundle | None:
    if data is None:
        return None
    return AttributeBundle(
        prefix=decode_prefix(data["prefix"]),
        as_path=tuple(data["as_path"]),
        local_pref=data["local_pref"],
        med=data["med"],
        origin_asn=data["origin_asn"],
        communities=frozenset(
            (asn, value) for asn, value in data["communities"]
        ),
    )


def encode_route(route: Route | None) -> dict[str, Any] | None:
    if route is None:
        return None
    return {
        "prefix": encode_prefix(route.prefix),
        "protocol": route.protocol,
        "admin_distance": route.admin_distance,
        "metric": route.metric,
        "next_hops": encode_next_hops(route.next_hops),
        "bgp": encode_bundle(route.bgp),
        "bgp_next_hop": encode_ip(route.bgp_next_hop),
        "learned_from": route.learned_from,
    }


def decode_route(data: Mapping[str, Any] | None) -> Route | None:
    if data is None:
        return None
    return Route(
        prefix=decode_prefix(data["prefix"]),
        protocol=data["protocol"],
        admin_distance=data["admin_distance"],
        metric=data["metric"],
        next_hops=decode_next_hops(data["next_hops"]),
        bgp=decode_bundle(data["bgp"]),
        bgp_next_hop=decode_ip(data["bgp_next_hop"]),
        learned_from=data["learned_from"],
    )


def encode_fib_entry(entry: FibEntry | None) -> dict[str, Any] | None:
    if entry is None:
        return None
    return {
        "prefix": encode_prefix(entry.prefix),
        "next_hops": encode_next_hops(entry.next_hops),
        "protocol": entry.protocol,
    }


def decode_fib_entry(data: Mapping[str, Any] | None) -> FibEntry | None:
    if data is None:
        return None
    return FibEntry(
        prefix=decode_prefix(data["prefix"]),
        next_hops=decode_next_hops(data["next_hops"]),
        protocol=data["protocol"],
    )


# -- behaviour signatures ---------------------------------------------------
#
# ``DeltaReport.behavior_signature()`` is a nested tuple over a small
# closed value domain (None, ints, strings, Prefix, Route, FibEntry).
# The codec tags non-JSON values and rebuilds tuples recursively, so a
# signature survives JSON transport bit-for-bit (campaign outcomes
# carry them to prove backend equivalence across machines).


def encode_signature(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [encode_signature(item) for item in value]
    if isinstance(value, Prefix):
        return {"$": "prefix", "v": encode_prefix(value)}
    if isinstance(value, Route):
        return {"$": "route", "v": encode_route(value)}
    if isinstance(value, FibEntry):
        return {"$": "fib-entry", "v": encode_fib_entry(value)}
    if isinstance(value, IPv4Address):
        return {"$": "ip", "v": encode_ip(value)}
    raise TypeError(f"cannot encode {type(value).__name__} in a signature")


def decode_signature(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(decode_signature(item) for item in value)
    if isinstance(value, dict):
        tag, payload = value["$"], value["v"]
        if tag == "prefix":
            return decode_prefix(payload)
        if tag == "route":
            return decode_route(payload)
        if tag == "fib-entry":
            return decode_fib_entry(payload)
        if tag == "ip":
            return decode_ip(payload)
        raise SchemaError(f"unknown signature tag {tag!r}")
    return value
