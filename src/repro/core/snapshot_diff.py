"""The Batfish-style baseline: simulate both snapshots, diff.

:class:`SnapshotDiff` is what operators do today: run the full
simulation on the pre-change snapshot, apply the change, run the full
simulation again, and compare everything.  It shares every solver with
the incremental path, so its output is the ground truth the
:class:`~repro.core.analyzer.DifferentialNetworkAnalyzer` must match —
and the cost baseline it must beat.
"""

from __future__ import annotations

import time

from repro.controlplane.simulation import NetworkState, simulate
from repro.core.change import Change
from repro.core.delta import DeltaReport, diff_reach_coverage
from repro.core.snapshot import Snapshot


def diff_states(
    before: NetworkState, after: NetworkState, label: str = ""
) -> DeltaReport:
    """Compare two fully converged network states."""
    report = DeltaReport(label)

    routers = sorted(
        set(before.snapshot.topology.router_names())
        | set(after.snapshot.topology.router_names())
    )
    for router in routers:
        rib_before = before.ribs.get(router)
        rib_after = after.ribs.get(router)
        prefixes = set()
        if rib_before is not None:
            prefixes.update(rib_before.prefixes())
        if rib_after is not None:
            prefixes.update(rib_after.prefixes())
        for prefix in prefixes:
            old = rib_before.best(prefix) if rib_before is not None else None
            new = rib_after.best(prefix) if rib_after is not None else None
            if old != new:
                report.record_rib(router, prefix, old, new)

        fib_before = before.fibs.get(router)
        fib_after = after.fibs.get(router)
        fib_prefixes = set()
        if fib_before is not None:
            fib_prefixes.update(fib_before.prefixes())
        if fib_after is not None:
            fib_prefixes.update(fib_after.prefixes())
        for prefix in fib_prefixes:
            old_entry = fib_before.entry_for(prefix) if fib_before else None
            new_entry = fib_after.entry_for(prefix) if fib_after else None
            if old_entry != new_entry:
                report.record_fib(router, prefix, old_entry, new_entry)

    coverage_before = [
        (atom.lo, atom.hi, before.reachability.for_atom(atom))
        for atom in before.dataplane.atom_table.atoms()
    ]
    coverage_after = [
        (atom.lo, atom.hi, after.reachability.for_atom(atom))
        for atom in after.dataplane.atom_table.atoms()
    ]
    report.reach_segments = diff_reach_coverage(coverage_before, coverage_after)
    return report


class SnapshotDiff:
    """Full-recompute differential analysis (the comparison baseline)."""

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot
        self._state: NetworkState | None = None

    def base_state(self) -> NetworkState:
        """The converged pre-change state (cached)."""
        if self._state is None:
            self._state = simulate(self.snapshot, precompute_reachability=True)
        return self._state

    def analyze(self, change: Change, commit: bool = False) -> DeltaReport:
        """Simulate base and changed snapshots fully; diff.

        With ``commit`` the changed snapshot becomes the new base.
        """
        t0 = time.perf_counter()
        before = self.base_state()
        t1 = time.perf_counter()
        changed = change.applied_to_copy(self.snapshot)
        after = simulate(changed, precompute_reachability=True)
        t2 = time.perf_counter()
        report = diff_states(before, after, label=change.label or "snapshot-diff")
        t3 = time.perf_counter()
        report.timings = {
            "simulate_before": t1 - t0,
            "simulate_after": t2 - t1,
            "diff": t3 - t2,
            "total": t3 - t0,
        }
        report.counters = {
            "atoms_before": before.dataplane.atom_table.num_atoms(),
            "atoms_after": after.dataplane.atom_table.num_atoms(),
            "atoms_analyzed": before.dataplane.atom_table.num_atoms()
            + after.dataplane.atom_table.num_atoms(),
        }
        if commit:
            self.snapshot = changed
            self._state = after
        return report
