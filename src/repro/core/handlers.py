"""Stage 1 of the change-propagation pipeline: the handler registry.

Every primitive edit kind has a **change handler** — a function that
applies the edit to the analyzer's snapshot, surgically updates the
control-plane/data-plane structures the edit touches, and folds dirty
markers into a :class:`~repro.core.pipeline.DirtySet`.  Handlers are
looked up through a registry keyed by edit type, so workloads can add
new change kinds without editing the analyzer::

    from repro.core.handlers import register_change_handler
    from repro.core.change import Edit

    class FailRouter(Edit):
        ...

    @register_change_handler(FailRouter)
    def _handle_fail_router(analyzer, edit, dirty):
        edit.apply(analyzer.snapshot)
        dirty.touched_routers.add(edit.router)
        dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(edit.router))
        ...

Lookup walks the edit type's MRO, so a registration covers subclasses
unless they register their own (``LinkUp`` rides on ``LinkDown``'s
entry this way).  Handlers run with the fork journal already primed
(:meth:`UndoJournal.before_edit` has captured the snapshot-level
before-images); handlers that mutate *converged* state beyond the
snapshot must record their own undo hooks, exactly like the built-in
ACL handlers below.

**Provenance contract**: handlers never see edit ids.  Under
``provenance=True`` the analyzer runs each handler against a *fresh*
:class:`DirtySet` and stamps everything the handler deposited with
the edit's id (:meth:`DirtySet.attribute`) before merging into the
batch set — so every dirty marker a handler produces is automatically
tagged with the edit that produced it, and custom handlers registered
by workloads participate in attribution without any extra code.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Callable, Mapping, TypeVar

from repro.config.acl import Acl, AclAction
from repro.controlplane.bgp import neighbors_using_map, pairs_involving
from repro.core.change import (
    AddAclRule,
    AddBgpNeighbor,
    AddRouteMapClause,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    DisableOspfInterface,
    Edit,
    EnableInterface,
    EnableOspfInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveBgpNeighbor,
    RemoveRouteMapClause,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.core.pipeline import DirtySet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.analyzer import DifferentialNetworkAnalyzer

ChangeHandler = Callable[["DifferentialNetworkAnalyzer", Edit, DirtySet], None]
_H = TypeVar("_H", bound=ChangeHandler)


@dataclass(frozen=True)
class HandlerEntry:
    """One registry row: the edit type and its extraction function."""

    edit_type: type[Edit]
    fn: ChangeHandler

    def __call__(
        self,
        analyzer: "DifferentialNetworkAnalyzer",
        edit: Edit,
        dirty: DirtySet,
    ) -> None:
        self.fn(analyzer, edit, dirty)

    def __repr__(self) -> str:
        return (
            f"<change-handler {self.edit_type.__name__} -> "
            f"{self.fn.__module__}.{self.fn.__qualname__}>"
        )


_HANDLERS: dict[type[Edit], HandlerEntry] = {}


def register_change_handler(
    edit_type: type[Edit],
) -> Callable[[_H], _H]:
    """Register the extraction handler for an edit type (decorator).

    Re-registering an edit type replaces its handler, which is how a
    workload can override built-in extraction behaviour.
    """

    def decorator(fn: _H) -> _H:
        _HANDLERS[edit_type] = HandlerEntry(edit_type, fn)
        return fn

    return decorator


def handler_for(edit_type: type[Edit]) -> HandlerEntry:
    """The registered handler for ``edit_type`` (walking its MRO).

    Raises ``TypeError`` for edit types with no registered handler —
    the batch fails before any recompute runs.
    """
    for base in edit_type.__mro__:
        if not (isinstance(base, type) and issubclass(base, Edit)):
            continue
        entry = _HANDLERS.get(base)
        if entry is not None:
            return entry
    raise TypeError(
        f"no change handler registered for edit type {edit_type.__name__}; "
        "use repro.core.handlers.register_change_handler"
    )


def registered_change_handlers() -> Mapping[type[Edit], HandlerEntry]:
    """Read-only view of the registry (edit type -> handler entry)."""
    return MappingProxyType(_HANDLERS)


# ---------------------------------------------------------------------------
# Built-in handlers (one per primitive edit family)
# ---------------------------------------------------------------------------


@register_change_handler(LinkDown)  # covers LinkUp (subclass)
def _handle_link(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (LinkDown, LinkUp))
    edit.apply(analyzer.snapshot)
    r1, r2 = edit.router1, edit.router2
    dirty.touched_routers.update((r1, r2))
    dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(r1))
    dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(r2))
    dirty.ospf.merge(analyzer._ospf.refresh_pair(r1, r2))
    # A link flap can only kill/revive direct sessions between its own
    # endpoints; multihop liveness is the adj-RIB stage's job.
    dirty.bgp_sessions.update({(r1, r2), (r2, r1)})


@register_change_handler(ShutdownInterface)
@register_change_handler(EnableInterface)
def _handle_interface_flap(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (ShutdownInterface, EnableInterface))
    edit.apply(analyzer.snapshot)
    dirty.touched_routers.add(edit.router)
    dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(edit.router))
    link = analyzer.snapshot.topology.link_of_interface(
        edit.router, edit.interface
    )
    if link is not None:
        peer_router = link.other_end(edit.router)[0]
        dirty.touched_routers.add(peer_router)
        dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(peer_router))
        dirty.ospf.merge(analyzer._ospf.refresh_pair(edit.router, peer_router))
        # A cabled interface drops carrier for both ends: only direct
        # sessions between the two link endpoints can flap.
        dirty.bgp_sessions.update(
            {(edit.router, peer_router), (peer_router, edit.router)}
        )
    else:
        # Uncabled (e.g. loopback): any session touching this router
        # could be affected — dirty every configured pair involving it.
        dirty.bgp_sessions.update(
            pairs_involving(
                analyzer.snapshot, analyzer.state.address_index, edit.router
            )
        )


@register_change_handler(AddStaticRoute)
@register_change_handler(RemoveStaticRoute)
def _handle_static_route(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (AddStaticRoute, RemoveStaticRoute))
    edit.apply(analyzer.snapshot)
    dirty.touched_routers.add(edit.router)


@register_change_handler(SetOspfCost)
@register_change_handler(EnableOspfInterface)
@register_change_handler(DisableOspfInterface)
def _handle_ospf_interface(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(
        edit, (SetOspfCost, EnableOspfInterface, DisableOspfInterface)
    )
    edit.apply(analyzer.snapshot)
    dirty.ospf.merge(analyzer._ospf.refresh_router_adverts(edit.router))
    peer = analyzer.snapshot.topology.interface_peer(
        edit.router, edit.interface
    )
    if peer is not None:
        dirty.ospf.merge(analyzer._ospf.refresh_pair(edit.router, peer.router))


@register_change_handler(AnnouncePrefix)
@register_change_handler(WithdrawPrefix)
def _handle_bgp_origination(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (AnnouncePrefix, WithdrawPrefix))
    edit.apply(analyzer.snapshot)
    dirty.bgp_prefixes.add(edit.prefix)


@register_change_handler(AddBgpNeighbor)
@register_change_handler(RemoveBgpNeighbor)
def _handle_bgp_session(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (AddBgpNeighbor, RemoveBgpNeighbor))
    edit.apply(analyzer.snapshot)
    peer_ip = (
        edit.neighbor.peer_ip
        if isinstance(edit, AddBgpNeighbor)
        else edit.peer_ip
    )
    owner = analyzer.state.address_index.owner(peer_ip)
    if owner is not None and owner.router != edit.router:
        # The edited entry is one direction of the pair and possibly
        # the reverse entry completing the other — dirty both; the
        # session stage escalates to all-dirty only if a session
        # actually appears.
        dirty.bgp_sessions.update(
            {(edit.router, owner.router), (owner.router, edit.router)}
        )
    # An entry pointing at an unowned address can neither form a
    # session nor complete someone else's reverse lookup: no dirt.


@register_change_handler(SetLocalPref)
def _handle_bgp_pref(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, SetLocalPref)
    edit.apply(analyzer.snapshot)
    # Attribute-only edit: cannot flip a permit/deny, so the blast
    # radius is exactly the adj-RIB entries flowing over the sessions
    # the edited map is bound to.
    config = analyzer.snapshot.configs.get(edit.router)
    if config is None:
        return
    for peer_ip, direction in neighbors_using_map(config, edit.route_map):
        owner = analyzer.state.address_index.owner(peer_ip)
        if owner is None or owner.router == edit.router:
            continue
        if direction == "import":
            # Import map transforms what edit.router receives.
            dirty.bgp_adj_rib.add((edit.router, owner.router))
        else:
            # Export map transforms what the peer receives from us.
            dirty.bgp_adj_rib.add((owner.router, edit.router))


@register_change_handler(AddRouteMapClause)
@register_change_handler(RemoveRouteMapClause)
def _handle_bgp_policy(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (AddRouteMapClause, RemoveRouteMapClause))
    edit.apply(analyzer.snapshot)
    # Structural policy change (can flip permit/deny): every prefix
    # flowing through — or originated by — the router is suspect.
    dirty.bgp_policy.add(edit.router)


# -- ACL handlers -----------------------------------------------------------


def _binding_count(
    analyzer: "DifferentialNetworkAnalyzer", router: str, acl_name: str
) -> int:
    config = analyzer.snapshot.configs.get(router)
    if config is None:
        return 0
    count = 0
    for settings in config.interfaces.values():
        if settings.acl_in == acl_name:
            count += 1
        if settings.acl_out == acl_name:
            count += 1
    return count


def _nonpermit_spans(acl: Acl) -> list[tuple[int, int]]:
    spans: list[tuple[int, int]] = []
    for interval_set, action in acl.project_dst():
        if action is AclAction.PERMIT:
            continue
        spans.extend(interval_set.pairs)
    return spans


@register_change_handler(AddAclRule)
@register_change_handler(RemoveAclRule)
def _handle_acl_rule(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, (AddAclRule, RemoveAclRule))
    bindings = _binding_count(analyzer, edit.router, edit.acl)
    edit.apply(analyzer.snapshot)
    if bindings == 0:
        return  # unbound ACL: no data-plane effect
    lo, hi = edit.rule.dst.interval()
    register = isinstance(edit, AddAclRule)
    dataplane = analyzer.state.dataplane
    for _ in range(bindings):
        dataplane.acl_interval_structure(lo, hi, register)
        if analyzer._journal is not None:
            analyzer._journal.record_acl_structure(lo, hi, register)
    dataplane.invalidate_span(lo, hi)
    if analyzer._journal is not None:
        analyzer._journal.record_acl_span(lo, hi)
    dirty.acl_spans.append((lo, hi))


@register_change_handler(BindAcl)
def _handle_bind_acl(
    analyzer: "DifferentialNetworkAnalyzer", edit: Edit, dirty: DirtySet
) -> None:
    assert isinstance(edit, BindAcl)
    config = analyzer.snapshot.config(edit.router)
    settings = config.ensure_interface(edit.interface)
    old_name = settings.acl_in if edit.direction == "in" else settings.acl_out
    edit.apply(analyzer.snapshot)
    if old_name == edit.acl:
        return  # rebinding the same ACL changes nothing
    dataplane = analyzer.state.dataplane
    for name, register in ((old_name, False), (edit.acl, True)):
        if name is None:
            continue
        acl = config.acls.get(name)
        if acl is None:
            continue
        for rule in acl.rules:
            lo, hi = rule.dst.interval()
            dataplane.acl_interval_structure(lo, hi, register)
            if analyzer._journal is not None:
                analyzer._journal.record_acl_structure(lo, hi, register)
        for lo, hi in _nonpermit_spans(acl):
            dataplane.invalidate_span(lo, hi)
            if analyzer._journal is not None:
                analyzer._journal.record_acl_span(lo, hi)
            dirty.acl_spans.append((lo, hi))
