"""The delta report: what a change did to the network.

Both analysis paths — the incremental analyzer and the snapshot-diff
baseline — produce a :class:`DeltaReport` with identical semantics, so
tests can require them to agree tuple-for-tuple:

- **RIB delta**: per router, per prefix, (best route before, after).
- **FIB delta**: per router, per prefix, (entry before, after).
- **Reachability delta**: a canonical piecewise description of the
  destination space — sorted, coalesced
  :class:`ReachSegment` values listing the (source, owner) pairs that
  appeared/disappeared, plus loop and blackhole churn.

Reachability canonicalization is what makes the two paths comparable:
they decompose the space into different atoms, so deltas are re-cut at
the union of both boundary sets and merged back greedily.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.controlplane.rib import Route
from repro.core import serialize
from repro.dataplane.fib import FibEntry
from repro.dataplane.reachability import AtomReachability
from repro.net.addr import Prefix
from repro.obs.provenance import EditInfo, ProvenanceRecord

Pair = tuple[str, str]  # (source router, owner router)


@dataclass(frozen=True)
class ReachSegment:
    """Behaviour change over one destination interval ``[lo, hi)``."""

    lo: int
    hi: int
    added: frozenset[Pair] = frozenset()
    removed: frozenset[Pair] = frozenset()
    loops_added: frozenset[str] = frozenset()
    loops_removed: frozenset[str] = frozenset()
    blackholes_added: frozenset[str] = frozenset()
    blackholes_removed: frozenset[str] = frozenset()

    def payload(self) -> tuple:
        """Everything except the interval (used for coalescing)."""
        return (
            self.added,
            self.removed,
            self.loops_added,
            self.loops_removed,
            self.blackholes_added,
            self.blackholes_removed,
        )

    def is_empty(self) -> bool:
        return all(not part for part in self.payload())

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready fragment (the enclosing report carries the
        schema version)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "added": sorted(list(pair) for pair in self.added),
            "removed": sorted(list(pair) for pair in self.removed),
            "loops_added": sorted(self.loops_added),
            "loops_removed": sorted(self.loops_removed),
            "blackholes_added": sorted(self.blackholes_added),
            "blackholes_removed": sorted(self.blackholes_removed),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReachSegment":
        return cls(
            lo=data["lo"],
            hi=data["hi"],
            added=frozenset((src, owner) for src, owner in data["added"]),
            removed=frozenset((src, owner) for src, owner in data["removed"]),
            loops_added=frozenset(data["loops_added"]),
            loops_removed=frozenset(data["loops_removed"]),
            blackholes_added=frozenset(data["blackholes_added"]),
            blackholes_removed=frozenset(data["blackholes_removed"]),
        )

    def __str__(self) -> str:
        parts = [f"[{self.lo}, {self.hi})"]
        if self.added:
            parts.append(f"+{len(self.added)} pairs")
        if self.removed:
            parts.append(f"-{len(self.removed)} pairs")
        if self.loops_added or self.loops_removed:
            parts.append(
                f"loops +{len(self.loops_added)}/-{len(self.loops_removed)}"
            )
        if self.blackholes_added or self.blackholes_removed:
            parts.append(
                f"blackholes +{len(self.blackholes_added)}"
                f"/-{len(self.blackholes_removed)}"
            )
        return " ".join(parts)


def _segment_between(
    lo: int,
    hi: int,
    before: AtomReachability | None,
    after: AtomReachability | None,
) -> ReachSegment:
    """The behaviour delta of one elementary interval."""
    pairs_before = before.pair_set() if before is not None else frozenset()
    pairs_after = after.pair_set() if after is not None else frozenset()
    loops_before = before.loop_routers if before is not None else frozenset()
    loops_after = after.loop_routers if after is not None else frozenset()
    bh_before = before.blackhole_routers if before is not None else frozenset()
    bh_after = after.blackhole_routers if after is not None else frozenset()
    return ReachSegment(
        lo=lo,
        hi=hi,
        added=pairs_after - pairs_before,
        removed=pairs_before - pairs_after,
        loops_added=loops_after - loops_before,
        loops_removed=loops_before - loops_after,
        blackholes_added=bh_after - bh_before,
        blackholes_removed=bh_before - bh_after,
    )


def diff_reach_coverage(
    before: list[tuple[int, int, AtomReachability]],
    after: list[tuple[int, int, AtomReachability]],
) -> list[ReachSegment]:
    """Canonical reachability delta between two piecewise coverings.

    ``before``/``after`` list (lo, hi, reachability) pieces, each
    sorted and internally disjoint but cut at *different* boundaries
    and possibly covering different (equal-union for comparability is
    NOT required — uncovered regions are treated as unchanged)
    regions.  The result is re-cut at the union of boundaries,
    non-empty deltas kept, and adjacent equal-payload segments merged.
    """
    points: set[int] = set()
    for lo, hi, _ in before:
        points.add(lo)
        points.add(hi)
    for lo, hi, _ in after:
        points.add(lo)
        points.add(hi)
    ordered = sorted(points)

    def coverage_at(pieces: list[tuple[int, int, AtomReachability]], lo: int):
        # Pieces are sorted; simple scan with an index would be faster,
        # but bisect keeps this reusable for unsorted callers.
        from bisect import bisect_right

        los = [p[0] for p in pieces]
        index = bisect_right(los, lo) - 1
        if index >= 0:
            p_lo, p_hi, reach = pieces[index]
            if p_lo <= lo < p_hi:
                return reach
        return None

    before_sorted = sorted(before, key=lambda p: p[0])
    after_sorted = sorted(after, key=lambda p: p[0])
    segments: list[ReachSegment] = []
    for index in range(len(ordered) - 1):
        lo, hi = ordered[index], ordered[index + 1]
        piece_before = coverage_at(before_sorted, lo)
        piece_after = coverage_at(after_sorted, lo)
        if piece_before is None and piece_after is None:
            continue
        # A region covered on one side only cannot be diffed honestly;
        # it means the caller scoped the two sides differently.  Treat
        # the missing side as "unchanged" by skipping.
        if piece_before is None or piece_after is None:
            continue
        segment = _segment_between(lo, hi, piece_before, piece_after)
        if not segment.is_empty():
            segments.append(segment)
    return coalesce_segments(segments)


def coalesce_segments(segments: list[ReachSegment]) -> list[ReachSegment]:
    """Merge adjacent segments with identical payloads."""
    merged: list[ReachSegment] = []
    for segment in sorted(segments, key=lambda s: s.lo):
        if (
            merged
            and merged[-1].hi == segment.lo
            and merged[-1].payload() == segment.payload()
        ):
            previous = merged.pop()
            merged.append(
                ReachSegment(
                    lo=previous.lo,
                    hi=segment.hi,
                    added=segment.added,
                    removed=segment.removed,
                    loops_added=segment.loops_added,
                    loops_removed=segment.loops_removed,
                    blackholes_added=segment.blackholes_added,
                    blackholes_removed=segment.blackholes_removed,
                )
            )
        else:
            merged.append(segment)
    return merged


def _cover(
    segments: list[ReachSegment], los: list[int], lo: int
) -> ReachSegment | None:
    """The segment of a sorted disjoint list covering point ``lo``.

    ``los`` is the precomputed ``[s.lo for s in segments]`` key list —
    callers probing many points build it once.
    """
    from bisect import bisect_right

    index = bisect_right(los, lo) - 1
    if index >= 0:
        segment = segments[index]
        if segment.lo <= lo < segment.hi:
            return segment
    return None


def _compose_delta(
    added1: frozenset,
    removed1: frozenset,
    added2: frozenset,
    removed2: frozenset,
) -> tuple[frozenset, frozenset]:
    """Sequential composition of two (added, removed) set deltas.

    Remove-then-re-add and add-then-remove churn cancels: an element
    is net-added iff it ends present having started absent, and
    vice versa.
    """
    net_added = (added1 - removed2) | (added2 - removed1)
    net_removed = (removed1 - added2) | (removed2 - added1)
    return net_added, net_removed


def compose_segment_lists(
    first: list[ReachSegment], second: list[ReachSegment]
) -> list[ReachSegment]:
    """The canonical segments of applying ``first`` then ``second``.

    Both inputs are canonical deltas against successive baselines (the
    second's baseline is the first's post-state).  Segments are re-cut
    at the union of boundaries, composed per elementary interval (a
    region covered by one side only passes through unchanged), empty
    net deltas dropped, and adjacent equal payloads merged — yielding
    exactly what a single diff of base vs final behaviour produces.
    """
    points: set[int] = set()
    for segment in first:
        points.add(segment.lo)
        points.add(segment.hi)
    for segment in second:
        points.add(segment.lo)
        points.add(segment.hi)
    ordered = sorted(points)
    first_sorted = sorted(first, key=lambda s: s.lo)
    second_sorted = sorted(second, key=lambda s: s.lo)
    first_los = [s.lo for s in first_sorted]
    second_los = [s.lo for s in second_sorted]
    empty = ReachSegment(0, 0)
    composed: list[ReachSegment] = []
    for index in range(len(ordered) - 1):
        lo, hi = ordered[index], ordered[index + 1]
        one = _cover(first_sorted, first_los, lo)
        two = _cover(second_sorted, second_los, lo)
        if one is None and two is None:
            continue
        a = one if one is not None else empty
        b = two if two is not None else empty
        added, removed = _compose_delta(a.added, a.removed, b.added, b.removed)
        loops_added, loops_removed = _compose_delta(
            a.loops_added, a.loops_removed, b.loops_added, b.loops_removed
        )
        blackholes_added, blackholes_removed = _compose_delta(
            a.blackholes_added,
            a.blackholes_removed,
            b.blackholes_added,
            b.blackholes_removed,
        )
        segment = ReachSegment(
            lo=lo,
            hi=hi,
            added=frozenset(added),
            removed=frozenset(removed),
            loops_added=frozenset(loops_added),
            loops_removed=frozenset(loops_removed),
            blackholes_added=frozenset(blackholes_added),
            blackholes_removed=frozenset(blackholes_removed),
        )
        if not segment.is_empty():
            composed.append(segment)
    return coalesce_segments(composed)


def compose_reports(
    reports: list["DeltaReport"], label: str = ""
) -> "DeltaReport":
    """The single report equivalent to applying ``reports`` in order.

    The correctness oracle for ``analyze_batch``: a batch of N changes
    analyzed in one merged recompute pass must equal the composition
    of N sequential ``analyze`` reports.  RIB/FIB transitions chain
    through the same churn-collapsing recorders the analyzer uses
    (A->B->A vanishes); reachability segments compose by sequential
    set-delta algebra.  Timings and additive counters are summed —
    they describe the work done, not the behaviour delta, and are
    excluded from equivalence comparisons.

    Provenance composes too (when every input carries it): the edit
    tables concatenate — re-numbering each report's dense edit ids by
    the running offset, exactly the ids a single batched analysis
    would have assigned — and cause sets union through the same
    churn-collapsing recorders, so composed attribution is
    byte-comparable with batched attribution.
    """
    composed = DeltaReport(label)
    with_provenance = bool(reports) and all(
        report.provenance is not None for report in reports
    )
    if with_provenance:
        composed.provenance = ProvenanceRecord(label)
    for report in reports:
        offset = 0
        record = report.provenance
        if with_provenance and composed.provenance is not None:
            assert record is not None
            offset = composed.provenance.absorb_edits(record)
        for router, per_router in report.rib_changes.items():
            for prefix, (before, after) in per_router.items():
                causes = None
                if with_provenance and record is not None:
                    causes = {
                        edit_id + offset
                        for edit_id in record.rib_causes.get(
                            (router, str(prefix)), set()
                        )
                    } or None
                composed.record_rib(router, prefix, before, after, causes)
        for router, per_router in report.fib_changes.items():
            for prefix, (before, after) in per_router.items():
                causes = None
                if with_provenance and record is not None:
                    causes = {
                        edit_id + offset
                        for edit_id in record.fib_causes.get(
                            (router, str(prefix)), set()
                        )
                    } or None
                composed.record_fib(router, prefix, before, after, causes)
        if with_provenance and composed.provenance is not None:
            assert record is not None
            for (lo, hi), ids in record.acl_causes.items():
                composed.provenance.record_acl_span(
                    lo, hi, {edit_id + offset for edit_id in ids}
                )
        composed.reach_segments = compose_segment_lists(
            composed.reach_segments, report.reach_segments
        )
        for key, value in report.timings.items():
            composed.timings[key] = composed.timings.get(key, 0.0) + value
        for key, value in report.counters.items():
            if key == "atoms_total":
                composed.counters[key] = value
            else:
                composed.counters[key] = composed.counters.get(key, 0) + value
    return composed


class DeltaReport:
    """Everything one change did, plus how long it took to find out."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.rib_changes: dict[str, dict[Prefix, tuple[Route | None, Route | None]]] = {}
        self.fib_changes: dict[str, dict[Prefix, tuple[FibEntry | None, FibEntry | None]]] = {}
        self.reach_segments: list[ReachSegment] = []
        self.timings: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        # Edit->delta attribution; populated only when the producing
        # analysis ran with ``provenance=True``.
        self.provenance: ProvenanceRecord | None = None

    # -- recording (collapses transient flips) -------------------------------

    def record_rib(
        self,
        router: str,
        prefix: Prefix,
        before: Route | None,
        after: Route | None,
        causes: set[int] | None = None,
    ) -> None:
        """Note a best-route transition, collapsing A->B->A churn.

        ``causes`` (provenance mode) unions edit ids into the entry's
        cause set; a net-cancelled entry drops its causes in lockstep.
        """
        per_router = self.rib_changes.setdefault(router, {})
        existing = per_router.get(prefix)
        original = existing[0] if existing is not None else before
        if original == after:
            per_router.pop(prefix, None)
            if not per_router:
                del self.rib_changes[router]
            if self.provenance is not None:
                self.provenance.drop_rib(router, str(prefix))
        else:
            per_router[prefix] = (original, after)
            if self.provenance is not None and causes is not None:
                self.provenance.record_rib(router, str(prefix), causes)

    def record_fib(
        self,
        router: str,
        prefix: Prefix,
        before: FibEntry | None,
        after: FibEntry | None,
        causes: set[int] | None = None,
    ) -> None:
        """Note a FIB transition, collapsing A->B->A churn."""
        per_router = self.fib_changes.setdefault(router, {})
        existing = per_router.get(prefix)
        original = existing[0] if existing is not None else before
        if original == after:
            per_router.pop(prefix, None)
            if not per_router:
                del self.fib_changes[router]
            if self.provenance is not None:
                self.provenance.drop_fib(router, str(prefix))
        else:
            per_router[prefix] = (original, after)
            if self.provenance is not None and causes is not None:
                self.provenance.record_fib(
                    router, str(prefix), prefix.interval(), causes
                )

    # -- attribution queries ------------------------------------------------

    def why(self, entry: Any) -> list[EditInfo]:
        """The edits that (may have) caused ``entry``, in id order.

        ``entry`` is one of:

        - a ``(router, prefix)`` pair — FIB/RIB change attribution;
        - a :class:`ReachSegment` — causes over its interval;
        - anything with ``segment_lo``/``segment_hi`` attributes (a
          :class:`~repro.core.invariants.Violation`) — likewise.

        Raises ``ValueError`` if this report was produced without
        ``provenance=True``.
        """
        record = self.provenance
        if record is None:
            raise ValueError(
                "this report carries no provenance; re-run the analysis "
                "with provenance=True"
            )
        if isinstance(entry, ReachSegment):
            ids = record.causes_over(entry.lo, entry.hi)
        elif hasattr(entry, "segment_lo") and hasattr(entry, "segment_hi"):
            ids = record.causes_over(entry.segment_lo, entry.segment_hi)
        elif isinstance(entry, tuple) and len(entry) == 2:
            router, prefix = entry
            ids = record.entry_causes(router, str(prefix))
        else:
            raise TypeError(
                f"cannot attribute {entry!r}: expected a (router, prefix) "
                "pair, a ReachSegment, or a Violation"
            )
        return [record.edit(edit_id) for edit_id in sorted(ids)]

    def attribute(self, edit_id: int) -> dict[str, Any]:
        """Everything edit ``edit_id`` (may have) caused in this report.

        Returns a JSON-ready dict: the edit's info plus the RIB/FIB
        entries, ACL spans, and reachability segments carrying its id.
        """
        record = self.provenance
        if record is None:
            raise ValueError(
                "this report carries no provenance; re-run the analysis "
                "with provenance=True"
            )
        result = record.attribution(edit_id)
        result["segments"] = [
            [segment.lo, segment.hi]
            for segment in self.reach_segments
            if edit_id in record.causes_over(segment.lo, segment.hi)
        ]
        return result

    # -- summaries ---------------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Alias for :attr:`counters` (work/batching statistics).

        ``stats["edits_batched"]`` reports how many primitive edits the
        producing (batched) analysis applied before its single
        recompute pass; everything here is surfaced under ``counters``
        in ``--json`` output.
        """
        return self.counters

    def num_rib_changes(self) -> int:
        return sum(len(v) for v in self.rib_changes.values())

    def num_fib_changes(self) -> int:
        return sum(len(v) for v in self.fib_changes.values())

    def num_pair_changes(self) -> tuple[int, int]:
        """(pairs gained, pairs lost), interval-weighted not counted."""
        gained = sum(len(s.added) for s in self.reach_segments)
        lost = sum(len(s.removed) for s in self.reach_segments)
        return gained, lost

    def is_empty(self) -> bool:
        """True if the change had no observable effect."""
        return (
            not self.num_rib_changes()
            and not self.num_fib_changes()
            and not self.reach_segments
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (see :mod:`repro.core.serialize`)."""

        def encode_changes(changes: dict, encode) -> dict[str, dict[str, list]]:
            return {
                router: {
                    str(prefix): [encode(before), encode(after)]
                    for prefix, (before, after) in sorted(
                        per_router.items(), key=lambda kv: kv[0]
                    )
                }
                for router, per_router in sorted(changes.items())
            }

        payload = {
            "label": self.label,
            "rib_changes": encode_changes(
                self.rib_changes, serialize.encode_route
            ),
            "fib_changes": encode_changes(
                self.fib_changes, serialize.encode_fib_entry
            ),
            "reach_segments": [s.to_dict() for s in self.reach_segments],
            "timings": dict(self.timings),
            "counters": dict(self.counters),
        }
        if self.provenance is not None:
            payload["provenance"] = self.provenance.to_dict(
                self.reach_segments
            )
        return serialize.document("delta-report", payload)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeltaReport":
        """Rebuild a report; raises SchemaError on unknown versions."""
        serialize.check_document(data, "delta-report")
        report = cls(data["label"])
        for router, per_router in data["rib_changes"].items():
            report.rib_changes[router] = {
                Prefix(prefix): (
                    serialize.decode_route(before),
                    serialize.decode_route(after),
                )
                for prefix, (before, after) in per_router.items()
            }
        for router, per_router in data["fib_changes"].items():
            report.fib_changes[router] = {
                Prefix(prefix): (
                    serialize.decode_fib_entry(before),
                    serialize.decode_fib_entry(after),
                )
                for prefix, (before, after) in per_router.items()
            }
        report.reach_segments = [
            ReachSegment.from_dict(segment)
            for segment in data["reach_segments"]
        ]
        report.timings = dict(data["timings"])
        report.counters = dict(data["counters"])
        if "provenance" in data:
            report.provenance = ProvenanceRecord.from_dict(data["provenance"])
        return report

    # -- comparison between analysis paths ---------------------------------------

    def behavior_signature(self) -> tuple:
        """A hashable summary two correct analyses must agree on.

        Covers FIB deltas and canonical reachability segments; RIB
        deltas are included too since both paths build the same Route
        values.
        """
        fib = tuple(
            (router, prefix, changes[0], changes[1])
            for router in sorted(self.fib_changes)
            for prefix, changes in sorted(
                self.fib_changes[router].items(), key=lambda kv: kv[0]
            )
        )
        rib = tuple(
            (router, prefix, changes[0], changes[1])
            for router in sorted(self.rib_changes)
            for prefix, changes in sorted(
                self.rib_changes[router].items(), key=lambda kv: kv[0]
            )
        )
        reach = tuple(
            (s.lo, s.hi) + tuple(map(tuple, map(sorted, s.payload())))
            for s in self.reach_segments
        )
        return (rib, fib, reach)

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        gained, lost = self.num_pair_changes()
        lines = [
            f"DeltaReport({self.label or 'unlabelled'}):",
            f"  RIB changes: {self.num_rib_changes()} "
            f"across {len(self.rib_changes)} routers",
            f"  FIB changes: {self.num_fib_changes()} "
            f"across {len(self.fib_changes)} routers",
            f"  reachability: {len(self.reach_segments)} segments, "
            f"+{gained}/-{lost} (src, dst-owner) pairs",
        ]
        for segment in self.reach_segments[:10]:
            lines.append(f"    {segment}")
        if len(self.reach_segments) > 10:
            lines.append(f"    ... {len(self.reach_segments) - 10} more")
        if self.timings:
            timing = ", ".join(f"{k}={v * 1000:.2f}ms" for k, v in self.timings.items())
            lines.append(f"  timings: {timing}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()

    def __repr__(self) -> str:
        gained, lost = self.num_pair_changes()
        return (
            f"DeltaReport({self.label!r}: {self.num_rib_changes()} RIB, "
            f"{self.num_fib_changes()} FIB, {len(self.reach_segments)} "
            f"segments, +{gained}/-{lost} pairs)"
        )
