"""The equivalence oracle: incremental vs. from-scratch.

The central correctness claim of the system is that
:class:`~repro.core.analyzer.DifferentialNetworkAnalyzer` produces the
*same* delta report as the
:class:`~repro.core.snapshot_diff.SnapshotDiff` baseline for every
change.  This module packages that check so tests, benchmarks, and the
T9 experiment can all drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change
from repro.core.delta import DeltaReport
from repro.core.snapshot_diff import SnapshotDiff


class EquivalenceError(AssertionError):
    """Raised when the two analysis paths disagree."""

    def __init__(self, change: Change, incremental: DeltaReport, baseline: DeltaReport) -> None:
        self.change = change
        self.incremental = incremental
        self.baseline = baseline
        super().__init__(self._describe())

    def _describe(self) -> str:
        got_rib, got_fib, got_reach = self.incremental.behavior_signature()
        ref_rib, ref_fib, ref_reach = self.baseline.behavior_signature()
        lines = [f"analysis paths disagree on change {self.change.label!r}:"]
        for label, got, ref in (
            ("RIB", got_rib, ref_rib),
            ("FIB", got_fib, ref_fib),
            ("REACH", got_reach, ref_reach),
        ):
            extra = set(got) - set(ref)
            missing = set(ref) - set(got)
            if extra or missing:
                lines.append(f"  {label}: +{len(extra)} spurious, -{len(missing)} missing")
                for item in list(extra)[:3]:
                    lines.append(f"    spurious: {item}")
                for item in list(missing)[:3]:
                    lines.append(f"    missing:  {item}")
        return "\n".join(lines)


@dataclass
class OracleStats:
    """Aggregate results of an oracle run."""

    checked: int = 0
    agreed: int = 0
    incremental_time: float = 0.0
    baseline_time: float = 0.0
    labels: list[str] = field(default_factory=list)

    @property
    def pass_rate(self) -> float:
        return self.agreed / self.checked if self.checked else 1.0

    @property
    def mean_speedup(self) -> float:
        if self.incremental_time <= 0:
            return float("inf")
        return self.baseline_time / self.incremental_time


class EquivalenceOracle:
    """Runs both paths on the same change stream and compares."""

    def __init__(self, analyzer: DifferentialNetworkAnalyzer) -> None:
        self.analyzer = analyzer
        self.stats = OracleStats()

    def step(self, change: Change, raise_on_mismatch: bool = True) -> bool:
        """Analyze one change with both paths; returns agreement.

        The baseline runs on a *clone* of the pre-change snapshot so
        the analyzer's committed state stays authoritative.
        """
        baseline = SnapshotDiff(self.analyzer.snapshot.clone())
        reference = baseline.analyze(change)
        report = self.analyzer.analyze(change)
        self.stats.checked += 1
        self.stats.incremental_time += report.timings.get("total", 0.0)
        self.stats.baseline_time += reference.timings.get("total", 0.0)
        self.stats.labels.append(change.label)
        agreed = report.behavior_signature() == reference.behavior_signature()
        if agreed:
            self.stats.agreed += 1
        elif raise_on_mismatch:
            raise EquivalenceError(change, report, reference)
        return agreed

    def run(self, changes: list[Change], raise_on_mismatch: bool = True) -> OracleStats:
        """Step through a change sequence; returns the aggregate."""
        for change in changes:
            self.step(change, raise_on_mismatch)
        return self.stats
