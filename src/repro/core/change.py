"""Primitive configuration edits and change batches.

Every edit knows how to apply itself to a snapshot (mutating it) and
carries enough structure for the incremental analyzer to compute dirty
sets without re-reading the whole configuration.  A
:class:`Change` bundles one or more edits that are analyzed and
committed atomically.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.config.acl import Acl, AclRule
from repro.config.routemap import RouteMap, RouteMapClause
from repro.config.routing import (
    BgpNeighborConfig,
    OspfConfig,
    OspfInterfaceSettings,
    StaticRouteConfig,
)
from repro.core.errors import InvalidChangeError
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.topology.model import Link


class ChangeError(InvalidChangeError):
    """Raised when an edit cannot be applied to the snapshot."""


class Edit:
    """Base class: one primitive configuration edit."""

    def apply(self, snapshot: Snapshot) -> None:
        """Mutate the snapshot; raises ChangeError on conflicts."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        return repr(self)


# -- physical layer ---------------------------------------------------------


@dataclass(frozen=True)
class LinkDown(Edit):
    """Administratively disable the link between two routers.

    Identified by the two router names (first matching enabled link);
    pass interface names for precision on parallel links.
    """

    router1: str
    router2: str
    interface1: str | None = None
    interface2: str | None = None

    def _find(self, snapshot: Snapshot) -> Link:
        if self.interface1 is not None and self.interface2 is not None:
            link = Link.of(
                (self.router1, self.interface1), (self.router2, self.interface2)
            )
            snapshot.topology.link_enabled(link)  # validates existence
            return link
        found = snapshot.topology.find_link(self.router1, self.router2)
        if found is None:
            for link in snapshot.topology.links(include_disabled=True):
                if set(link.routers) == {self.router1, self.router2}:
                    return link
            raise ChangeError(f"no link between {self.router1} and {self.router2}")
        return found

    def apply(self, snapshot: Snapshot) -> None:
        snapshot.topology.set_link_enabled(self._find(snapshot), False)

    def describe(self) -> str:
        return f"link down {self.router1} -- {self.router2}"


@dataclass(frozen=True)
class LinkUp(LinkDown):
    """Re-enable a previously disabled link."""

    def apply(self, snapshot: Snapshot) -> None:
        snapshot.topology.set_link_enabled(self._find(snapshot), True)

    def describe(self) -> str:
        return f"link up {self.router1} -- {self.router2}"


@dataclass(frozen=True)
class ShutdownInterface(Edit):
    """Administratively disable one interface.

    Drops carrier for both ends of the cable (if any): connected
    routes vanish, OSPF adjacencies over the link collapse, and direct
    BGP sessions go down.
    """

    router: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        if self.interface not in snapshot.topology.router(self.router).interfaces:
            raise ChangeError(f"{self.router} has no interface {self.interface!r}")
        settings = snapshot.config(self.router).ensure_interface(self.interface)
        if not settings.enabled:
            raise ChangeError(
                f"{self.router}[{self.interface}] is already shut down"
            )
        settings.enabled = False

    def describe(self) -> str:
        return f"{self.router}[{self.interface}]: shutdown"


@dataclass(frozen=True)
class EnableInterface(Edit):
    """Re-enable a previously shut down interface."""

    router: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        if self.interface not in snapshot.topology.router(self.router).interfaces:
            raise ChangeError(f"{self.router} has no interface {self.interface!r}")
        settings = snapshot.config(self.router).ensure_interface(self.interface)
        if settings.enabled:
            raise ChangeError(f"{self.router}[{self.interface}] is already up")
        settings.enabled = True

    def describe(self) -> str:
        return f"{self.router}[{self.interface}]: no shutdown"


# -- static routes -----------------------------------------------------------


@dataclass(frozen=True)
class AddStaticRoute(Edit):
    """Install a static route on one router."""

    router: str
    route: StaticRouteConfig

    def apply(self, snapshot: Snapshot) -> None:
        try:
            snapshot.config(self.router).add_static_route(self.route)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return f"{self.router}: add static {self.route.prefix}"


@dataclass(frozen=True)
class RemoveStaticRoute(Edit):
    """Remove a static route (matched by value) from one router."""

    router: str
    route: StaticRouteConfig

    def apply(self, snapshot: Snapshot) -> None:
        try:
            snapshot.config(self.router).remove_static_route(self.route)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return f"{self.router}: remove static {self.route.prefix}"


# -- OSPF ---------------------------------------------------------------------


def _ospf(snapshot: Snapshot, router: str) -> OspfConfig:
    config = snapshot.config(router)
    if config.ospf is None:
        config.ospf = OspfConfig()
    return config.ospf


@dataclass(frozen=True)
class SetOspfCost(Edit):
    """Change the OSPF cost of one interface."""

    router: str
    interface: str
    cost: int

    def apply(self, snapshot: Snapshot) -> None:
        ospf = _ospf(snapshot, self.router)
        settings = ospf.interfaces.get(self.interface)
        if settings is None:
            raise ChangeError(
                f"{self.router}[{self.interface}] does not run OSPF"
            )
        if self.cost < 1:
            raise ChangeError("OSPF cost must be >= 1")
        settings.cost = self.cost

    def describe(self) -> str:
        return f"{self.router}[{self.interface}]: ospf cost {self.cost}"


@dataclass(frozen=True)
class EnableOspfInterface(Edit):
    """Start running OSPF on an interface."""

    router: str
    interface: str
    area: int = 0
    cost: int = 10
    passive: bool = False

    def apply(self, snapshot: Snapshot) -> None:
        if self.interface not in snapshot.topology.router(self.router).interfaces:
            raise ChangeError(f"{self.router} has no interface {self.interface!r}")
        ospf = _ospf(snapshot, self.router)
        existing = ospf.interfaces.get(self.interface)
        if existing is not None and existing.enabled:
            raise ChangeError(
                f"{self.router}[{self.interface}] already runs OSPF"
            )
        ospf.interfaces[self.interface] = OspfInterfaceSettings(
            area=self.area, cost=self.cost, enabled=True, passive=self.passive
        )

    def describe(self) -> str:
        return f"{self.router}[{self.interface}]: enable ospf area {self.area}"


@dataclass(frozen=True)
class DisableOspfInterface(Edit):
    """Stop running OSPF on an interface."""

    router: str
    interface: str

    def apply(self, snapshot: Snapshot) -> None:
        ospf = _ospf(snapshot, self.router)
        settings = ospf.interfaces.get(self.interface)
        if settings is None or not settings.enabled:
            raise ChangeError(
                f"{self.router}[{self.interface}] does not run OSPF"
            )
        settings.enabled = False

    def describe(self) -> str:
        return f"{self.router}[{self.interface}]: disable ospf"


# -- BGP ------------------------------------------------------------------------


@dataclass(frozen=True)
class AnnouncePrefix(Edit):
    """Add a ``network`` statement (BGP origination)."""

    router: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        if config.bgp is None:
            raise ChangeError(f"{self.router} does not run BGP")
        if self.prefix in config.bgp.originated:
            raise ChangeError(f"{self.router} already originates {self.prefix}")
        config.bgp.originated.append(self.prefix)

    def describe(self) -> str:
        return f"{self.router}: announce {self.prefix}"


@dataclass(frozen=True)
class WithdrawPrefix(Edit):
    """Remove a ``network`` statement."""

    router: str
    prefix: Prefix

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        if config.bgp is None or self.prefix not in config.bgp.originated:
            raise ChangeError(f"{self.router} does not originate {self.prefix}")
        config.bgp.originated.remove(self.prefix)

    def describe(self) -> str:
        return f"{self.router}: withdraw {self.prefix}"


@dataclass(frozen=True)
class AddBgpNeighbor(Edit):
    """Configure a new BGP session endpoint."""

    router: str
    neighbor: BgpNeighborConfig

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        if config.bgp is None:
            raise ChangeError(f"{self.router} does not run BGP")
        try:
            config.bgp.add_neighbor(self.neighbor)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return f"{self.router}: add bgp neighbor {self.neighbor.peer_ip}"


@dataclass(frozen=True)
class RemoveBgpNeighbor(Edit):
    """Tear down a BGP session endpoint."""

    router: str
    peer_ip: IPv4Address

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        if config.bgp is None:
            raise ChangeError(f"{self.router} does not run BGP")
        try:
            config.bgp.remove_neighbor(self.peer_ip)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return f"{self.router}: remove bgp neighbor {self.peer_ip}"


@dataclass(frozen=True)
class SetLocalPref(Edit):
    """Set the local-pref action of an existing route-map clause."""

    router: str
    route_map: str
    seq: int
    local_pref: int

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        route_map = config.route_maps.get(self.route_map)
        if route_map is None:
            raise ChangeError(f"{self.router}: no route-map {self.route_map!r}")
        for index, clause in enumerate(route_map.clauses):
            if clause.seq == self.seq:
                from dataclasses import replace

                route_map.clauses[index] = replace(
                    clause, set_local_pref=self.local_pref
                )
                return
        raise ChangeError(
            f"{self.router}: route-map {self.route_map} has no clause {self.seq}"
        )

    def describe(self) -> str:
        return (
            f"{self.router}: route-map {self.route_map} seq {self.seq} "
            f"local-pref {self.local_pref}"
        )


@dataclass(frozen=True)
class AddRouteMapClause(Edit):
    """Insert a clause into a route map (creating the map if needed)."""

    router: str
    route_map: str
    clause: RouteMapClause

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        route_map = config.route_maps.get(self.route_map)
        if route_map is None:
            route_map = RouteMap(self.route_map)
            config.route_maps[self.route_map] = route_map
        try:
            route_map.add_clause(self.clause)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return (
            f"{self.router}: route-map {self.route_map} add clause "
            f"{self.clause.seq}"
        )


@dataclass(frozen=True)
class RemoveRouteMapClause(Edit):
    """Delete a clause from a route map."""

    router: str
    route_map: str
    seq: int

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        route_map = config.route_maps.get(self.route_map)
        if route_map is None:
            raise ChangeError(f"{self.router}: no route-map {self.route_map!r}")
        try:
            route_map.remove_clause(self.seq)
        except ValueError as error:
            raise ChangeError(str(error)) from None

    def describe(self) -> str:
        return f"{self.router}: route-map {self.route_map} remove clause {self.seq}"


# -- ACLs --------------------------------------------------------------------------


@dataclass(frozen=True)
class AddAclRule(Edit):
    """Append (or insert) a rule in an ACL, creating the ACL if needed.

    ``position`` of None appends; otherwise inserts at that index.
    """

    router: str
    acl: str
    rule: AclRule
    position: int | None = None

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        acl = config.acls.get(self.acl)
        if acl is None:
            acl = Acl(self.acl)
            config.acls[self.acl] = acl
        if self.position is None:
            acl.rules.append(self.rule)
        else:
            if not 0 <= self.position <= len(acl.rules):
                raise ChangeError(
                    f"{self.router}: position {self.position} out of range "
                    f"for acl {self.acl}"
                )
            acl.rules.insert(self.position, self.rule)

    def describe(self) -> str:
        return f"{self.router}: acl {self.acl} add [{self.rule}]"


@dataclass(frozen=True)
class RemoveAclRule(Edit):
    """Remove the first rule equal to ``rule`` from an ACL."""

    router: str
    acl: str
    rule: AclRule

    def apply(self, snapshot: Snapshot) -> None:
        config = snapshot.config(self.router)
        acl = config.acls.get(self.acl)
        if acl is None:
            raise ChangeError(f"{self.router}: no acl {self.acl!r}")
        try:
            acl.rules.remove(self.rule)
        except ValueError:
            raise ChangeError(
                f"{self.router}: acl {self.acl} has no rule [{self.rule}]"
            ) from None

    def describe(self) -> str:
        return f"{self.router}: acl {self.acl} remove [{self.rule}]"


@dataclass(frozen=True)
class BindAcl(Edit):
    """Attach (or detach, with ``acl=None``) an ACL to an interface."""

    router: str
    interface: str
    acl: str | None
    direction: str = "out"  # "in" or "out"

    def apply(self, snapshot: Snapshot) -> None:
        if self.direction not in ("in", "out"):
            raise ChangeError(f"bad ACL direction {self.direction!r}")
        if self.interface not in snapshot.topology.router(self.router).interfaces:
            raise ChangeError(f"{self.router} has no interface {self.interface!r}")
        settings = snapshot.config(self.router).ensure_interface(self.interface)
        if self.direction == "in":
            settings.acl_in = self.acl
        else:
            settings.acl_out = self.acl

    def describe(self) -> str:
        return (
            f"{self.router}[{self.interface}]: acl-{self.direction} "
            f"{self.acl or 'none'}"
        )


# Edits whose application can reach the incremental OSPF state (the
# fork journal checkpoints it before any of these applies).
OSPF_TOUCHING_EDITS = (
    LinkDown,  # covers LinkUp (subclass)
    ShutdownInterface,
    EnableInterface,
    SetOspfCost,
    EnableOspfInterface,
    DisableOspfInterface,
)


# -- batches --------------------------------------------------------------------


@dataclass
class Change:
    """An atomic batch of edits, applied in order."""

    edits: list[Edit] = dataclass_field(default_factory=list)
    label: str = ""

    @classmethod
    def of(cls, *edits: Edit, label: str = "") -> "Change":
        """Convenience constructor."""
        return cls(edits=list(edits), label=label)

    def apply(self, snapshot: Snapshot) -> None:
        """Apply every edit to the snapshot, in order."""
        for edit in self.edits:
            edit.apply(snapshot)

    def applied_to_copy(self, snapshot: Snapshot) -> Snapshot:
        """A changed clone, leaving the original untouched."""
        copy = snapshot.clone()
        self.apply(copy)
        return copy

    def describe(self) -> str:
        """Multi-line description of the batch."""
        header = self.label or f"change ({len(self.edits)} edits)"
        return "\n".join([header] + [f"  - {e.describe()}" for e in self.edits])

    def __len__(self) -> int:
        return len(self.edits)

    def __iter__(self):
        return iter(self.edits)
