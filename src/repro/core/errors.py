"""The typed exception hierarchy shared by every public surface.

Everything the toolchain raises on purpose descends from
:class:`ReproError`, so callers (and the service layer, which maps
exceptions to structured error frames) can catch one base class — or
match on a precise subclass — instead of fishing bare ``ValueError`` /
``RuntimeError`` out of deep call stacks.

The hierarchy keeps backward compatibility by *double inheritance*:
each subclass also derives from the stdlib exception it historically
was (``SchemaError`` stays a ``ValueError``, ``ConvergenceError`` a
``RuntimeError``), so pre-existing ``except ValueError`` call sites
keep working.

The classes live here — below every other repro module — so the config
parsers, the serializer, and the api facade can all import them
without cycles; :mod:`repro.api.errors` is the public re-export.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every intentional repro exception."""


class SchemaError(ReproError, ValueError):
    """A serialized document has an unknown version or wrong kind.

    Raised by :func:`repro.core.serialize.check_document` (and every
    ``from_dict``) and by the service protocol when a frame's
    ``schema_version``/``kind`` is not one this build reads.
    """


class ConvergenceError(ReproError, RuntimeError):
    """The base network failed to converge (or was asked to before it
    could): initial simulation raised, or a service was queried with a
    base it could not build."""


class InvalidChangeError(ReproError, ValueError):
    """A change (or request argument) does not fit this network.

    Covers malformed change scripts, edits referencing unknown
    routers/links, and bad option values (unknown topology kinds,
    backends, invariant names) surfaced through :mod:`repro.api`.
    """


class ProtocolError(ReproError, ValueError):
    """A service wire frame is malformed: not JSON, not a frame, an
    unknown op, or a reply that does not match the request."""
