"""Text format for change scripts.

Operators keep planned changes in files; this module parses a small
line-oriented script into a :class:`~repro.core.change.Change` (and
serializes back), so the CLI can review changes from disk::

    # drain the SEAT uplink
    link down SEAT LOSA
    interface shutdown SEAT eth1
    static add r0 10.99.0.0/24 next-hop 10.0.0.1
    static add r0 10.98.0.0/24 drop
    static remove r0 10.99.0.0/24 next-hop 10.0.0.1
    ospf cost SEAT eth0 50
    ospf enable r1 eth2 area 0 cost 10
    ospf disable r1 eth2
    bgp announce cust_seat0 10.254.9.0/24
    bgp withdraw cust_seat0 10.254.9.0/24
    acl add r3 FILTER deny dst 172.16.5.0/24
    acl add r3 FILTER permit dst 0.0.0.0/0
    acl remove r3 FILTER deny dst 172.16.5.0/24
    acl bind r3 eth1 out FILTER
    acl unbind r3 eth1 out
    route-map local-pref SEAT IMP_CUST 10 200

One statement per line; ``#`` comments; blank lines ignored.
"""

from __future__ import annotations

from repro.config.acl import AclAction, AclRule
from repro.config.routing import StaticRouteConfig
from repro.core.change import (
    AddAclRule,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    Change,
    DisableOspfInterface,
    Edit,
    EnableInterface,
    EnableOspfInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.core.errors import InvalidChangeError
from repro.net.addr import IPv4Address, Prefix


class ChangeParseError(InvalidChangeError):
    """Raised for malformed change scripts, with line context."""

    def __init__(self, line_number: int, line: str, message: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number


def _parse_static(tokens: list[str]) -> tuple[str, StaticRouteConfig]:
    # static (add|remove) <router> <prefix> (next-hop <ip> | interface <name> | drop)
    router, prefix_text = tokens[0], tokens[1]
    prefix = Prefix(prefix_text)
    rest = tokens[2:]
    if rest == ["drop"]:
        return router, StaticRouteConfig(prefix, drop=True)
    if len(rest) == 2 and rest[0] == "next-hop":
        return router, StaticRouteConfig(prefix, next_hop=IPv4Address(rest[1]))
    if len(rest) == 2 and rest[0] == "interface":
        return router, StaticRouteConfig(prefix, interface=rest[1])
    raise ValueError("bad static target")


def _parse_acl_rule(tokens: list[str]) -> AclRule:
    # (permit|deny) dst <prefix> [src <prefix>] [proto <n>] [dport lo-hi]
    action = AclAction.PERMIT if tokens[0] == "permit" else AclAction.DENY
    fields: dict = {}
    rest = tokens[1:]
    while rest:
        if rest[0] == "dst":
            fields["dst"] = Prefix(rest[1])
        elif rest[0] == "src":
            fields["src"] = Prefix(rest[1])
        elif rest[0] == "proto":
            fields["proto"] = int(rest[1])
        elif rest[0] == "dport":
            lo, _, hi = rest[1].partition("-")
            fields["dport_lo"] = int(lo)
            fields["dport_hi"] = int(hi or lo)
        else:
            raise ValueError(f"bad acl field {rest[0]!r}")
        rest = rest[2:]
    if "dst" not in fields:
        raise ValueError("acl rule needs a dst")
    return AclRule(action=action, **fields)


def _parse_edit(tokens: list[str]) -> Edit:
    head = tokens[0]
    if head == "link" and len(tokens) >= 4:
        cls = {"down": LinkDown, "up": LinkUp}.get(tokens[1])
        if cls is None:
            raise ValueError("expected link down|up")
        extra = tokens[4:6] if len(tokens) >= 6 else (None, None)
        return cls(tokens[2], tokens[3], *extra)
    if head == "interface" and len(tokens) == 4:
        cls = {"shutdown": ShutdownInterface, "enable": EnableInterface}.get(
            tokens[1]
        )
        if cls is None:
            raise ValueError("expected interface shutdown|enable")
        return cls(tokens[2], tokens[3])
    if head == "static" and len(tokens) >= 5:
        router, route = _parse_static(tokens[2:])
        if tokens[1] == "add":
            return AddStaticRoute(router, route)
        if tokens[1] == "remove":
            return RemoveStaticRoute(router, route)
        raise ValueError("expected static add|remove")
    if head == "ospf":
        if tokens[1] == "cost" and len(tokens) == 5:
            return SetOspfCost(tokens[2], tokens[3], int(tokens[4]))
        if tokens[1] == "enable" and len(tokens) >= 4:
            options = dict(zip(tokens[4::2], tokens[5::2]))
            return EnableOspfInterface(
                tokens[2],
                tokens[3],
                area=int(options.get("area", 0)),
                cost=int(options.get("cost", 10)),
            )
        if tokens[1] == "disable" and len(tokens) == 4:
            return DisableOspfInterface(tokens[2], tokens[3])
        raise ValueError("bad ospf statement")
    if head == "bgp" and len(tokens) == 4:
        if tokens[1] == "announce":
            return AnnouncePrefix(tokens[2], Prefix(tokens[3]))
        if tokens[1] == "withdraw":
            return WithdrawPrefix(tokens[2], Prefix(tokens[3]))
        raise ValueError("expected bgp announce|withdraw")
    if head == "acl":
        if tokens[1] == "add" and len(tokens) >= 6:
            return AddAclRule(tokens[2], tokens[3], _parse_acl_rule(tokens[4:]))
        if tokens[1] == "remove" and len(tokens) >= 6:
            return RemoveAclRule(tokens[2], tokens[3], _parse_acl_rule(tokens[4:]))
        if tokens[1] == "bind" and len(tokens) == 6:
            return BindAcl(tokens[2], tokens[3], tokens[5], tokens[4])
        if tokens[1] == "unbind" and len(tokens) == 5:
            return BindAcl(tokens[2], tokens[3], None, tokens[4])
        raise ValueError("bad acl statement")
    if head == "route-map" and len(tokens) == 6 and tokens[1] == "local-pref":
        return SetLocalPref(tokens[2], tokens[3], int(tokens[4]), int(tokens[5]))
    raise ValueError(f"unknown statement {head!r}")


def parse_change(text: str, label: str = "") -> Change:
    """Parse a change script into an atomic :class:`Change`.

    The single-change form: ``---`` separators are rejected here (use
    :func:`parse_change_batch` for multi-change scripts).
    """
    edits: list[Edit] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == CHANGE_SEPARATOR:
            raise ChangeParseError(
                line_number,
                raw,
                "'---' separators need parse_change_batch",
            )
        try:
            edits.append(_parse_edit(line.split()))
        except (ValueError, IndexError) as error:
            raise ChangeParseError(line_number, raw, str(error)) from None
    return Change(edits=edits, label=label)


# A line holding only this token splits a script into multiple changes
# that the batch pipeline analyzes in one recompute pass.
CHANGE_SEPARATOR = "---"


def parse_change_batch(text: str, label: str = "") -> list[Change]:
    """Parse a change script into a batch of one or more changes.

    ``---`` on a line of its own closes the current change and starts
    the next; scripts without separators parse as a single-change
    batch, exactly like :func:`parse_change`.  Empty stanzas (leading,
    trailing, or doubled separators) are dropped, but an entirely
    empty script still yields one empty change so callers always get
    at least one element.  Stanza labels derive from ``label`` as
    ``label#1``, ``label#2``, ... when there is more than one stanza.
    """
    stanzas: list[list[Edit]] = [[]]
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == CHANGE_SEPARATOR:
            stanzas.append([])
            continue
        try:
            stanzas[-1].append(_parse_edit(line.split()))
        except (ValueError, IndexError) as error:
            raise ChangeParseError(line_number, raw, str(error)) from None
    parsed = [Change(edits=edits) for edits in stanzas if edits]
    if not parsed:
        return [Change(edits=[], label=label)]
    if len(parsed) == 1:
        parsed[0].label = label
    else:
        for index, change in enumerate(parsed, start=1):
            change.label = f"{label}#{index}" if label else f"change #{index}"
    return parsed


def serialize_change(change: Change) -> str:
    """Render a change back to script text (best-effort inverse)."""
    lines = []
    if change.label:
        lines.append(f"# {change.label}")
    for edit in change.edits:
        lines.append(_serialize_edit(edit))
    return "\n".join(lines) + "\n"


def serialize_change_batch(changes: list[Change]) -> str:
    """Render a batch back to script text with ``---`` separators."""
    return f"{CHANGE_SEPARATOR}\n".join(
        serialize_change(change) for change in changes
    )


def _serialize_edit(edit: Edit) -> str:
    if isinstance(edit, LinkUp):  # subclass of LinkDown: check first
        suffix = (
            f" {edit.interface1} {edit.interface2}"
            if edit.interface1 is not None
            else ""
        )
        return f"link up {edit.router1} {edit.router2}{suffix}"
    if isinstance(edit, LinkDown):
        suffix = (
            f" {edit.interface1} {edit.interface2}"
            if edit.interface1 is not None
            else ""
        )
        return f"link down {edit.router1} {edit.router2}{suffix}"
    if isinstance(edit, ShutdownInterface):
        return f"interface shutdown {edit.router} {edit.interface}"
    if isinstance(edit, EnableInterface):
        return f"interface enable {edit.router} {edit.interface}"
    if isinstance(edit, (AddStaticRoute, RemoveStaticRoute)):
        verb = "add" if isinstance(edit, AddStaticRoute) else "remove"
        route = edit.route
        if route.drop:
            target = "drop"
        elif route.next_hop is not None:
            target = f"next-hop {route.next_hop}"
        else:
            target = f"interface {route.interface}"
        return f"static {verb} {edit.router} {route.prefix} {target}"
    if isinstance(edit, SetOspfCost):
        return f"ospf cost {edit.router} {edit.interface} {edit.cost}"
    if isinstance(edit, EnableOspfInterface):
        return (
            f"ospf enable {edit.router} {edit.interface} "
            f"area {edit.area} cost {edit.cost}"
        )
    if isinstance(edit, DisableOspfInterface):
        return f"ospf disable {edit.router} {edit.interface}"
    if isinstance(edit, AnnouncePrefix):
        return f"bgp announce {edit.router} {edit.prefix}"
    if isinstance(edit, WithdrawPrefix):
        return f"bgp withdraw {edit.router} {edit.prefix}"
    if isinstance(edit, AddAclRule):
        return f"acl add {edit.router} {edit.acl} {edit.rule}"
    if isinstance(edit, RemoveAclRule):
        return f"acl remove {edit.router} {edit.acl} {edit.rule}"
    if isinstance(edit, BindAcl):
        if edit.acl is None:
            return f"acl unbind {edit.router} {edit.interface} {edit.direction}"
        return f"acl bind {edit.router} {edit.interface} {edit.direction} {edit.acl}"
    if isinstance(edit, SetLocalPref):
        return (
            f"route-map local-pref {edit.router} {edit.route_map} "
            f"{edit.seq} {edit.local_pref}"
        )
    raise ValueError(f"cannot serialize edit {type(edit).__name__}")
