"""The differential network analyzer (the paper's contribution).

:class:`DifferentialNetworkAnalyzer` keeps one *converged* network
state and, for each change, computes exactly what that change did —
without re-simulating the network:

1. **Dirty-set extraction** — each primitive edit is dispatched to a
   handler that surgically updates the control-plane state it touches
   (dynamic SPF per affected source, advertised-prefix diffs,
   connected/static re-derivation for touched routers) and emits dirty
   markers (affected SPF sources, changed advertisement prefixes,
   dirty BGP prefixes, ACL spans).
2. **Scoped recomputation** — OSPF routes are recomputed only for
   affected sources (and only for changed prefixes elsewhere); BGP is
   re-solved per dirty prefix; FIB entries are rebuilt only for
   (router, prefix) pairs whose best route or next-hop resolution
   changed.
3. **Differential data plane** — FIB deltas update the atom table in
   place; reachability is recomputed only for dirty atoms, and the
   report's canonical reachability segments come from diffing the
   cached pre-change behaviour against the recomputed one.

``analyze`` *commits*: the analyzer's snapshot and state advance to
the post-change network.  (Benchmarks exploit paired changes —
fail/recover, add/remove — to return to base.)  ``what_if`` and the
``fork()`` context manager instead evaluate changes against an undo
journal (:mod:`repro.core.forking`) and roll the state back, so many
independent candidate changes can be scored against one converged
base — the campaign engine (:mod:`repro.campaign`) is built on this.
Output equality with :class:`~repro.core.snapshot_diff.SnapshotDiff`
is the correctness oracle exercised throughout the test suite.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.config.acl import Acl, AclAction
from repro.controlplane.bgp import collect_origins, discover_sessions, solve_prefix
from repro.controlplane.connected import connected_routes, static_routes
from repro.controlplane.incremental import OspfDirty, OspfIncremental
from repro.controlplane.ospf import (
    backbone_advertisements,
    backbone_totals,
    ospf_routes_for_source,
)
from repro.controlplane.rib import Route
from repro.controlplane.simulation import build_fib_entry, simulate
from repro.core.change import (
    AddAclRule,
    AddBgpNeighbor,
    AddRouteMapClause,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    Change,
    DisableOspfInterface,
    EnableOspfInterface,
    EnableInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveBgpNeighbor,
    RemoveRouteMapClause,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.core.delta import DeltaReport, diff_reach_coverage
from repro.core.forking import ForkError, UndoJournal
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.net.interval import IntervalSet

INFINITY = float("inf")
NON_BGP = frozenset({"bgp"})


@dataclass
class _EditContext:
    """Dirty-set accumulator threaded through edit handlers."""

    ospf: OspfDirty = field(default_factory=OspfDirty)
    touched_routers: set[str] = field(default_factory=set)
    dirty_bgp_prefixes: set[Prefix] = field(default_factory=set)
    all_bgp_dirty: bool = False
    sessions_stale: bool = False
    policy_routers: set[str] = field(default_factory=set)
    acl_spans: list[tuple[int, int]] = field(default_factory=list)


class DifferentialNetworkAnalyzer:
    """Incremental change-impact analysis over one live network."""

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot
        self.state = simulate(snapshot, precompute_reachability=True)
        self._ospf = OspfIncremental(self.state)
        self._origins = collect_origins(snapshot)
        self._journal: UndoJournal | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(self, change: Change) -> DeltaReport:
        """Apply ``change`` and return everything it did.

        The analyzer's state advances to the post-change network.
        """
        report = DeltaReport(change.label or "differential")
        t0 = time.perf_counter()

        bgp_active = self._bgp_active()
        pair_index: dict[tuple[str, IPv4Address], set[Prefix]] = {}
        pre_fingerprint: dict[tuple[str, IPv4Address], tuple] = {}
        pre_liveness: dict[tuple[str, IPv4Address], bool] = {}
        if bgp_active:
            pair_index = self._bgp_pair_index()
            pre_fingerprint = {
                pair: self._pair_fingerprint(pair) for pair in pair_index
            }
            pre_liveness = self._session_liveness()

        context = _EditContext()
        for edit in change.edits:
            self._apply_edit(edit, context)
        t_edits = time.perf_counter()

        best_changed: dict[tuple[str, Prefix], tuple[Route | None, Route | None]] = {}
        igp_touched = self._recompute_ospf(context, best_changed, report)
        igp_touched |= self._recompute_local(context, best_changed, report)
        for router in igp_touched:
            self._refresh_igp_adapter(router)
        t_igp = time.perf_counter()

        solved = 0
        if bgp_active:
            solved = self._recompute_bgp(
                context,
                pair_index,
                pre_fingerprint,
                pre_liveness,
                best_changed,
                report,
            )
        t_bgp = time.perf_counter()

        dirty_spans = self._update_fibs(context, best_changed, report)
        dirty_spans.extend(context.acl_spans)
        t_fib = time.perf_counter()

        dirty_atoms = self._recompute_reachability(dirty_spans, report)
        t_end = time.perf_counter()

        report.timings = {
            "edits": t_edits - t0,
            "igp": t_igp - t_edits,
            "bgp": t_bgp - t_igp,
            "fib": t_fib - t_bgp,
            "reachability": t_end - t_fib,
            "total": t_end - t0,
        }
        report.counters.update(
            {
                "spf_sources_recomputed": len(
                    {router for router, _ in context.ospf.sources}
                ),
                "bgp_prefixes_resolved": solved,
                "fib_entries_updated": report.num_fib_changes(),
                "atoms_analyzed": dirty_atoms,
                "atoms_total": self.state.dataplane.atom_table.num_atoms(),
            }
        )
        return report

    @contextmanager
    def fork(self) -> Iterator["DifferentialNetworkAnalyzer"]:
        """Speculative analysis scope: every ``analyze`` inside the
        ``with`` block is rolled back on exit.

        The yielded object is this analyzer itself — reports computed
        inside the block are exact (identical to committed analysis of
        the same changes) but the snapshot and converged state return
        to their pre-fork values afterwards, at a cost proportional to
        the state the block actually touched.  Forks do not nest.
        """
        if self._journal is not None:
            raise ForkError("analyzer forks cannot be nested")
        journal = UndoJournal(self)
        self._journal = journal
        try:
            yield self
        finally:
            self._journal = None
            journal.rollback()

    def what_if(self, change: Change) -> DeltaReport:
        """Evaluate ``change`` without committing it.

        Equivalent to ``analyze`` in its report, but the analyzer's
        snapshot and state are rolled back afterwards — also when the
        change fails to apply.
        """
        with self.fork():
            return self.analyze(change)

    # ------------------------------------------------------------------
    # Edit dispatch
    # ------------------------------------------------------------------

    def _apply_edit(self, edit, context: _EditContext) -> None:
        if self._journal is not None:
            self._journal.before_edit(edit)
        if isinstance(edit, (LinkDown, LinkUp)):
            edit.apply(self.snapshot)
            r1, r2 = edit.router1, edit.router2
            context.touched_routers.update((r1, r2))
            context.ospf.merge(self._ospf.refresh_router_adverts(r1))
            context.ospf.merge(self._ospf.refresh_router_adverts(r2))
            context.ospf.merge(self._ospf.refresh_pair(r1, r2))
            context.sessions_stale = True
        elif isinstance(edit, (ShutdownInterface, EnableInterface)):
            edit.apply(self.snapshot)
            context.touched_routers.add(edit.router)
            context.ospf.merge(self._ospf.refresh_router_adverts(edit.router))
            link = self.snapshot.topology.link_of_interface(
                edit.router, edit.interface
            )
            if link is not None:
                peer_router = link.other_end(edit.router)[0]
                context.touched_routers.add(peer_router)
                context.ospf.merge(self._ospf.refresh_router_adverts(peer_router))
                context.ospf.merge(
                    self._ospf.refresh_pair(edit.router, peer_router)
                )
            context.sessions_stale = True
        elif isinstance(edit, (AddStaticRoute, RemoveStaticRoute)):
            edit.apply(self.snapshot)
            context.touched_routers.add(edit.router)
        elif isinstance(
            edit, (SetOspfCost, EnableOspfInterface, DisableOspfInterface)
        ):
            edit.apply(self.snapshot)
            context.ospf.merge(self._ospf.refresh_router_adverts(edit.router))
            peer = self.snapshot.topology.interface_peer(
                edit.router, edit.interface
            )
            if peer is not None:
                context.ospf.merge(
                    self._ospf.refresh_pair(edit.router, peer.router)
                )
        elif isinstance(edit, (AnnouncePrefix, WithdrawPrefix)):
            edit.apply(self.snapshot)
            context.dirty_bgp_prefixes.add(edit.prefix)
        elif isinstance(edit, (AddBgpNeighbor, RemoveBgpNeighbor)):
            edit.apply(self.snapshot)
            context.sessions_stale = True
            context.all_bgp_dirty = True
        elif isinstance(
            edit, (SetLocalPref, AddRouteMapClause, RemoveRouteMapClause)
        ):
            edit.apply(self.snapshot)
            context.policy_routers.add(edit.router)
        elif isinstance(edit, (AddAclRule, RemoveAclRule)):
            self._apply_acl_rule_edit(edit, context)
        elif isinstance(edit, BindAcl):
            self._apply_bind_acl(edit, context)
        else:
            raise TypeError(f"unhandled edit type {type(edit).__name__}")

    # -- ACL handlers -----------------------------------------------------

    def _binding_count(self, router: str, acl_name: str) -> int:
        config = self.snapshot.configs.get(router)
        if config is None:
            return 0
        count = 0
        for settings in config.interfaces.values():
            if settings.acl_in == acl_name:
                count += 1
            if settings.acl_out == acl_name:
                count += 1
        return count

    def _apply_acl_rule_edit(
        self, edit: AddAclRule | RemoveAclRule, context: _EditContext
    ) -> None:
        bindings = self._binding_count(edit.router, edit.acl)
        edit.apply(self.snapshot)
        if bindings == 0:
            return  # unbound ACL: no data-plane effect
        lo, hi = edit.rule.dst.interval()
        register = isinstance(edit, AddAclRule)
        dataplane = self.state.dataplane
        for _ in range(bindings):
            dataplane.acl_interval_structure(lo, hi, register)
            if self._journal is not None:
                self._journal.record_acl_structure(lo, hi, register)
        dataplane.invalidate_span(lo, hi)
        if self._journal is not None:
            self._journal.record_acl_span(lo, hi)
        context.acl_spans.append((lo, hi))

    def _nonpermit_spans(self, acl: Acl) -> list[tuple[int, int]]:
        spans: list[tuple[int, int]] = []
        for interval_set, action in acl.project_dst():
            if action is AclAction.PERMIT:
                continue
            spans.extend(interval_set.pairs)
        return spans

    def _apply_bind_acl(self, edit: BindAcl, context: _EditContext) -> None:
        config = self.snapshot.config(edit.router)
        settings = config.ensure_interface(edit.interface)
        old_name = settings.acl_in if edit.direction == "in" else settings.acl_out
        edit.apply(self.snapshot)
        if old_name == edit.acl:
            return  # rebinding the same ACL changes nothing
        dataplane = self.state.dataplane
        for name, register in ((old_name, False), (edit.acl, True)):
            if name is None:
                continue
            acl = config.acls.get(name)
            if acl is None:
                continue
            for rule in acl.rules:
                lo, hi = rule.dst.interval()
                dataplane.acl_interval_structure(lo, hi, register)
                if self._journal is not None:
                    self._journal.record_acl_structure(lo, hi, register)
            for lo, hi in self._nonpermit_spans(acl):
                dataplane.invalidate_span(lo, hi)
                if self._journal is not None:
                    self._journal.record_acl_span(lo, hi)
                context.acl_spans.append((lo, hi))

    # ------------------------------------------------------------------
    # OSPF / local route recomputation
    # ------------------------------------------------------------------

    def _install_route_update(
        self,
        router: str,
        protocol: str,
        prefix: Prefix,
        new_route: Route | None,
        best_changed: dict,
        report: DeltaReport,
    ) -> bool:
        """Install/withdraw one protocol route; track best-route flips.

        Returns True if the router's best route for the prefix changed.
        """
        if self._journal is not None:
            self._journal.save_rib_prefix(router, prefix)
        rib = self.state.ribs[router]
        old_best = rib.best(prefix)
        if new_route is None:
            rib.withdraw(prefix, protocol)
        else:
            rib.install(new_route)
        new_best = rib.best(prefix)
        if old_best == new_best:
            return False
        key = (router, prefix)
        existing = best_changed.get(key)
        original = existing[0] if existing is not None else old_best
        if original == new_best:
            best_changed.pop(key, None)
        else:
            best_changed[key] = (original, new_best)
        report.record_rib(router, prefix, old_best, new_best)
        return True

    def _recompute_ospf(
        self, context: _EditContext, best_changed: dict, report: DeltaReport
    ) -> set[str]:
        """Refresh OSPF routes for dirty sources/prefixes.

        Returns routers whose non-BGP routes changed (IGP adapter must
        be rebuilt for them).
        """
        state = self.state
        if context.ospf.is_empty():
            return set()
        multi_area = len(state.ospf_state.areas()) > 1
        adverts = None
        totals = None
        affected_sources = {router for router, _area in context.ospf.sources}
        if multi_area:
            # Inter-area summaries may have shifted anywhere; recompute
            # them once and fall back to refreshing every OSPF source
            # (each refresh reuses its incremental SPF — no Dijkstras).
            adverts = backbone_advertisements(state.ospf_state)
            totals = backbone_totals(state.ospf_state, adverts)
            if self._journal is not None:
                self._journal.save_backbone()
            state.backbone_adverts = adverts
            state.backbone_totals_map = totals
            affected_sources = set(state.ospf_state.membership)

        touched: set[str] = set()
        for source in affected_sources:
            new_routes = ospf_routes_for_source(
                state.ospf_state, source, adverts, totals
            )
            old_routes = state.ospf_routes.get(source, {})
            if self._journal is not None:
                self._journal.save_ospf_routes(source)
            changed = False
            for prefix in set(old_routes) | set(new_routes):
                old = old_routes.get(prefix)
                new = new_routes.get(prefix)
                if old == new:
                    continue
                changed = True
                self._install_route_update(
                    source, "ospf", prefix, new, best_changed, report
                )
            state.ospf_routes[source] = new_routes
            if changed:
                touched.add(source)

        if not multi_area:
            for area, prefixes in context.ospf.prefixes.items():
                if not prefixes:
                    continue
                for source in state.ospf_state.area_routers(area):
                    if source in affected_sources:
                        continue
                    partial = ospf_routes_for_source(
                        state.ospf_state,
                        source,
                        adverts,
                        totals,
                        only_prefixes=prefixes,
                    )
                    if self._journal is not None:
                        self._journal.save_ospf_routes(source)
                    cached = state.ospf_routes.setdefault(source, {})
                    changed = False
                    for prefix in prefixes:
                        old = cached.get(prefix)
                        new = partial.get(prefix)
                        if old == new:
                            continue
                        changed = True
                        self._install_route_update(
                            source, "ospf", prefix, new, best_changed, report
                        )
                        if new is None:
                            cached.pop(prefix, None)
                        else:
                            cached[prefix] = new
                    if changed:
                        touched.add(source)
        return touched

    def _recompute_local(
        self, context: _EditContext, best_changed: dict, report: DeltaReport
    ) -> set[str]:
        """Re-derive connected/static routes for touched routers."""
        state = self.state
        touched: set[str] = set()
        for router in context.touched_routers:
            new_connected = connected_routes(self.snapshot, router)
            new_static = static_routes(
                self.snapshot, router, new_connected, state.address_index
            )
            for protocol, new_map, cache in (
                ("connected", new_connected, state.connected),
                ("static", new_static, state.statics),
            ):
                if self._journal is not None:
                    self._journal.save_route_cache(protocol, router)
                old_map = cache.get(router, {})
                for prefix in set(old_map) | set(new_map):
                    old = old_map.get(prefix)
                    new = new_map.get(prefix)
                    if old == new:
                        continue
                    touched.add(router)
                    self._install_route_update(
                        router, protocol, prefix, new, best_changed, report
                    )
                cache[router] = new_map
        return touched

    def _refresh_igp_adapter(self, router: str) -> None:
        if self._journal is not None:
            self._journal.save_igp_router(router)
        rib = self.state.ribs[router]
        non_bgp = {}
        for prefix in rib.prefixes():
            best = rib.best_excluding(prefix, NON_BGP)
            if best is not None:
                non_bgp[prefix] = best
        self.state.igp.set_router_routes(router, non_bgp)

    # ------------------------------------------------------------------
    # BGP recomputation
    # ------------------------------------------------------------------

    def _bgp_active(self) -> bool:
        if self.state.bgp_solutions:
            return True
        return any(
            config.bgp is not None for config in self.snapshot.configs.values()
        )

    def _bgp_pair_index(self) -> dict[tuple[str, IPv4Address], set[Prefix]]:
        """(router, next-hop) -> prefixes whose solution involves it."""
        index: dict[tuple[str, IPv4Address], set[Prefix]] = {}
        for prefix, solution in self.state.bgp_solutions.items():
            for (receiver, _sender), candidate in solution.adj_in.items():
                if candidate.next_hop is not None:
                    index.setdefault(
                        (receiver, candidate.next_hop), set()
                    ).add(prefix)
            for router, candidate in solution.best.items():
                if candidate.next_hop is not None:
                    index.setdefault((router, candidate.next_hop), set()).add(
                        prefix
                    )
        return index

    def _pair_fingerprint(self, pair: tuple[str, IPv4Address]) -> tuple:
        router, address = pair
        cost = self.state.igp.cost_to(router, address)
        resolved = self.state.igp.resolve(
            router, address, self.state.address_index
        )
        return (cost, resolved)

    def _session_liveness(self) -> dict[tuple[str, IPv4Address], bool]:
        liveness = {}
        for session in self.state.bgp_sessions:
            if session.direct:
                continue
            liveness[(session.local, session.peer_ip)] = (
                self.state.igp.cost_to(session.local, session.peer_ip) < INFINITY
            )
        return liveness

    def _recompute_bgp(
        self,
        context: _EditContext,
        pair_index: dict[tuple[str, IPv4Address], set[Prefix]],
        pre_fingerprint: dict[tuple[str, IPv4Address], tuple],
        pre_liveness: dict[tuple[str, IPv4Address], bool],
        best_changed: dict,
        report: DeltaReport,
    ) -> int:
        state = self.state
        dirty: set[Prefix] = set(context.dirty_bgp_prefixes)

        # Session churn.
        if context.sessions_stale:
            new_sessions = discover_sessions(self.snapshot, state.address_index)
            old_keys = {
                (s.local, s.peer, s.local_ip, s.peer_ip)
                for s in state.bgp_sessions
            }
            new_keys = {
                (s.local, s.peer, s.local_ip, s.peer_ip) for s in new_sessions
            }
            removed = old_keys - new_keys
            added = new_keys - old_keys
            if added:
                context.all_bgp_dirty = True
            if removed:
                removed_pairs = {(local, peer) for local, peer, _, _ in removed}
                for prefix, solution in state.bgp_solutions.items():
                    for receiver, sender in solution.adj_in:
                        if (sender, receiver) in removed_pairs:
                            dirty.add(prefix)
                            break
            if self._journal is not None:
                self._journal.save_sessions()
            state.bgp_sessions = new_sessions

        # Policy edits: prefixes flowing through the edited routers.
        if context.policy_routers:
            for prefix, solution in state.bgp_solutions.items():
                for receiver, sender in solution.adj_in:
                    if (
                        receiver in context.policy_routers
                        or sender in context.policy_routers
                    ):
                        dirty.add(prefix)
                        break

        # IGP-induced dirt: cost changes flip decisions; resolution
        # changes require FIB rebuilds even when decisions hold.
        resolution_refresh: set[tuple[str, Prefix]] = set()
        for pair, prefixes in pair_index.items():
            post = self._pair_fingerprint(pair)
            pre = pre_fingerprint[pair]
            if pre == post:
                continue
            if pre[0] != post[0]:
                dirty.update(prefixes)
            if pre[1] != post[1]:
                # Even when the decision holds, the resolved next hops
                # changed — those FIB entries must be rebuilt.
                router = pair[0]
                for prefix in prefixes:
                    solution = state.bgp_solutions.get(prefix)
                    if solution is None:
                        continue
                    best = solution.best.get(router)
                    if best is not None and best.next_hop == pair[1]:
                        resolution_refresh.add((router, prefix))
        post_liveness = self._session_liveness()
        if pre_liveness != post_liveness:
            context.all_bgp_dirty = True

        origins = collect_origins(self.snapshot)
        # Origination drift beyond explicit announce/withdraw edits:
        # redistribute-connected picks up connected-route changes.
        for prefix in set(origins) | set(self._origins):
            if origins.get(prefix) != self._origins.get(prefix):
                dirty.add(prefix)
        if self._journal is not None:
            self._journal.save_origins()
        self._origins = origins
        if context.policy_routers:
            # Policy can gate originations too (export maps on first hop).
            for prefix, owners in origins.items():
                if set(owners) & context.policy_routers:
                    dirty.add(prefix)
        if context.all_bgp_dirty:
            dirty = set(state.bgp_solutions) | set(origins)

        routers = self.snapshot.topology.router_names()
        for prefix in sorted(dirty):
            old_solution = state.bgp_solutions.get(prefix)
            if self._journal is not None:
                self._journal.save_bgp_solution(prefix)
            if prefix in origins:
                new_solution = solve_prefix(
                    self.snapshot,
                    prefix,
                    origins[prefix],
                    state.bgp_sessions,
                    state.igp,
                )
                state.bgp_solutions[prefix] = new_solution
            else:
                new_solution = None
                state.bgp_solutions.pop(prefix, None)
            for router in routers:
                old_route = (
                    old_solution.route_for(router) if old_solution else None
                )
                new_route = (
                    new_solution.route_for(router) if new_solution else None
                )
                if old_route == new_route:
                    continue
                self._install_route_update(
                    router, "bgp", prefix, new_route, best_changed, report
                )

        # Resolution-only refreshes enter the FIB stage via best_changed
        # with an unchanged best route (the FIB entry still differs).
        for router, prefix in resolution_refresh:
            key = (router, prefix)
            if key not in best_changed:
                best = state.ribs[router].best(prefix)
                best_changed[key] = (best, best)
        return len(dirty)

    # ------------------------------------------------------------------
    # FIB + reachability
    # ------------------------------------------------------------------

    def _update_fibs(
        self,
        context: _EditContext,
        best_changed: dict,
        report: DeltaReport,
    ) -> list[tuple[int, int]]:
        state = self.state
        spans: list[tuple[int, int]] = []
        for (router, prefix), (_old_best, _new_best) in best_changed.items():
            best = state.ribs[router].best(prefix)
            new_entry = None
            if best is not None:
                new_entry = build_fib_entry(
                    state.igp, state.address_index, router, best
                )
            fib = state.fibs.get(router)
            old_entry = fib.entry_for(prefix) if fib is not None else None
            if old_entry == new_entry:
                continue
            report.record_fib(router, prefix, old_entry, new_entry)
            if self._journal is not None:
                self._journal.save_fib_entry(router, prefix, old_entry)
            state.dataplane.update_fib_entry(router, prefix, new_entry)
            spans.append(prefix.interval())
        return spans

    def _recompute_reachability(
        self, spans: list[tuple[int, int]], report: DeltaReport
    ) -> int:
        if not spans:
            report.reach_segments = []
            return 0
        state = self.state
        reach = state.reachability
        # Close the dirty region over both sides: new atoms (merges can
        # extend past the change spans) and cached pre-change entries
        # (a purged parent atom can extend past the split sub-atom that
        # overlaps the change).  Without the closure the cache would
        # develop coverage holes and later diffs would silently miss
        # behaviour changes.
        region = IntervalSet(spans)
        while True:
            dirty_atoms = [
                atom
                for lo, hi in region.pairs
                for atom in state.dataplane.atom_table.atoms_overlapping(lo, hi)
            ]
            before = reach.entries_overlapping(region.pairs)
            widened = region
            for atom in dirty_atoms:
                widened = widened.union(IntervalSet.span(atom.lo, atom.hi))
            for lo, hi, _ in before:
                widened = widened.union(IntervalSet.span(lo, hi))
            if widened == region:
                break
            region = widened
        if self._journal is not None:
            self._journal.record_reachability(region.pairs, before)
        reach.purge_overlapping(region.pairs)
        unique_atoms = set(dirty_atoms)
        after = [
            (atom.lo, atom.hi, reach.for_atom(atom)) for atom in unique_atoms
        ]
        report.reach_segments = diff_reach_coverage(before, after)
        return len(unique_atoms)
