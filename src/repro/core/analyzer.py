"""The differential network analyzer (the paper's contribution).

:class:`DifferentialNetworkAnalyzer` keeps one *converged* network
state and, for each change, computes exactly what that change did —
without re-simulating the network.  It is the orchestrator of an
explicit three-stage pipeline:

1. **Extraction** (:mod:`repro.core.handlers`) — each primitive edit
   is dispatched through the change-handler registry, which applies it
   and folds dirty markers (affected SPF sources, changed
   advertisement prefixes, dirty BGP prefixes, ACL spans, touched
   routers) into a :class:`~repro.core.pipeline.DirtySet`.
2. **Scoped recomputation** (:mod:`repro.core.pipeline`) — OSPF routes
   are recomputed only for affected sources (and only for changed
   prefixes elsewhere); BGP is re-solved per dirty prefix; FIB entries
   are rebuilt only for (router, prefix) pairs whose best route or
   next-hop resolution changed.
3. **Differential data plane** (:mod:`repro.core.pipeline`) — FIB
   deltas update the atom table in place; reachability is recomputed
   only for dirty atoms, and the report's canonical reachability
   segments come from diffing the cached pre-change behaviour against
   the recomputed one.

``analyze`` *commits*: the analyzer's snapshot and state advance to
the post-change network.  ``analyze_batch`` applies a whole sequence
of changes to control-plane state first, **unions** their dirty sets,
and runs stages 2–3 exactly once — a batch of N edits converges in one
recompute pass instead of N, with output equal to the sequential
composition (the equivalence is enforced by tests against
:class:`~repro.core.snapshot_diff.SnapshotDiff` and
:func:`~repro.core.delta.compose_reports`).

``what_if`` / ``what_if_batch`` and the ``fork()`` context manager
instead evaluate changes against an undo journal
(:mod:`repro.core.forking`) and roll the state back, so many
independent candidate changes can be scored against one converged
base — the campaign engine (:mod:`repro.campaign`) is built on this.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.controlplane.bgp import collect_origins
from repro.controlplane.incremental import OspfIncremental
from repro.controlplane.simulation import simulate
from repro.core.change import Change, Edit
from repro.core.delta import DeltaReport, compose_reports
from repro.core.forking import ForkError, UndoJournal
from repro.core.handlers import handler_for
from repro.core.pipeline import DirtySet, RecomputePipeline
from repro.core.planner import BatchPlan, BatchPlanner, PlannerConfig
from repro.core.snapshot import Snapshot
from repro.obs import NULL_TRACER, EventLog, MetricsRegistry, Tracer
from repro.obs.provenance import ProvenanceRecord


def batch_label(changes: Sequence[Change]) -> str:
    """The default report label for a batch of changes."""
    if len(changes) == 1:
        return changes[0].label or "differential"
    labels = [change.label for change in changes if change.label]
    if labels and len(labels) == len(changes):
        return " + ".join(labels)
    return f"batch({len(changes)} changes)"


class DifferentialNetworkAnalyzer:
    """Incremental change-impact analysis over one live network."""

    def __init__(
        self,
        snapshot: Snapshot,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        planner: PlannerConfig | None = None,
    ) -> None:
        self.snapshot = snapshot
        # Observability is opt-in: the default NULL_TRACER times spans
        # (feeding report.timings) but records nothing; the metrics
        # registry accumulates deterministic work counts either way.
        # The event log (when attached) receives span/metric/provenance
        # records only for provenance-enabled passes.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        with self.tracer.span("analyze.converge"):
            self.state = simulate(snapshot, precompute_reachability=True)
        self._ospf = OspfIncremental(self.state)
        self._origins = collect_origins(snapshot)
        self._journal: UndoJournal | None = None
        self._pipeline = RecomputePipeline(self)
        # The batch planner decides, per batch and before any edit
        # applies, whether scoped recompute still beats a full re-solve
        # (and whether an oversized batch should be chunked).
        self.planner = BatchPlanner(self, planner or PlannerConfig())
        # Bumped on every *committed* analysis; callers caching derived
        # artifacts (e.g. the campaign runner's pickled base payload)
        # use it to detect that the converged state moved.
        self.generation = 0

    def __repr__(self) -> str:
        mode = "forked" if self._journal is not None else "committed"
        return (
            f"DifferentialNetworkAnalyzer({self.snapshot.summary()}; "
            f"generation {self.generation}, {mode})"
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def analyze(
        self, change: Change, provenance: bool = False
    ) -> DeltaReport:
        """Apply ``change`` and return everything it did.

        The analyzer's state advances to the post-change network.
        """
        return self.analyze_batch([change], provenance=provenance)

    def analyze_batch(
        self,
        changes: Iterable[Change],
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Apply a whole sequence of changes in one recompute pass.

        Every edit of every change is applied to control-plane state
        first (stage 1, in order), their dirty sets are unioned, and
        scoped recomputation plus the differential data plane run
        exactly once over the merged :class:`DirtySet`.  The report is
        equal to the sequential composition of per-change ``analyze``
        calls (A->B->A churn collapses away), at a fraction of the
        cost.  The analyzer's state advances to the post-batch network.

        ``provenance=True`` additionally attributes every delta to the
        edits that (may have) caused it: each edit gets a dense id in
        application order, its handler runs against a fresh dirty set
        that is stamped with the id before merging, and the recompute
        stages propagate the ids onto the deltas — see
        :attr:`DeltaReport.provenance` / :meth:`DeltaReport.why`.
        """
        batch = list(changes)
        # The planner reads converged state only, so it must run before
        # any edit applies; its decision is recorded on the root span.
        plan = self.planner.plan(batch, provenance=provenance)
        self.metrics.counter(f"planner.{plan.mode}").inc()
        if plan.chunk_sizes:
            return self._analyze_split(batch, plan, label, provenance)
        report = DeltaReport(label if label is not None else batch_label(batch))
        record: ProvenanceRecord | None = None
        if provenance:
            record = ProvenanceRecord(report.label)
            report.provenance = record
        committed = self._journal is None

        with self.tracer.span(
            "analyze.batch",
            label=report.label,
            changes=len(batch),
            committed=committed,
            plan=plan.mode,
        ) as root:
            try:
                with self.tracer.span("analyze.edits") as edits_span:
                    with self.tracer.span("analyze.epoch"):
                        epoch = self._pipeline.begin(
                            full_scope=plan.mode == "full"
                        )
                    dirty = DirtySet()
                    edits_applied = 0
                    if record is not None and self.events is not None:
                        self.events.span(
                            "analyze.batch",
                            label=report.label,
                            changes=len(batch),
                            committed=committed,
                        )
                    for change in batch:
                        for edit in change.edits:
                            if record is None:
                                self._apply_edit(edit, dirty)
                            else:
                                edit_id = record.register_edit(
                                    type(edit).__name__,
                                    edit.describe(),
                                    change.label or "",
                                )
                                per_edit = DirtySet()
                                self._apply_edit(edit, per_edit)
                                per_edit.attribute(edit_id)
                                dirty.merge(per_edit)
                                if self.events is not None:
                                    self.events.provenance(
                                        edit_id=edit_id,
                                        kind=type(edit).__name__,
                                        detail=edit.describe(),
                                        change=change.label or "",
                                    )
                            edits_applied += 1
                    edits_span.set(edits=edits_applied)

                self._pipeline.run(dirty, epoch, report)
            finally:
                # A failed committed application may still have mutated
                # state (edits apply in order, without a fork nothing
                # rolls back), so caches keyed on `generation` must see it
                # move either way.
                if committed:
                    self.generation += 1

        # Compatibility view: the pre-obs timing keys, now fed from
        # span durations (the pipeline fills igp/bgp/fib/reachability).
        report.timings["edits"] = edits_span.duration
        report.timings["total"] = root.duration
        report.counters["edits_batched"] = edits_applied
        self.metrics.counter("analyze.calls").inc()
        self.metrics.counter("analyze.edits").inc(edits_applied)
        self.metrics.histogram("analyze.batch_size").observe(edits_applied)
        if record is not None and self.events is not None:
            # Pass summary closes the provenance stream for this batch.
            self.events.provenance(
                label=report.label,
                edits=len(record.edits),
                rib_changes=report.num_rib_changes(),
                fib_changes=report.num_fib_changes(),
                segments=len(report.reach_segments),
            )
        return report

    def _analyze_split(
        self,
        batch: list[Change],
        plan: "BatchPlan",
        label: str | None,
        provenance: bool,
    ) -> DeltaReport:
        """Run an oversized batch as planner-chosen chunks.

        Each chunk is a normal (committed or forked, matching the
        caller's context) ``analyze_batch`` pass; the chunk reports
        compose into one, which the sequential-composition contract
        guarantees is byte-identical to the unsplit batch (modulo
        timings/counters).  Provenance survives: composition renumbers
        edit ids exactly as the oracle tests expect.
        """
        reports: list[DeltaReport] = []
        start = 0
        for count in plan.chunk_sizes:
            chunk = batch[start : start + count]
            start += count
            reports.append(
                self.analyze_batch(chunk, provenance=provenance)
            )
        return compose_reports(
            reports, label if label is not None else batch_label(batch)
        )

    @contextmanager
    def fork(self) -> Iterator["DifferentialNetworkAnalyzer"]:
        """Speculative analysis scope: every ``analyze`` inside the
        ``with`` block is rolled back on exit.

        The yielded object is this analyzer itself — reports computed
        inside the block are exact (identical to committed analysis of
        the same changes) but the snapshot and converged state return
        to their pre-fork values afterwards, at a cost proportional to
        the state the block actually touched.  Forks do not nest.
        """
        if self._journal is not None:
            raise ForkError("analyzer forks cannot be nested")
        journal = UndoJournal(self)
        self._journal = journal
        try:
            yield self
        finally:
            self._journal = None
            journal.rollback()

    def what_if(self, change: Change, provenance: bool = False) -> DeltaReport:
        """Evaluate ``change`` without committing it.

        Equivalent to ``analyze`` in its report, but the analyzer's
        snapshot and state are rolled back afterwards — also when the
        change fails to apply.
        """
        with self.fork():
            return self.analyze(change, provenance=provenance)

    def what_if_batch(
        self,
        changes: Iterable[Change],
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Evaluate a batch of changes without committing any of them.

        Equivalent to :meth:`analyze_batch` in its report — one merged
        recompute pass — but fork-backed: the analyzer rolls back to
        the pre-batch state afterwards, also on application errors.
        The provenance record (and any event-log records) survive the
        rollback — they document what the evaluation *would* do.
        """
        with self.fork():
            return self.analyze_batch(
                changes, label=label, provenance=provenance
            )

    # ------------------------------------------------------------------
    # Edit dispatch (stage 1)
    # ------------------------------------------------------------------

    def _apply_edit(self, edit: Edit, dirty: DirtySet) -> None:
        """Extraction: journal, then dispatch through the registry."""
        handler = handler_for(type(edit))  # raises before any mutation
        if self._journal is not None:
            self._journal.before_edit(edit)
        handler(self, edit, dirty)
