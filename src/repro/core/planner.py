"""The batch planner: scoped recompute vs. full resimulation.

Scoped recomputation wins when a batch dirties a small fraction of
the BGP solution space, but it is not free: the epoch capture
(per-pair IGP fingerprints, multihop liveness pre-images) and the
per-axis scoping scans are overhead a full re-solve never pays.  Past
a crossover fraction — measured in EXPERIMENTS.md — re-solving every
prefix outright is cheaper than carefully working out that almost
every prefix is dirty.

:class:`BatchPlanner` makes that call *before* any edit applies:

- **scoped** (the default) — run the normal differential pipeline;
- **full** — the batch's statically estimated BGP blast radius
  exceeds ``full_scope_ratio`` of the current solution space: skip
  the epoch pre-images, mark everything dirty, re-solve every prefix
  and re-check every BGP FIB entry.  Chosen only with provenance off
  (edit-level attribution needs the scoped cause bookkeeping), which
  makes the planner provenance-sound by construction;
- **split** — the batch is oversized (``split_max_edits``): chunk it
  along change boundaries and compose the chunk reports, which bounds
  the worst-case cost of any single recompute pass.

All three modes produce byte-identical reports (modulo timings and
work counters): full mode relies on recompute idempotence — re-solving
a clean prefix reproduces its solution exactly, and the FIB stage
drops no-op entries — and split mode is the sequential-composition
equivalence the batch contract already guarantees.

The estimate is *static* (pre-application) and deliberately one-sided:
BGP-surface edits are estimated precisely; IGP edits estimate zero
(their BGP fallout is discovered by the adj-RIB stage's fingerprint
diffs), keeping full mode off the common what-if paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.controlplane.bgp import neighbors_using_map
from repro.core.change import (
    AddBgpNeighbor,
    AddRouteMapClause,
    AnnouncePrefix,
    Change,
    Edit,
    RemoveBgpNeighbor,
    RemoveRouteMapClause,
    SetLocalPref,
    WithdrawPrefix,
)
from repro.net.addr import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.analyzer import DifferentialNetworkAnalyzer


@dataclass(frozen=True)
class PlannerConfig:
    """Tuning knobs for :class:`BatchPlanner`.

    ``full_scope_ratio`` is the measured batch-vs-resimulate
    crossover: when the estimated dirty fraction of the BGP solution
    space reaches it, a full re-solve is cheaper than scoping.  The
    default 0.9 comes from the EXPERIMENTS.md sweep — scoped still
    wins by ~25% at 0.8, the two are within noise near 0.9, and full
    wins past that.  Values above 1.0 disable full mode; 0.0 forces
    it.  ``split_max_edits`` bounds one recompute pass; oversized
    batches are chunked along change boundaries.
    ``scope_sessions=False`` forces the session stage back onto full
    rescans — the comparison baseline for the scoped discovery path
    (benchmarks and oracle tests use it).
    """

    full_scope_ratio: float = 0.9
    split_max_edits: int = 64
    scope_sessions: bool = True


@dataclass(frozen=True)
class BatchPlan:
    """One planning decision, recorded before any edit applies.

    ``chunk_sizes`` (split mode) is the number of *changes* per chunk,
    in order; estimates are in prefixes against ``total_prefixes``.
    """

    mode: str  # "scoped" | "full" | "split"
    reason: str
    estimated_prefixes: int = 0
    total_prefixes: int = 0
    chunk_sizes: tuple[int, ...] = ()


class BatchPlanner:
    """Pure, deterministic planning over the analyzer's converged state."""

    def __init__(
        self,
        analyzer: "DifferentialNetworkAnalyzer",
        config: PlannerConfig,
    ) -> None:
        self.analyzer = analyzer
        self.config = config

    def __repr__(self) -> str:
        return f"BatchPlanner({self.config!r})"

    def plan(
        self, changes: Sequence[Change], provenance: bool = False
    ) -> BatchPlan:
        """Decide how to run one batch.  Reads converged state only —
        no edit has applied yet — so the same batch against the same
        state always plans the same way."""
        edits = sum(len(change.edits) for change in changes)
        if edits > self.config.split_max_edits and len(changes) > 1:
            chunk_sizes = self._chunk_sizes(changes)
            if len(chunk_sizes) > 1:
                return BatchPlan(
                    mode="split",
                    reason=(
                        f"{edits} edits > split_max_edits="
                        f"{self.config.split_max_edits}"
                    ),
                    chunk_sizes=chunk_sizes,
                )
        total = len(self.analyzer.state.bgp_solutions)
        if total == 0:
            return BatchPlan(
                mode="scoped", reason="no BGP solutions", total_prefixes=0
            )
        if provenance:
            # Full mode collapses per-edit causes into one blanket set,
            # which would diverge from the sequential composition —
            # attribution always takes the scoped path.
            return BatchPlan(
                mode="scoped",
                reason="provenance requires scoped attribution",
                total_prefixes=total,
            )
        estimated, certain_full = self._estimate_bgp_scope(changes)
        if certain_full:
            estimated = total
        ratio = estimated / total
        if ratio >= self.config.full_scope_ratio:
            return BatchPlan(
                mode="full",
                reason=(
                    f"estimated {estimated}/{total} dirty prefixes >= "
                    f"crossover {self.config.full_scope_ratio:.2f}"
                ),
                estimated_prefixes=estimated,
                total_prefixes=total,
            )
        return BatchPlan(
            mode="scoped",
            reason=f"estimated {estimated}/{total} dirty prefixes",
            estimated_prefixes=estimated,
            total_prefixes=total,
        )

    # ------------------------------------------------------------------
    # Static scope estimation
    # ------------------------------------------------------------------

    def _estimate_bgp_scope(
        self, changes: Sequence[Change]
    ) -> tuple[int, bool]:
        """(estimated dirty BGP prefixes, certain-full?).

        A static upper bound for BGP-surface edits; IGP edits
        deliberately estimate zero (their fallout is discovered
        dynamically).  ``AddBgpNeighbor`` is certain-full: a completed
        session can attract any prefix.
        """
        prefixes: set[Prefix] = set()
        for change in changes:
            for edit in change.edits:
                if isinstance(edit, AddBgpNeighbor):
                    return 0, True
                prefixes |= self._edit_scope(edit)
        return len(prefixes), False

    def _edit_scope(self, edit: Edit) -> set[Prefix]:
        state = self.analyzer.state
        if isinstance(edit, (AnnouncePrefix, WithdrawPrefix)):
            return {edit.prefix}
        if isinstance(edit, RemoveBgpNeighbor):
            owner = state.address_index.owner(edit.peer_ip)
            if owner is None or owner.router == edit.router:
                return set()
            pairs = {
                (edit.router, owner.router),
                (owner.router, edit.router),
            }
            return self._prefixes_over_pairs(pairs)
        if isinstance(edit, SetLocalPref):
            config = self.analyzer.snapshot.configs.get(edit.router)
            if config is None:
                return set()
            bound_pairs: set[tuple[str, str]] = set()
            for peer_ip, direction in neighbors_using_map(
                config, edit.route_map
            ):
                owner = state.address_index.owner(peer_ip)
                if owner is None or owner.router == edit.router:
                    continue
                if direction == "import":
                    bound_pairs.add((edit.router, owner.router))
                else:
                    bound_pairs.add((owner.router, edit.router))
            return self._prefixes_over_pairs(bound_pairs)
        if isinstance(edit, (AddRouteMapClause, RemoveRouteMapClause)):
            return self._prefixes_through_router(edit.router)
        return set()

    def _prefixes_over_pairs(
        self, pairs: set[tuple[str, str]]
    ) -> set[Prefix]:
        """Prefixes with an adj-RIB entry on any of the (receiver,
        sender) ``pairs`` — either orientation is checked by callers
        passing both."""
        if not pairs:
            return set()
        hit: set[Prefix] = set()
        for prefix, solution in self.analyzer.state.bgp_solutions.items():
            if pairs & set(solution.adj_in):
                hit.add(prefix)
        return hit

    def _prefixes_through_router(self, router: str) -> set[Prefix]:
        """Prefixes flowing through — or originated by — ``router``."""
        hit: set[Prefix] = set()
        for prefix, solution in self.analyzer.state.bgp_solutions.items():
            for receiver, sender in solution.adj_in:
                if router in (receiver, sender):
                    hit.add(prefix)
                    break
        for prefix, owners in self.analyzer._origins.items():
            if router in owners:
                hit.add(prefix)
        return hit

    # ------------------------------------------------------------------
    # Split chunking
    # ------------------------------------------------------------------

    def _chunk_sizes(self, changes: Sequence[Change]) -> tuple[int, ...]:
        """Greedy chunking along change boundaries: each chunk stays
        under ``split_max_edits`` unless a single change alone exceeds
        it (changes are never split internally)."""
        sizes: list[int] = []
        count = 0
        chunk_edits = 0
        for change in changes:
            n = len(change.edits)
            if count and chunk_edits + n > self.config.split_max_edits:
                sizes.append(count)
                count = 0
                chunk_edits = 0
            count += 1
            chunk_edits += n
        if count:
            sizes.append(count)
        return tuple(sizes)
