"""Stages 2 and 3 of the change-propagation pipeline.

The differential analyzer is an explicit three-stage pipeline:

1. **Extraction** (:mod:`repro.core.handlers`) — each primitive edit
   is dispatched through the handler registry, which applies it to the
   snapshot, surgically updates the control-plane structures it
   touches, and folds dirty markers into a :class:`DirtySet`.
2. **Recompute** (this module) — :class:`RecomputePipeline` consumes
   one (possibly merged) :class:`DirtySet` and refreshes exactly the
   dirtied control-plane state: OSPF routes for affected sources and
   changed advertisement prefixes, connected/static derivation for
   touched routers, BGP solutions for dirty prefixes.
3. **Differential data plane** (this module) — FIB entries are rebuilt
   only for (router, prefix) pairs whose best route or resolution
   changed, and reachability is recomputed only for dirty atoms,
   diffed against the cached pre-change behaviour.

Because the :class:`DirtySet` is a first-class value with a
``merge()`` operation, a batch of N edits (or N whole changes — see
``analyze_batch``) converges in **one** recompute pass: apply every
edit first, union the dirty sets, then run stages 2–3 exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, cast

from repro.controlplane.bgp import (
    SessionPair,
    collect_origins,
    discover_sessions,
    discover_sessions_for,
    session_scan_size,
    solve_prefix,
)
from repro.controlplane.connected import connected_routes, static_routes
from repro.controlplane.incremental import OspfDirty
from repro.controlplane.ospf import (
    backbone_advertisements,
    backbone_totals,
    ospf_routes_for_source,
)
from repro.controlplane.rib import Route
from repro.controlplane.simulation import build_fib_entry
from repro.core.delta import DeltaReport, diff_reach_coverage
from repro.net.addr import IPv4Address, Prefix
from repro.net.interval import IntervalSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable

    from repro.config.routemap import AttributeBundle
    from repro.core.analyzer import DifferentialNetworkAnalyzer
    from repro.obs.provenance import ProvenanceRecord

INFINITY = float("inf")
NON_BGP = frozenset({"bgp"})

Span = tuple[int, int]
RibKey = tuple[str, Prefix]
BestChanged = dict[RibKey, tuple[Route | None, Route | None]]
BgpPair = tuple[str, IPv4Address]
Fingerprint = tuple[object, object]


def _summary_drift(
    old_map: dict[str, dict[Prefix, float]],
    new_map: dict[str, dict[Prefix, float]],
) -> set[Prefix]:
    """Prefixes whose per-router summary costs differ between maps.

    Used to diff the backbone advertisement/total maps across a
    recompute pass: only these prefixes can change inter-area routes
    at sources whose own SPF trees did not move.
    """
    changed: set[Prefix] = set()
    for router in set(old_map) | set(new_map):
        old_routes = old_map.get(router, {})
        new_routes = new_map.get(router, {})
        for prefix in set(old_routes) | set(new_routes):
            if old_routes.get(prefix) != new_routes.get(prefix):
                changed.add(prefix)
    return changed


@dataclass
class DirtySet:
    """The intermediate representation between extraction and recompute.

    One value summarizing everything a batch of edits invalidated:

    - ``ospf`` — SPF sources whose trees changed and advertisement
      prefixes that moved, per area (:class:`OspfDirty`);
    - ``touched_routers`` — routers whose connected/static routes must
      be re-derived;
    - ``bgp_prefixes`` — prefixes whose BGP solution must be re-solved;
    - ``bgp_sessions`` — directed ``(local, peer)`` router pairs whose
      BGP sessions must be re-validated (the session-discovery stage's
      axis; replaces the old boolean ``sessions_stale`` flag);
    - ``bgp_adj_rib`` — ``(receiver, sender)`` adj-RIB pairs an
      attribute-only policy edit can perturb (fine-grained scope for
      ``SetLocalPref``-style edits);
    - ``bgp_policy`` — routers whose BGP policy changed structurally
      (dirties every prefix flowing through them);
    - ``acl_spans`` — destination header-space intervals invalidated by
      ACL edits;
    - ``all_bgp_dirty`` — the coarse escape hatch for churn that
      cannot be scoped to single prefixes (new sessions appearing).

    ``merge`` unions two dirty sets, which is what makes batched
    multi-edit analysis a single recompute pass.

    **Provenance**: when a batch is analyzed with attribution on, each
    edit's handler runs against a fresh dirty set which is then
    stamped via :meth:`attribute` — every entry it produced is tagged
    with the edit's :data:`~repro.obs.provenance.EditId` in
    ``origins`` (keyed ``(axis, element)``) — before being merged into
    the batch set.  ``merge`` unions the contributing ids per axis
    element, so after stage 1 the batch dirty set knows exactly which
    edits dirtied what, and the recompute stages can propagate those
    ids onto the deltas they emit.
    """

    ospf: OspfDirty = field(default_factory=OspfDirty)
    touched_routers: set[str] = field(default_factory=set)
    bgp_prefixes: set[Prefix] = field(default_factory=set)
    bgp_sessions: set[SessionPair] = field(default_factory=set)
    bgp_adj_rib: set[SessionPair] = field(default_factory=set)
    bgp_policy: set[str] = field(default_factory=set)
    acl_spans: list[Span] = field(default_factory=list)
    all_bgp_dirty: bool = False
    # (axis, element) -> contributing edit ids; empty unless the batch
    # is analyzed with provenance on.
    origins: dict[tuple[str, object], set[int]] = field(default_factory=dict)

    @property
    def spf_sources(self) -> set[tuple[str, int]]:
        """(router, area) pairs whose SPF trees changed."""
        return self.ospf.sources

    @property
    def advert_prefixes(self) -> dict[int, set[Prefix]]:
        """area -> prefixes whose OSPF advertisements changed."""
        return self.ospf.prefixes

    def sizes(self) -> dict[str, int]:
        """Per-axis cardinalities, for stage attribution and metrics.

        These are the numbers a recompute-stage span carries as
        labels, so a profile can answer "which stage cost what, and
        why" — the *why* being how much each axis dirtied.
        """
        return {
            "spf_sources": len(self.ospf.sources),
            "advert_prefixes": sum(
                len(prefixes) for prefixes in self.ospf.prefixes.values()
            ),
            "touched_routers": len(self.touched_routers),
            "bgp_prefixes": len(self.bgp_prefixes),
            "bgp_sessions": len(self.bgp_sessions),
            "bgp_adj_rib": len(self.bgp_adj_rib),
            "bgp_policy": len(self.bgp_policy),
            "acl_spans": len(self.acl_spans),
        }

    def merge(self, other: "DirtySet") -> "DirtySet":
        """Fold ``other`` into this dirty set (in place); returns self.

        Origins union per axis element, so provenance survives the
        batch union: an element dirtied by several edits ends up
        attributed to all of them.
        """
        self.ospf.merge(other.ospf)
        self.touched_routers.update(other.touched_routers)
        self.bgp_prefixes.update(other.bgp_prefixes)
        self.bgp_sessions.update(other.bgp_sessions)
        self.bgp_adj_rib.update(other.bgp_adj_rib)
        self.bgp_policy.update(other.bgp_policy)
        self.acl_spans.extend(other.acl_spans)
        self.all_bgp_dirty = self.all_bgp_dirty or other.all_bgp_dirty
        for key, ids in other.origins.items():
            self.origins.setdefault(key, set()).update(ids)
        return self

    # -- provenance ---------------------------------------------------------

    def attribute(self, edit_id: int) -> "DirtySet":
        """Tag every current entry as contributed by ``edit_id``.

        Called by the analyzer right after one edit's handler ran
        against a fresh dirty set: everything in here was produced by
        that edit.  Returns self.
        """

        def mark(axis: str, element: object) -> None:
            self.origins.setdefault((axis, element), set()).add(edit_id)

        for source in self.ospf.sources:
            mark("spf_source", source)
        for area, prefixes in self.ospf.prefixes.items():
            for prefix in prefixes:
                mark("advert_prefix", (area, prefix))
        for router in self.touched_routers:
            mark("touched_router", router)
        for prefix in self.bgp_prefixes:
            mark("bgp_prefix", prefix)
        for pair in self.bgp_sessions:
            mark("bgp_session", pair)
        for pair in self.bgp_adj_rib:
            mark("bgp_adj_rib", pair)
        for router in self.bgp_policy:
            mark("bgp_policy", router)
        for span in self.acl_spans:
            mark("acl_span", span)
        if self.all_bgp_dirty:
            mark("all_bgp_dirty", None)
        return self

    def origin(self, axis: str, element: object = None) -> set[int]:
        """The edit ids that dirtied one axis element (empty if none)."""
        return self.origins.get((axis, element), set())

    def igp_origin_union(self) -> set[int]:
        """Every edit id that touched an IGP-feeding axis."""
        ids: set[int] = set()
        for (axis, _element), contributors in self.origins.items():
            if axis in ("spf_source", "advert_prefix", "touched_router"):
                ids |= contributors
        return ids

    def is_empty(self) -> bool:
        return (
            self.ospf.is_empty()
            and not self.touched_routers
            and not self.bgp_prefixes
            and not self.bgp_sessions
            and not self.bgp_adj_rib
            and not self.bgp_policy
            and not self.acl_spans
            and not self.all_bgp_dirty
        )

    def __repr__(self) -> str:
        parts: list[str] = []
        if self.ospf.sources:
            parts.append(f"{len(self.ospf.sources)} spf sources")
        advert_count = sum(len(p) for p in self.ospf.prefixes.values())
        if advert_count:
            parts.append(f"{advert_count} advert prefixes")
        if self.touched_routers:
            parts.append(f"{len(self.touched_routers)} routers")
        if self.bgp_prefixes:
            parts.append(f"{len(self.bgp_prefixes)} bgp prefixes")
        if self.bgp_sessions:
            parts.append(f"{len(self.bgp_sessions)} session pairs")
        if self.bgp_adj_rib:
            parts.append(f"{len(self.bgp_adj_rib)} adj-rib pairs")
        if self.bgp_policy:
            parts.append(f"{len(self.bgp_policy)} policy routers")
        if self.acl_spans:
            parts.append(f"{len(self.acl_spans)} acl spans")
        if self.all_bgp_dirty:
            parts.append("all-bgp-dirty")
        return f"DirtySet({', '.join(parts) if parts else 'empty'})"


@dataclass
class BgpEpoch:
    """Pre-edit BGP observations the recompute stage diffs against.

    Captured *before* any edit applies (IGP costs and session liveness
    feed the BGP decision process, so their pre-images must be frozen
    first), and consumed exactly once by :meth:`RecomputePipeline.run`.

    ``full_scope`` marks an epoch captured for a planner-chosen full
    resimulation: the per-pair fingerprints and liveness pre-images
    are skipped (their diffs are subsumed by re-solving every prefix
    and re-checking every BGP FIB entry), which is exactly the capture
    cost the planner is amortising away.
    """

    active: bool
    full_scope: bool = False
    pair_index: dict[BgpPair, set[Prefix]] = field(default_factory=dict)
    pre_fingerprint: dict[BgpPair, Fingerprint] = field(default_factory=dict)
    pre_liveness: dict[BgpPair, bool] = field(default_factory=dict)


class _Attribution:
    """Pass-scoped cause derivation (provenance mode only).

    Precomputes per-router/per-prefix views of the dirty set's
    origins, accumulates which edits changed IGP state at each router
    (BGP decisions and next-hop resolutions downstream of those
    routers inherit the causes), and answers each stage's "which edit
    ids caused this delta?" queries.  Every lookup falls back to the
    full edit-id set — cause sets are a sound may-have-caused
    over-approximation, never silently empty.
    """

    def __init__(self, dirty: DirtySet, record: "ProvenanceRecord") -> None:
        self.dirty = dirty
        self.record = record
        self.spf_ids: dict[str, set[int]] = {}
        self.advert_ids: dict[Prefix, set[int]] = {}
        for (axis, element), ids in dirty.origins.items():
            if axis == "spf_source":
                router = cast("tuple[str, int]", element)[0]
                self.spf_ids.setdefault(router, set()).update(ids)
            elif axis == "advert_prefix":
                prefix = cast("tuple[int, Prefix]", element)[1]
                self.advert_ids.setdefault(prefix, set()).update(ids)
        self.igp_union = dirty.igp_origin_union()
        # router -> edits that changed its IGP routes this pass.
        self.igp_router_causes: dict[str, set[int]] = {}
        # (router, prefix) FIB refreshes forced by next-hop resolution
        # changes (the best route itself held).
        self.resolution_causes: dict[RibKey, set[int]] = {}
        # The record is complete by construction time (stage 1 ran),
        # so the coarsest sound cause set can be frozen once.
        self._fallback = record.all_ids()

    # Cause getters return *borrowed* sets — possibly the attribution
    # maps' own values — to keep the per-delta provenance cost down.
    # Callers union the contents elsewhere and must never mutate them.

    def fallback(self) -> set[int]:
        return self._fallback

    def ospf_cause(self, source: str, prefix: Prefix) -> set[int]:
        """Causes of an OSPF route change at ``source`` for ``prefix``:
        the edits that dirtied the source's SPF tree or the prefix's
        advertisement (multi-area fallback refreshes sources no edit
        dirtied directly — those fall back to the IGP contributors)."""
        spf = self.spf_ids.get(source)
        advert = self.advert_ids.get(prefix)
        if spf and advert:
            return spf | advert
        ids = spf or advert
        if ids:
            return ids
        return self.igp_union or self._fallback

    def local_cause(self, router: str) -> set[int]:
        ids = self.dirty.origins.get(("touched_router", router))
        return ids or self._fallback

    def session_cause(self, local: str, peer: str) -> set[int]:
        """Causes of a BGP session appearing/disappearing: the edits
        that dirtied the directed pair (either orientation), else the
        edits that touched either endpoint router."""
        origins = self.dirty.origins
        forward = origins.get(("bgp_session", (local, peer)))
        reverse = origins.get(("bgp_session", (peer, local)))
        if forward and reverse:
            return forward | reverse
        ids = forward or reverse
        if ids:
            return ids
        touched_local = origins.get(("touched_router", local))
        touched_peer = origins.get(("touched_router", peer))
        if touched_local and touched_peer:
            return touched_local | touched_peer
        ids = touched_local or touched_peer
        return ids or self._fallback

    def note_igp(self, router: str, ids: set[int]) -> None:
        existing = self.igp_router_causes.get(router)
        if existing is None:
            # Copy: the stored set grows across notes, while ``ids``
            # may be a borrowed attribution-map value.
            self.igp_router_causes[router] = set(ids)
        else:
            existing.update(ids)

    def igp_cause_at(self, router: str) -> set[int]:
        """The edits that changed IGP state at ``router`` this pass."""
        ids = self.igp_router_causes.get(router)
        if ids:
            return ids
        return self.igp_union or self._fallback

    def fib_cause(self, router: str, prefix: Prefix) -> set[int]:
        """Causes of a FIB rebuild: the entry's RIB causes when the
        best route moved, else the IGP edits that re-resolved it."""
        ids = self.record.rib_causes.get((router, str(prefix)))
        if ids:
            return ids
        resolved = self.resolution_causes.get((router, prefix))
        if resolved:
            return resolved
        return self.igp_cause_at(router)


class RecomputePipeline:
    """Scoped recomputation + differential data plane over one analyzer.

    Stateless between runs: every invocation reads the analyzer's
    converged state, consumes one :class:`DirtySet`, and writes the
    deltas into the given report.  The analyzer owns orchestration
    (edit dispatch, journaling hooks, timings bookkeeping).
    """

    def __init__(self, analyzer: "DifferentialNetworkAnalyzer") -> None:
        self.analyzer = analyzer

    def __repr__(self) -> str:
        return f"RecomputePipeline(over {self.analyzer!r})"

    # ------------------------------------------------------------------
    # Epoch capture (before any edit applies)
    # ------------------------------------------------------------------

    def begin(self, full_scope: bool = False) -> BgpEpoch:
        """Freeze the pre-edit BGP observations for one recompute pass.

        With ``full_scope`` (planner-chosen full resimulation) the
        pair fingerprints and liveness pre-images are not captured:
        the run re-solves every prefix and re-derives every BGP FIB
        entry, so there is nothing to diff against.
        """
        if not self._bgp_active():
            return BgpEpoch(active=False)
        if full_scope:
            return BgpEpoch(active=True, full_scope=True)
        pair_index = self._bgp_pair_index()
        return BgpEpoch(
            active=True,
            pair_index=pair_index,
            pre_fingerprint={
                pair: self._pair_fingerprint(pair) for pair in pair_index
            },
            pre_liveness=self._session_liveness(),
        )

    # ------------------------------------------------------------------
    # The recompute + dataplane pass
    # ------------------------------------------------------------------

    def run(self, dirty: DirtySet, epoch: BgpEpoch, report: DeltaReport) -> None:
        """Stages 2–3: consume ``dirty``, write deltas into ``report``.

        Fills the ``igp``/``bgp``/``fib``/``reachability`` timings and
        the recompute counters; the caller owns ``edits``/``total``.

        Every stage runs under a tracer span labelled with the
        dirty-set sizes that explain its cost (per-stage DirtySet
        attribution); the legacy timing keys are fed from the span
        durations, so ``--json`` consumers see identical keys.
        """
        analyzer = self.analyzer
        state = analyzer.state
        tracer = analyzer.tracer
        sizes = dirty.sizes()
        attr = (
            _Attribution(dirty, report.provenance)
            if report.provenance is not None
            else None
        )

        with tracer.span(
            "pipeline.igp",
            spf_sources=sizes["spf_sources"],
            advert_prefixes=sizes["advert_prefixes"],
            touched_routers=sizes["touched_routers"],
        ) as igp_span:
            best_changed: BestChanged = {}
            igp_touched = self._recompute_ospf(
                dirty, best_changed, report, attr
            )
            igp_touched |= self._recompute_local(
                dirty, best_changed, report, attr
            )
            for router in igp_touched:
                self._refresh_igp_adapter(router)

        with tracer.span(
            "pipeline.bgp",
            bgp_prefixes=sizes["bgp_prefixes"],
            bgp_sessions=sizes["bgp_sessions"],
            bgp_adj_rib=sizes["bgp_adj_rib"],
            bgp_policy=sizes["bgp_policy"],
            all_bgp_dirty=dirty.all_bgp_dirty,
            full_scope=epoch.full_scope,
        ) as bgp_span:
            solved = 0
            rescanned = 0
            if epoch.active:
                solved, rescanned = self._recompute_bgp(
                    dirty, epoch, best_changed, report, attr
                )
            bgp_span.set(prefixes_solved=solved, sessions_rescanned=rescanned)

        with tracer.span("pipeline.fib") as fib_span:
            dirty_spans = self._update_fibs(best_changed, report, attr)
            dirty_spans.extend(dirty.acl_spans)
            fib_span.set(entries_updated=report.num_fib_changes())

        with tracer.span(
            "pipeline.reachability", acl_spans=sizes["acl_spans"]
        ) as reach_span:
            dirty_atoms = self._recompute_reachability(dirty_spans, report)
            reach_span.set(atoms_analyzed=dirty_atoms)

        if attr is not None and report.provenance is not None:
            # Invalidated header-space spans carry their origins onto
            # the provenance record — reachability segments overlapping
            # them inherit these causes.
            for lo, hi in dirty.acl_spans:
                report.provenance.record_acl_span(
                    lo, hi, dirty.origin("acl_span", (lo, hi)) or attr.fallback()
                )

        report.timings.update(
            {
                "igp": igp_span.duration,
                "bgp": bgp_span.duration,
                "fib": fib_span.duration,
                "reachability": reach_span.duration,
            }
        )
        counters = {
            "spf_sources_recomputed": len(
                {router for router, _area in dirty.ospf.sources}
            ),
            "bgp_prefixes_resolved": solved,
            "bgp_sessions_rescanned": rescanned,
            "fib_entries_updated": report.num_fib_changes(),
            "atoms_analyzed": dirty_atoms,
            "atoms_total": state.dataplane.atom_table.num_atoms(),
        }
        report.counters.update(counters)

        metrics = analyzer.metrics
        metrics.counter("pipeline.passes").inc()
        for key in (
            "spf_sources_recomputed",
            "bgp_prefixes_resolved",
            "bgp_sessions_rescanned",
            "fib_entries_updated",
            "atoms_analyzed",
        ):
            metrics.counter(f"pipeline.{key}").inc(counters[key])
        metrics.gauge("pipeline.atoms_total").set(counters["atoms_total"])
        for axis, size in sizes.items():
            metrics.histogram(f"dirty.{axis}").observe(size)

        events = analyzer.events
        if events is not None and report.provenance is not None:
            # Event-log payloads are deterministic by contract: stage
            # labels are dirty-set sizes and the metric values are work
            # counts — never wall-clock (that stays in the span trace).
            events.span(
                "pipeline.igp",
                spf_sources=sizes["spf_sources"],
                advert_prefixes=sizes["advert_prefixes"],
                touched_routers=sizes["touched_routers"],
            )
            events.span(
                "pipeline.bgp",
                bgp_prefixes=sizes["bgp_prefixes"],
                bgp_sessions=sizes["bgp_sessions"],
                bgp_adj_rib=sizes["bgp_adj_rib"],
                bgp_policy=sizes["bgp_policy"],
                prefixes_solved=solved,
                sessions_rescanned=rescanned,
            )
            events.span(
                "pipeline.fib", entries_updated=report.num_fib_changes()
            )
            events.span(
                "pipeline.reachability",
                acl_spans=sizes["acl_spans"],
                atoms_analyzed=dirty_atoms,
            )
            for key in (
                "spf_sources_recomputed",
                "bgp_prefixes_resolved",
                "bgp_sessions_rescanned",
                "fib_entries_updated",
                "atoms_analyzed",
            ):
                events.metric(f"pipeline.{key}", counters[key])

    # ------------------------------------------------------------------
    # OSPF / local route recomputation
    # ------------------------------------------------------------------

    def _install_route_update(
        self,
        router: str,
        protocol: str,
        prefix: Prefix,
        new_route: Route | None,
        best_changed: BestChanged,
        report: DeltaReport,
        causes: set[int] | None = None,
    ) -> bool:
        """Install/withdraw one protocol route; track best-route flips.

        Returns True if the router's best route for the prefix changed.
        ``causes`` (provenance mode) attributes the flip to edit ids.
        """
        analyzer = self.analyzer
        if analyzer._journal is not None:
            analyzer._journal.save_rib_prefix(router, prefix)
        rib = analyzer.state.ribs[router]
        old_best = rib.best(prefix)
        if new_route is None:
            rib.withdraw(prefix, protocol)
        else:
            rib.install(new_route)
        new_best = rib.best(prefix)
        if old_best == new_best:
            return False
        key = (router, prefix)
        existing = best_changed.get(key)
        original = existing[0] if existing is not None else old_best
        if original == new_best:
            best_changed.pop(key, None)
        else:
            best_changed[key] = (original, new_best)
        report.record_rib(router, prefix, old_best, new_best, causes=causes)
        return True

    def _recompute_ospf(
        self,
        dirty: DirtySet,
        best_changed: BestChanged,
        report: DeltaReport,
        attr: _Attribution | None = None,
    ) -> set[str]:
        """Refresh OSPF routes for dirty sources/prefixes.

        Returns routers whose non-BGP routes changed (IGP adapter must
        be rebuilt for them).
        """
        analyzer = self.analyzer
        state = analyzer.state
        if dirty.ospf.is_empty():
            return set()
        multi_area = len(state.ospf_state.areas()) > 1
        adverts = None
        totals = None
        summary_changed: set[Prefix] | None = None
        affected_sources = {router for router, _area in dirty.ospf.sources}
        if multi_area:
            # Inter-area summaries may have shifted anywhere; recompute
            # them once and diff against the cached pre-images so only
            # sources actually seeing a changed summary (or a dirtied
            # intra-area prefix) get refreshed — and those partially,
            # restricted to the changed prefixes.
            adverts = backbone_advertisements(state.ospf_state)
            totals = backbone_totals(state.ospf_state, adverts)
            old_adverts = state.backbone_adverts
            old_totals = state.backbone_totals_map
            if analyzer._journal is not None:
                analyzer._journal.save_backbone()
            state.backbone_adverts = adverts
            state.backbone_totals_map = totals
            if old_adverts is None or old_totals is None:
                # No pre-image (state predates the backbone cache):
                # fall back to refreshing every OSPF source.
                affected_sources = set(state.ospf_state.membership)
            else:
                summary_changed = _summary_drift(
                    old_adverts, adverts
                ) | _summary_drift(old_totals, totals)

        touched: set[str] = set()
        for source in affected_sources:
            new_routes = ospf_routes_for_source(
                state.ospf_state, source, adverts, totals
            )
            old_routes = state.ospf_routes.get(source, {})
            if analyzer._journal is not None:
                analyzer._journal.save_ospf_routes(source)
            changed = False
            for prefix in set(old_routes) | set(new_routes):
                old = old_routes.get(prefix)
                new = new_routes.get(prefix)
                if old == new:
                    continue
                changed = True
                causes = None
                if attr is not None:
                    causes = attr.ospf_cause(source, prefix)
                    attr.note_igp(source, causes)
                self._install_route_update(
                    source, "ospf", prefix, new, best_changed, report, causes
                )
            state.ospf_routes[source] = new_routes
            if changed:
                touched.add(source)

        if multi_area and summary_changed is not None:
            # Scoped multi-area path: sources whose SPF trees held can
            # only see routes move for prefixes whose backbone summary
            # drifted or whose intra-area advertisement was dirtied in
            # one of their areas.
            for source in state.ospf_state.membership:
                if source in affected_sources:
                    continue
                only = set(summary_changed)
                for area in state.ospf_state.membership[source]:
                    only |= dirty.ospf.prefixes.get(area, set())
                if not only:
                    continue
                if self._partial_ospf_refresh(
                    source, only, adverts, totals, best_changed, report, attr
                ):
                    touched.add(source)
        elif not multi_area:
            for area, prefixes in dirty.ospf.prefixes.items():
                if not prefixes:
                    continue
                for source in state.ospf_state.area_routers(area):
                    if source in affected_sources:
                        continue
                    if self._partial_ospf_refresh(
                        source,
                        prefixes,
                        adverts,
                        totals,
                        best_changed,
                        report,
                        attr,
                    ):
                        touched.add(source)
        return touched

    def _partial_ospf_refresh(
        self,
        source: str,
        prefixes: set[Prefix],
        adverts: dict[str, dict[Prefix, float]] | None,
        totals: dict[str, dict[Prefix, float]] | None,
        best_changed: BestChanged,
        report: DeltaReport,
        attr: _Attribution | None,
    ) -> bool:
        """Refresh ``source``'s OSPF routes for ``prefixes`` only.

        The targeted counterpart of the full per-source refresh, for
        sources whose SPF trees held; returns whether anything moved.
        """
        analyzer = self.analyzer
        state = analyzer.state
        partial = ospf_routes_for_source(
            state.ospf_state,
            source,
            adverts,
            totals,
            only_prefixes=prefixes,
        )
        if analyzer._journal is not None:
            analyzer._journal.save_ospf_routes(source)
        cached = state.ospf_routes.setdefault(source, {})
        changed = False
        for prefix in sorted(prefixes):
            old = cached.get(prefix)
            new = partial.get(prefix)
            if old == new:
                continue
            changed = True
            causes = None
            if attr is not None:
                causes = attr.ospf_cause(source, prefix)
                attr.note_igp(source, causes)
            self._install_route_update(
                source, "ospf", prefix, new, best_changed, report, causes
            )
            if new is None:
                cached.pop(prefix, None)
            else:
                cached[prefix] = new
        return changed

    def _recompute_local(
        self,
        dirty: DirtySet,
        best_changed: BestChanged,
        report: DeltaReport,
        attr: _Attribution | None = None,
    ) -> set[str]:
        """Re-derive connected/static routes for touched routers."""
        analyzer = self.analyzer
        state = analyzer.state
        touched: set[str] = set()
        for router in dirty.touched_routers:
            causes = attr.local_cause(router) if attr is not None else None
            new_connected = connected_routes(analyzer.snapshot, router)
            new_static = static_routes(
                analyzer.snapshot, router, new_connected, state.address_index
            )
            for protocol, new_map, cache in (
                ("connected", new_connected, state.connected),
                ("static", new_static, state.statics),
            ):
                if analyzer._journal is not None:
                    analyzer._journal.save_route_cache(protocol, router)
                old_map = cache.get(router, {})
                for prefix in set(old_map) | set(new_map):
                    old = old_map.get(prefix)
                    new = new_map.get(prefix)
                    if old == new:
                        continue
                    touched.add(router)
                    if attr is not None and causes is not None:
                        attr.note_igp(router, causes)
                    self._install_route_update(
                        router, protocol, prefix, new, best_changed, report,
                        causes,
                    )
                cache[router] = new_map
        return touched

    def _refresh_igp_adapter(self, router: str) -> None:
        analyzer = self.analyzer
        if analyzer._journal is not None:
            analyzer._journal.save_igp_router(router)
        rib = analyzer.state.ribs[router]
        non_bgp: dict[Prefix, Route] = {}
        for prefix in rib.prefixes():
            best = rib.best_excluding(prefix, NON_BGP)
            if best is not None:
                non_bgp[prefix] = best
        analyzer.state.igp.set_router_routes(router, non_bgp)

    # ------------------------------------------------------------------
    # BGP recomputation
    # ------------------------------------------------------------------

    def _bgp_active(self) -> bool:
        analyzer = self.analyzer
        if analyzer.state.bgp_solutions:
            return True
        return any(
            config.bgp is not None
            for config in analyzer.snapshot.configs.values()
        )

    def _bgp_pair_index(self) -> dict[BgpPair, set[Prefix]]:
        """(router, next-hop) -> prefixes whose solution involves it."""
        index: dict[BgpPair, set[Prefix]] = {}
        for prefix, solution in self.analyzer.state.bgp_solutions.items():
            for (receiver, _sender), candidate in solution.adj_in.items():
                if candidate.next_hop is not None:
                    index.setdefault(
                        (receiver, candidate.next_hop), set()
                    ).add(prefix)
            for router, candidate in solution.best.items():
                if candidate.next_hop is not None:
                    index.setdefault((router, candidate.next_hop), set()).add(
                        prefix
                    )
        return index

    def _pair_fingerprint(self, pair: BgpPair) -> Fingerprint:
        router, address = pair
        state = self.analyzer.state
        cost = state.igp.cost_to(router, address)
        resolved = state.igp.resolve(router, address, state.address_index)
        return (cost, resolved)

    def _session_liveness(self) -> dict[BgpPair, bool]:
        state = self.analyzer.state
        liveness: dict[BgpPair, bool] = {}
        for session in state.bgp_sessions:
            if session.direct:
                continue
            liveness[(session.local, session.peer_ip)] = (
                state.igp.cost_to(session.local, session.peer_ip) < INFINITY
            )
        return liveness

    def _recompute_bgp(
        self,
        dirty: DirtySet,
        epoch: BgpEpoch,
        best_changed: BestChanged,
        report: DeltaReport,
        attr: _Attribution | None = None,
    ) -> tuple[int, int]:
        """The BGP stage, as an explicit sub-pipeline.

        Mirrors the :mod:`repro.controlplane.bgp` package layout:
        session discovery, policy scoping, adj-RIB invalidation,
        best-path decision — each sub-stage consumes its own DirtySet
        axis under its own ``pipeline.bgp.*`` span (children of
        ``pipeline.bgp``, so the top-level stage list is unchanged).
        Returns ``(prefixes solved, session slots rescanned)``.
        """
        analyzer = self.analyzer
        state = analyzer.state
        tracer = analyzer.tracer
        bgp_dirty: set[Prefix] = set(dirty.bgp_prefixes)
        all_bgp_dirty = dirty.all_bgp_dirty or epoch.full_scope

        # Per-prefix cause bookkeeping (provenance mode): every branch
        # that dirties a prefix notes *why*; ``all_cause`` backs the
        # prefixes only reached through an all-dirty expansion.
        bgp_cause: dict[Prefix, set[int]] = {}
        all_cause: set[int] = set()

        def note(prefix: Prefix, ids: set[int]) -> None:
            bgp_cause.setdefault(prefix, set()).update(ids)

        if attr is not None:
            for prefix in dirty.bgp_prefixes:
                note(prefix, set(dirty.origin("bgp_prefix", prefix)))
            if dirty.all_bgp_dirty:
                all_cause |= dirty.origin("all_bgp_dirty")

        with tracer.span(
            "pipeline.bgp.sessions", pairs=len(dirty.bgp_sessions)
        ) as sessions_span:
            rescanned, session_all_dirty = self._bgp_sessions_stage(
                dirty, epoch, bgp_dirty, note, all_cause, attr
            )
            all_bgp_dirty = all_bgp_dirty or session_all_dirty
            sessions_span.set(rescanned=rescanned)

        origins = collect_origins(analyzer.snapshot)

        with tracer.span(
            "pipeline.bgp.policy",
            policy_routers=len(dirty.bgp_policy),
            adj_rib_pairs=len(dirty.bgp_adj_rib),
        ):
            self._bgp_policy_stage(dirty, origins, bgp_dirty, note, attr)

        with tracer.span("pipeline.bgp.adjrib") as adjrib_span:
            resolution_refresh, liveness_dirty = self._bgp_adjrib_stage(
                dirty, epoch, origins, bgp_dirty, note, all_cause, attr
            )
            all_bgp_dirty = all_bgp_dirty or liveness_dirty
            adjrib_span.set(
                resolution_refreshes=len(resolution_refresh),
                liveness_dirty=liveness_dirty,
            )

        with tracer.span("pipeline.bgp.decision") as decision_span:
            if all_bgp_dirty:
                bgp_dirty = set(state.bgp_solutions) | set(origins)

            def cause_for(prefix: Prefix) -> set[int] | None:
                if attr is None:
                    return None
                ids = set(bgp_cause.get(prefix, ()))
                if not ids:
                    ids = set(all_cause)
                return ids or attr.fallback()

            routers = analyzer.snapshot.topology.router_names()
            for prefix in sorted(bgp_dirty):
                old_solution = state.bgp_solutions.get(prefix)
                if analyzer._journal is not None:
                    analyzer._journal.save_bgp_solution(prefix)
                if prefix in origins:
                    new_solution = solve_prefix(
                        analyzer.snapshot,
                        prefix,
                        origins[prefix],
                        state.bgp_sessions,
                        state.igp,
                    )
                    state.bgp_solutions[prefix] = new_solution
                else:
                    new_solution = None
                    state.bgp_solutions.pop(prefix, None)
                prefix_causes = cause_for(prefix)
                for router in routers:
                    old_route = (
                        old_solution.route_for(router)
                        if old_solution
                        else None
                    )
                    new_route = (
                        new_solution.route_for(router)
                        if new_solution
                        else None
                    )
                    if old_route == new_route:
                        continue
                    self._install_route_update(
                        router,
                        "bgp",
                        prefix,
                        new_route,
                        best_changed,
                        report,
                        prefix_causes,
                    )

            # Resolution-only refreshes enter the FIB stage via
            # best_changed with an unchanged best route (the FIB entry
            # still differs).
            for router, prefix in resolution_refresh:
                key = (router, prefix)
                if key not in best_changed:
                    best = state.ribs[router].best(prefix)
                    best_changed[key] = (best, best)
            if epoch.full_scope and not (
                dirty.ospf.is_empty() and not dirty.touched_routers
            ):
                # A full-scope pass skipped the fingerprint/liveness
                # pre-images, so resolution-only FIB drift was never
                # detected — re-check every BGP-routed entry instead.
                # Drift needs an IGP change (the fingerprints hash
                # ``state.igp`` only), so a batch whose IGP axes are
                # clean provably cannot drift and skips the recheck.
                # ``_update_fibs`` drops no-op entries either way, so
                # the report stays byte-identical to the scoped path.
                for prefix, solution in state.bgp_solutions.items():
                    for router in solution.best:
                        key = (router, prefix)
                        if key not in best_changed:
                            best = state.ribs[router].best(prefix)
                            best_changed[key] = (best, best)
            decision_span.set(prefixes_solved=len(bgp_dirty))
        return len(bgp_dirty), rescanned

    def _bgp_sessions_stage(
        self,
        dirty: DirtySet,
        epoch: BgpEpoch,
        bgp_dirty: set[Prefix],
        note: "Callable[[Prefix, set[int]], None]",
        all_cause: set[int],
        attr: _Attribution | None,
    ) -> tuple[int, bool]:
        """Stage 1 — session discovery over the ``bgp_sessions`` axis.

        Re-validates only the dirtied directed ``(local, peer)`` pairs
        (``kept + rediscovered``, both canonically ordered, is
        byte-identical to a full rescan) unless scoping is disabled.
        Scoping stays on during full-scope passes: full mode re-solves
        every *prefix*, but which sessions exist depends only on the
        applied edits, so the pair-scoped rebuild is still exact.
        Removed sessions scope down to the prefixes flowing over them;
        added sessions escalate to all-dirty (a new session can
        attract any prefix).  Returns ``(session slots rescanned,
        all-dirty escalation)``.
        """
        analyzer = self.analyzer
        state = analyzer.state
        pairs = set(dirty.bgp_sessions)
        if not pairs:
            return 0, False
        scoped = analyzer.planner.config.scope_sessions
        if scoped:
            kept = [s for s in state.bgp_sessions if s.key not in pairs]
            rediscovered = discover_sessions_for(
                analyzer.snapshot, state.address_index, pairs
            )
            new_sessions = sorted(
                kept + rediscovered, key=lambda s: s.sort_key
            )
            rescanned = len(pairs)
        else:
            new_sessions = discover_sessions(
                analyzer.snapshot, state.address_index
            )
            rescanned = session_scan_size(analyzer.snapshot)
        old_keys = {
            (s.local, s.peer, s.local_ip, s.peer_ip)
            for s in state.bgp_sessions
        }
        new_keys = {
            (s.local, s.peer, s.local_ip, s.peer_ip) for s in new_sessions
        }
        removed = old_keys - new_keys
        added = new_keys - old_keys
        all_bgp = False
        if added:
            all_bgp = True
            if attr is not None:
                for local, peer, _local_ip, _peer_ip in added:
                    all_cause |= attr.session_cause(local, peer)
        if removed:
            removed_pairs = {(local, peer) for local, peer, _, _ in removed}
            pair_cause: dict[SessionPair, set[int]] = {}
            if attr is not None:
                for local, peer, _local_ip, _peer_ip in removed:
                    pair_cause[(local, peer)] = attr.session_cause(
                        local, peer
                    )
            for prefix, solution in state.bgp_solutions.items():
                for receiver, sender in solution.adj_in:
                    if (sender, receiver) in removed_pairs:
                        bgp_dirty.add(prefix)
                        if attr is None:
                            break
                        note(prefix, pair_cause[(sender, receiver)])
        if analyzer._journal is not None:
            analyzer._journal.save_sessions()
        state.bgp_sessions = new_sessions
        return rescanned, all_bgp

    def _bgp_policy_stage(
        self,
        dirty: DirtySet,
        origins: "dict[Prefix, dict[str, AttributeBundle]]",
        bgp_dirty: set[Prefix],
        note: "Callable[[Prefix, set[int]], None]",
        attr: _Attribution | None,
    ) -> None:
        """Stage 2 — policy scoping over ``bgp_policy``/``bgp_adj_rib``.

        Structural policy edits (``bgp_policy``) dirty every prefix
        flowing through — or originated by — the edited routers.
        Attribute-only edits (``bgp_adj_rib``) dirty exactly the
        prefixes with adj-RIB entries on the dirtied (receiver,
        sender) pairs: a local-pref tweak cannot flip a permit/deny,
        so prefixes without an entry on those sessions cannot move.
        """
        state = self.analyzer.state
        if dirty.bgp_policy:
            for prefix, solution in state.bgp_solutions.items():
                for receiver, sender in solution.adj_in:
                    hit = {
                        router
                        for router in (receiver, sender)
                        if router in dirty.bgp_policy
                    }
                    if hit:
                        bgp_dirty.add(prefix)
                        if attr is None:
                            break
                        for router in hit:
                            note(
                                prefix,
                                set(dirty.origin("bgp_policy", router)),
                            )
            # Policy can gate originations too (export maps on first hop).
            for prefix, owners_list in origins.items():
                hit = set(owners_list) & dirty.bgp_policy
                if hit:
                    bgp_dirty.add(prefix)
                    if attr is not None:
                        for router in hit:
                            note(
                                prefix,
                                set(dirty.origin("bgp_policy", router)),
                            )
        if dirty.bgp_adj_rib:
            for prefix, solution in state.bgp_solutions.items():
                touched = dirty.bgp_adj_rib & set(solution.adj_in)
                if touched:
                    bgp_dirty.add(prefix)
                    if attr is not None:
                        for pair in sorted(touched):
                            note(
                                prefix,
                                set(dirty.origin("bgp_adj_rib", pair)),
                            )

    def _bgp_adjrib_stage(
        self,
        dirty: DirtySet,
        epoch: BgpEpoch,
        origins: "dict[Prefix, dict[str, AttributeBundle]]",
        bgp_dirty: set[Prefix],
        note: "Callable[[Prefix, set[int]], None]",
        all_cause: set[int],
        attr: _Attribution | None,
    ) -> tuple[set[RibKey], bool]:
        """Stage 3 — adj-RIB invalidation from IGP and origination drift.

        IGP cost changes flip decisions; resolution changes require
        FIB rebuilds even when decisions hold; liveness flips on
        multihop sessions escalate to all-dirty.  Origination drift
        beyond explicit announce/withdraw edits (redistribute-connected
        picking up connected-route changes) dirties the drifted
        prefixes.  Returns ``(resolution-only refreshes, liveness
        escalation)``.  Skips the pre-image diffs on full-scope passes
        (nothing was captured — the decision stage re-solves and
        re-checks everything instead).
        """
        analyzer = self.analyzer
        state = analyzer.state
        resolution_refresh: set[RibKey] = set()
        liveness_dirty = False
        if not epoch.full_scope:
            for pair, prefixes in epoch.pair_index.items():
                post = self._pair_fingerprint(pair)
                pre = epoch.pre_fingerprint[pair]
                if pre == post:
                    continue
                pair_igp_cause = (
                    attr.igp_cause_at(pair[0]) if attr is not None else None
                )
                if pre[0] != post[0]:
                    bgp_dirty.update(prefixes)
                    if attr is not None and pair_igp_cause is not None:
                        for prefix in prefixes:
                            note(prefix, pair_igp_cause)
                if pre[1] != post[1]:
                    # Even when the decision holds, the resolved next
                    # hops changed — those FIB entries must be rebuilt.
                    router = pair[0]
                    for prefix in prefixes:
                        solution = state.bgp_solutions.get(prefix)
                        if solution is None:
                            continue
                        best = solution.best.get(router)
                        if best is not None and best.next_hop == pair[1]:
                            resolution_refresh.add((router, prefix))
                            if (
                                attr is not None
                                and pair_igp_cause is not None
                            ):
                                attr.resolution_causes.setdefault(
                                    (router, prefix), set()
                                ).update(pair_igp_cause)
            post_liveness = self._session_liveness()
            if epoch.pre_liveness != post_liveness:
                liveness_dirty = True
                if attr is not None:
                    for pair in set(epoch.pre_liveness) | set(post_liveness):
                        if epoch.pre_liveness.get(pair) != post_liveness.get(
                            pair
                        ):
                            all_cause |= attr.igp_cause_at(pair[0])

        # Origination drift beyond explicit announce/withdraw edits:
        # redistribute-connected picks up connected-route changes.
        for prefix in set(origins) | set(analyzer._origins):
            if origins.get(prefix) != analyzer._origins.get(prefix):
                bgp_dirty.add(prefix)
                if attr is not None:
                    # Explicit announce/withdraw edits stamp the
                    # prefix axis directly; connected-route drift is
                    # pinned through the owning routers instead.
                    drift: set[int] = set(
                        dirty.origin("bgp_prefix", prefix)
                    )
                    owners = set(origins.get(prefix, ())) | set(
                        analyzer._origins.get(prefix, ())
                    )
                    for owner in owners:
                        drift |= dirty.origin("touched_router", owner)
                    note(prefix, drift or attr.fallback())
        if analyzer._journal is not None:
            analyzer._journal.save_origins()
        analyzer._origins = origins
        return resolution_refresh, liveness_dirty

    # ------------------------------------------------------------------
    # FIB + reachability
    # ------------------------------------------------------------------

    def _update_fibs(
        self,
        best_changed: BestChanged,
        report: DeltaReport,
        attr: _Attribution | None = None,
    ) -> list[Span]:
        analyzer = self.analyzer
        state = analyzer.state
        spans: list[Span] = []
        for (router, prefix), (_old_best, _new_best) in best_changed.items():
            best = state.ribs[router].best(prefix)
            new_entry = None
            if best is not None:
                new_entry = build_fib_entry(
                    state.igp, state.address_index, router, best
                )
            fib = state.fibs.get(router)
            old_entry = fib.entry_for(prefix) if fib is not None else None
            if old_entry == new_entry:
                continue
            causes = (
                attr.fib_cause(router, prefix) if attr is not None else None
            )
            report.record_fib(
                router, prefix, old_entry, new_entry, causes=causes
            )
            if analyzer._journal is not None:
                analyzer._journal.save_fib_entry(router, prefix, old_entry)
            state.dataplane.update_fib_entry(router, prefix, new_entry)
            spans.append(prefix.interval())
        return spans

    def _recompute_reachability(
        self, spans: list[Span], report: DeltaReport
    ) -> int:
        analyzer = self.analyzer
        if not spans:
            report.reach_segments = []
            return 0
        state = analyzer.state
        reach = state.reachability
        # Close the dirty region over both sides: new atoms (merges can
        # extend past the change spans) and cached pre-change entries
        # (a purged parent atom can extend past the split sub-atom that
        # overlaps the change).  Without the closure the cache would
        # develop coverage holes and later diffs would silently miss
        # behaviour changes.
        region = IntervalSet(spans)
        while True:
            dirty_atoms = [
                atom
                for lo, hi in region.pairs
                for atom in state.dataplane.atom_table.atoms_overlapping(lo, hi)
            ]
            before = reach.entries_overlapping(region.pairs)
            widened = region
            for atom in dirty_atoms:
                widened = widened.union(IntervalSet.span(atom.lo, atom.hi))
            for lo, hi, _ in before:
                widened = widened.union(IntervalSet.span(lo, hi))
            if widened == region:
                break
            region = widened
        if analyzer._journal is not None:
            analyzer._journal.record_reachability(region.pairs, before)
        reach.purge_overlapping(region.pairs)
        unique_atoms = set(dirty_atoms)
        after = [
            (atom.lo, atom.hi, reach.for_atom(atom)) for atom in unique_atoms
        ]
        report.reach_segments = diff_reach_coverage(before, after)
        return len(unique_atoms)
