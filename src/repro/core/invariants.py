"""Invariant checking over delta reports.

Operators do not read raw deltas; they ask whether a change broke a
*policy*.  An :class:`Invariant` is a predicate over network behaviour
that can be checked differentially: given a :class:`DeltaReport`, each
checker inspects only the changed segments and reports violations the
change introduced (and, symmetrically, violations it fixed).

Built-in invariants:

- :class:`ReachabilityInvariant` — source S must reach the owner of
  destination prefix P.
- :class:`IsolationInvariant` — source S must NOT reach the owner of
  destination prefix P.
- :class:`LoopFreedom` — no forwarding loops anywhere.
- :class:`BlackholeFreedom` — no implicit drops for destinations
  inside a monitored prefix.

``check_invariants`` evaluates a suite and returns structured
verdicts; examples and benchmarks print them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.delta import DeltaReport, ReachSegment
from repro.net.addr import Prefix


@dataclass(frozen=True)
class Violation:
    """One invariant violation introduced (or repaired) by a change."""

    invariant: str
    segment_lo: int
    segment_hi: int
    detail: str
    repaired: bool = False  # True when the change *fixed* a violation

    def __str__(self) -> str:
        verb = "repaired" if self.repaired else "introduced"
        return (
            f"[{self.invariant}] {verb} in [{self.segment_lo}, "
            f"{self.segment_hi}): {self.detail}"
        )


class Invariant:
    """Base: a differential check over reachability segments."""

    name = "invariant"

    def relevant(self, segment: ReachSegment) -> bool:
        """Fast filter: does this segment matter to the invariant?"""
        return True

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        """Violations visible in one changed segment."""
        raise NotImplementedError

    def check(self, report: DeltaReport) -> list[Violation]:
        """All violations the change introduced or repaired."""
        violations: list[Violation] = []
        for segment in report.reach_segments:
            if self.relevant(segment):
                violations.extend(self.check_segment(segment))
        return violations


def _overlaps(segment: ReachSegment, prefix: Prefix) -> bool:
    lo, hi = prefix.interval()
    return segment.lo < hi and lo < segment.hi


@dataclass
class ReachabilityInvariant(Invariant):
    """``source`` must be able to reach the owner of ``prefix``."""

    source: str
    owner: str
    prefix: Prefix

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"reach({self.source} -> {self.owner} for {self.prefix})"

    def relevant(self, segment: ReachSegment) -> bool:
        return _overlaps(segment, self.prefix)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        pair = (self.source, self.owner)
        violations = []
        if pair in segment.removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} lost reachability to {self.owner}",
                )
            )
        if pair in segment.added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} regained reachability to {self.owner}",
                    repaired=True,
                )
            )
        return violations


@dataclass
class IsolationInvariant(Invariant):
    """``source`` must NOT reach the owner of ``prefix``."""

    source: str
    owner: str
    prefix: Prefix

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"isolate({self.source} x {self.owner} for {self.prefix})"

    def relevant(self, segment: ReachSegment) -> bool:
        return _overlaps(segment, self.prefix)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        pair = (self.source, self.owner)
        violations = []
        if pair in segment.added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} can now reach {self.owner} (leak)",
                )
            )
        if pair in segment.removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"leak from {self.source} to {self.owner} closed",
                    repaired=True,
                )
            )
        return violations


@dataclass
class LoopFreedom(Invariant):
    """No router may sit on a forwarding loop."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "loop-freedom"

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        violations = []
        if segment.loops_added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"loops through {sorted(segment.loops_added)}",
                )
            )
        if segment.loops_removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"loops cleared at {sorted(segment.loops_removed)}",
                    repaired=True,
                )
            )
        return violations


@dataclass
class BlackholeFreedom(Invariant):
    """No implicit drops for destinations inside monitored prefixes.

    Routers named in ``allowed`` (e.g. edge routers of unused space)
    are exempt.
    """

    monitored: list[Prefix] = field(default_factory=list)
    allowed: frozenset[str] = frozenset()

    @property
    def name(self) -> str:  # type: ignore[override]
        return "blackhole-freedom"

    def relevant(self, segment: ReachSegment) -> bool:
        if not self.monitored:
            return True
        return any(_overlaps(segment, prefix) for prefix in self.monitored)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        violations = []
        introduced = segment.blackholes_added - self.allowed
        repaired = segment.blackholes_removed - self.allowed
        if introduced:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"new blackholes at {sorted(introduced)}",
                )
            )
        if repaired:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"blackholes cleared at {sorted(repaired)}",
                    repaired=True,
                )
            )
        return violations


def check_invariants(
    report: DeltaReport, invariants: list[Invariant]
) -> dict[str, list[Violation]]:
    """Run a suite; returns {invariant name: violations} (non-empty
    entries only)."""
    results: dict[str, list[Violation]] = {}
    for invariant in invariants:
        violations = invariant.check(report)
        if violations:
            results[invariant.name] = violations
    return results
