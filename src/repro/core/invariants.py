"""Invariant checking over delta reports.

Operators do not read raw deltas; they ask whether a change broke a
*policy*.  An :class:`Invariant` is a predicate over network behaviour
that can be checked differentially: given a :class:`DeltaReport`, each
checker inspects only the changed segments and reports violations the
change introduced (and, symmetrically, violations it fixed).

Built-in invariants:

- :class:`ReachabilityInvariant` — source S must reach the owner of
  destination prefix P.
- :class:`IsolationInvariant` — source S must NOT reach the owner of
  destination prefix P.
- :class:`LoopFreedom` — no forwarding loops anywhere.
- :class:`BlackholeFreedom` — no implicit drops for destinations
  inside a monitored prefix.

Invariants self-register in a name -> class **registry**
(:func:`register_invariant`), so services and the CLI can be handed
invariant *names* instead of hard-coded lists, and users can plug in
their own checks.  The :class:`repro.api.Network` facade resolves
names through the registry in ``Network.check``.

The legacy free function ``check_invariants`` survives as a deprecated
shim; call :meth:`Invariant.check` per invariant or use the facade.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core import serialize
from repro.core.delta import DeltaReport, ReachSegment
from repro.net.addr import Prefix


@dataclass(frozen=True)
class Violation:
    """One invariant violation introduced (or repaired) by a change."""

    invariant: str
    segment_lo: int
    segment_hi: int
    detail: str
    repaired: bool = False  # True when the change *fixed* a violation

    def __str__(self) -> str:
        verb = "repaired" if self.repaired else "introduced"
        return (
            f"[{self.invariant}] {verb} in [{self.segment_lo}, "
            f"{self.segment_hi}): {self.detail}"
        )

    def __repr__(self) -> str:
        return f"Violation({self})"

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document."""
        return serialize.document(
            "violation",
            {
                "invariant": self.invariant,
                "segment_lo": self.segment_lo,
                "segment_hi": self.segment_hi,
                "detail": self.detail,
                "repaired": self.repaired,
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Violation":
        """Rebuild a violation; raises SchemaError on unknown versions."""
        serialize.check_document(data, "violation")
        return cls(
            invariant=data["invariant"],
            segment_lo=data["segment_lo"],
            segment_hi=data["segment_hi"],
            detail=data["detail"],
            repaired=data["repaired"],
        )


# -- registry ---------------------------------------------------------------
#
# name -> Invariant subclass.  Built-ins register at import; users add
# their own with ``register_invariant`` (usable as a decorator) and
# can then refer to invariants by name everywhere a suite is built —
# ``Network.check``, the campaign CLI's ``--invariant`` flag, config
# files.

_REGISTRY: dict[str, type["Invariant"]] = {}


def register_invariant(
    name: str, cls: type["Invariant"] | None = None
) -> Callable[[type["Invariant"]], type["Invariant"]] | type["Invariant"]:
    """Register an invariant class under ``name``.

    Direct call: ``register_invariant("loop-freedom", LoopFreedom)``.
    Decorator: ``@register_invariant("my-check")`` above the class.
    Re-registering a name with a *different* class is an error.
    """

    def _register(target: type["Invariant"]) -> type["Invariant"]:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not target:
            raise ValueError(
                f"invariant name {name!r} is already registered "
                f"to {existing.__name__}"
            )
        _REGISTRY[name] = target
        return target

    if cls is None:
        return _register
    return _register(cls)


def invariant_class(name: str) -> type["Invariant"]:
    """Look up a registered invariant class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown invariant {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def make_invariant(name: str, **kwargs: Any) -> "Invariant":
    """Instantiate a registered invariant by name."""
    return invariant_class(name)(**kwargs)


def registered_invariants() -> dict[str, type["Invariant"]]:
    """A copy of the registry (name -> class)."""
    return dict(_REGISTRY)


class Invariant:
    """Base: a differential check over reachability segments."""

    name = "invariant"

    def relevant(self, segment: ReachSegment) -> bool:
        """Fast filter: does this segment matter to the invariant?"""
        return True

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        """Violations visible in one changed segment."""
        raise NotImplementedError

    def check(self, report: DeltaReport) -> list[Violation]:
        """All violations the change introduced or repaired."""
        violations: list[Violation] = []
        for segment in report.reach_segments:
            if self.relevant(segment):
                violations.extend(self.check_segment(segment))
        return violations


def _overlaps(segment: ReachSegment, prefix: Prefix) -> bool:
    lo, hi = prefix.interval()
    return segment.lo < hi and lo < segment.hi


@dataclass
class ReachabilityInvariant(Invariant):
    """``source`` must be able to reach the owner of ``prefix``."""

    source: str
    owner: str
    prefix: Prefix

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"reach({self.source} -> {self.owner} for {self.prefix})"

    def relevant(self, segment: ReachSegment) -> bool:
        return _overlaps(segment, self.prefix)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        pair = (self.source, self.owner)
        violations = []
        if pair in segment.removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} lost reachability to {self.owner}",
                )
            )
        if pair in segment.added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} regained reachability to {self.owner}",
                    repaired=True,
                )
            )
        return violations


@dataclass
class IsolationInvariant(Invariant):
    """``source`` must NOT reach the owner of ``prefix``."""

    source: str
    owner: str
    prefix: Prefix

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"isolate({self.source} x {self.owner} for {self.prefix})"

    def relevant(self, segment: ReachSegment) -> bool:
        return _overlaps(segment, self.prefix)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        pair = (self.source, self.owner)
        violations = []
        if pair in segment.added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"{self.source} can now reach {self.owner} (leak)",
                )
            )
        if pair in segment.removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=max(segment.lo, self.prefix.first),
                    segment_hi=min(segment.hi, self.prefix.last + 1),
                    detail=f"leak from {self.source} to {self.owner} closed",
                    repaired=True,
                )
            )
        return violations


@dataclass
class LoopFreedom(Invariant):
    """No router may sit on a forwarding loop."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "loop-freedom"

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        violations = []
        if segment.loops_added:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"loops through {sorted(segment.loops_added)}",
                )
            )
        if segment.loops_removed:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"loops cleared at {sorted(segment.loops_removed)}",
                    repaired=True,
                )
            )
        return violations


@dataclass
class BlackholeFreedom(Invariant):
    """No implicit drops for destinations inside monitored prefixes.

    Routers named in ``allowed`` (e.g. edge routers of unused space)
    are exempt.
    """

    monitored: list[Prefix] = field(default_factory=list)
    allowed: frozenset[str] = frozenset()

    @property
    def name(self) -> str:  # type: ignore[override]
        return "blackhole-freedom"

    def relevant(self, segment: ReachSegment) -> bool:
        if not self.monitored:
            return True
        return any(_overlaps(segment, prefix) for prefix in self.monitored)

    def check_segment(self, segment: ReachSegment) -> list[Violation]:
        violations = []
        introduced = segment.blackholes_added - self.allowed
        repaired = segment.blackholes_removed - self.allowed
        if introduced:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"new blackholes at {sorted(introduced)}",
                )
            )
        if repaired:
            violations.append(
                Violation(
                    invariant=self.name,
                    segment_lo=segment.lo,
                    segment_hi=segment.hi,
                    detail=f"blackholes cleared at {sorted(repaired)}",
                    repaired=True,
                )
            )
        return violations


register_invariant("reachability", ReachabilityInvariant)
register_invariant("isolation", IsolationInvariant)
register_invariant("loop-freedom", LoopFreedom)
register_invariant("blackhole-freedom", BlackholeFreedom)


def _check_invariants(
    report: DeltaReport, invariants: list[Invariant]
) -> dict[str, list[Violation]]:
    """Run a suite; returns {invariant name: violations} (non-empty
    entries only)."""
    results: dict[str, list[Violation]] = {}
    for invariant in invariants:
        violations = invariant.check(report)
        if violations:
            results[invariant.name] = violations
    return results


def check_invariants(
    report: DeltaReport, invariants: list[Invariant]
) -> dict[str, list[Violation]]:
    """Deprecated shim: use :meth:`repro.api.Network.check` (or call
    :meth:`Invariant.check` per invariant)."""
    warnings.warn(
        "check_invariants() is deprecated; use repro.api.Network.check() "
        "or Invariant.check() directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_invariants(report, invariants)
