"""Forkable analyzer state: the undo journal behind ``what_if``.

The incremental analyzer *commits* by design — every ``analyze``
advances its snapshot and converged state.  Batch what-if workloads
(the campaign engine) instead need many independent evaluations
against one base state.  :class:`UndoJournal` makes that cheap: while
a fork is active, every mutation site in the analyzer records the
*first* before-image of whatever it is about to touch, at the
granularity it is touched —

- snapshot: per-router config clones and per-link enabled flags;
- OSPF: one copy-on-first-touch checkpoint of the incremental SPF
  state (graphs, settled trees, advertisements), taken only when an
  edit actually reaches OSPF;
- RIBs: the per-prefix protocol map of each (router, prefix) written;
- per-router caches: OSPF/connected/static route maps and the IGP
  adapter entry, saved by reference (they are replaced, not mutated);
- BGP: sessions list, per-prefix solutions, origin map;
- FIBs: the old entry per (router, prefix) — rollback replays the
  inverse ``update_fib_entry``, which also restores the refcounted
  atom decomposition exactly;
- ACL interval registrations, replayed inverted in reverse order;
- reachability: the pre-change cache entries of the purged region,
  reinserted after the atom structure is back.

Rollback therefore costs O(touched state), not O(network) — the same
asymptotics the analyzer itself has — so a fork + rollback is strictly
cheaper than the commit + inverse-change pairing benchmarks used to
rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.dataplane.fib import FibEntry
from repro.dataplane.reachability import AtomReachability
from repro.net.addr import Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.analyzer import DifferentialNetworkAnalyzer
    from repro.core.change import Edit
    from repro.obs import Span

_UNSET = object()  # "never saved" marker distinct from None/missing
_MISSING = object()  # "key was absent" marker for dict restores


class ForkError(RuntimeError):
    """Raised on invalid fork usage (e.g. nested forks)."""


class UndoJournal:
    """Before-images of everything one fork touched, plus rollback."""

    def __init__(self, analyzer: "DifferentialNetworkAnalyzer") -> None:
        self.analyzer = analyzer
        self._configs: dict[str, object] = {}  # router -> clone | _MISSING
        self._link_flags: dict = {}  # Link -> bool
        self._ospf_checkpoint = None  # OspfState copy, on first OSPF touch
        self._backbone = _UNSET  # (adverts, totals) refs
        self._ospf_routes: dict[str, object] = {}  # source -> copy | _MISSING
        self._route_caches: dict[tuple[str, str], object] = {}
        self._rib: dict[tuple[str, Prefix], dict | None] = {}
        self._igp: dict[str, tuple | None] = {}
        self._sessions = _UNSET
        self._origins = _UNSET
        self._solutions: dict[Prefix, object] = {}  # prefix -> old | _MISSING
        self._fib: dict[tuple[str, Prefix], FibEntry | None] = {}
        self._acl_ops: list[tuple[int, int, bool]] = []
        self._acl_spans: list[tuple[int, int]] = []
        self._reach_regions: list[tuple[int, int]] = []
        self._reach_before: dict = {}  # Atom -> AtomReachability

    # ------------------------------------------------------------------
    # Recording (all first-touch-wins)
    # ------------------------------------------------------------------

    def before_edit(self, edit: "Edit") -> None:
        """Capture whatever applying ``edit`` may overwrite."""
        from repro.core.change import LinkDown, LinkUp, OSPF_TOUCHING_EDITS

        snapshot = self.analyzer.snapshot
        if isinstance(edit, (LinkDown, LinkUp)):
            topology = snapshot.topology
            endpoints = {edit.router1, edit.router2}
            for link in topology.links(include_disabled=True):
                if set(link.routers) == endpoints and link not in self._link_flags:
                    self._link_flags[link] = topology.link_enabled(link)
        else:
            router = edit.router
            if router not in self._configs:
                config = snapshot.configs.get(router)
                self._configs[router] = (
                    config.clone() if config is not None else _MISSING
                )
        if isinstance(edit, OSPF_TOUCHING_EDITS) and self._ospf_checkpoint is None:
            self._ospf_checkpoint = self.analyzer.state.ospf_state.clone()

    def save_backbone(self) -> None:
        if self._backbone is _UNSET:
            state = self.analyzer.state
            self._backbone = (state.backbone_adverts, state.backbone_totals_map)

    def save_ospf_routes(self, source: str) -> None:
        if source not in self._ospf_routes:
            current = self.analyzer.state.ospf_routes.get(source)
            self._ospf_routes[source] = (
                dict(current) if current is not None else _MISSING
            )

    def save_route_cache(self, protocol: str, router: str) -> None:
        """Stash one router's connected/static derived-route map."""
        key = (protocol, router)
        if key not in self._route_caches:
            cache = self._protocol_cache(protocol)
            self._route_caches[key] = cache.get(router, _MISSING)

    def _protocol_cache(self, protocol: str) -> dict:
        state = self.analyzer.state
        return state.connected if protocol == "connected" else state.statics

    def save_rib_prefix(self, router: str, prefix: Prefix) -> None:
        key = (router, prefix)
        if key not in self._rib:
            self._rib[key] = self.analyzer.state.ribs[router].snapshot_prefix(
                prefix
            )

    def save_igp_router(self, router: str) -> None:
        if router not in self._igp:
            self._igp[router] = self.analyzer.state.igp.snapshot_router(router)

    def save_sessions(self) -> None:
        if self._sessions is _UNSET:
            self._sessions = self.analyzer.state.bgp_sessions

    def save_origins(self) -> None:
        if self._origins is _UNSET:
            self._origins = self.analyzer._origins

    def save_bgp_solution(self, prefix: Prefix) -> None:
        if prefix not in self._solutions:
            self._solutions[prefix] = self.analyzer.state.bgp_solutions.get(
                prefix, _MISSING
            )

    def save_fib_entry(
        self, router: str, prefix: Prefix, old_entry: FibEntry | None
    ) -> None:
        self._fib.setdefault((router, prefix), old_entry)

    def record_acl_structure(self, lo: int, hi: int, register: bool) -> None:
        self._acl_ops.append((lo, hi, register))

    def record_acl_span(self, lo: int, hi: int) -> None:
        self._acl_spans.append((lo, hi))

    def record_reachability(
        self,
        region: Iterable[tuple[int, int]],
        before: Iterable[tuple[int, int, AtomReachability]],
    ) -> None:
        self._reach_regions.extend(region)
        for _lo, _hi, reach in before:
            self._reach_before.setdefault(reach.atom, reach)

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------

    def rollback(self) -> None:
        """Restore the analyzer to its pre-fork state, exactly."""
        with self.analyzer.tracer.span("fork.rollback") as span:
            self._rollback(span)
        metrics = self.analyzer.metrics
        metrics.counter("fork.rollbacks").inc()
        metrics.counter("fork.rib_prefixes_restored").inc(len(self._rib))
        metrics.counter("fork.fib_entries_restored").inc(len(self._fib))

    def _rollback(self, span: "Span") -> None:
        analyzer = self.analyzer
        state = analyzer.state
        snapshot = analyzer.snapshot
        span.set(
            rib_prefixes=len(self._rib),
            fib_entries=len(self._fib),
            ospf_checkpoint=self._ospf_checkpoint is not None,
        )

        # Control plane: plain reference/copy restores.
        if self._sessions is not _UNSET:
            state.bgp_sessions = self._sessions
        if self._origins is not _UNSET:
            analyzer._origins = self._origins
        for prefix, old in self._solutions.items():
            if old is _MISSING:
                state.bgp_solutions.pop(prefix, None)
            else:
                state.bgp_solutions[prefix] = old
        for (router, prefix), saved in self._rib.items():
            state.ribs[router].restore_prefix(prefix, saved)
        for router, saved in self._igp.items():
            state.igp.restore_router(router, saved)
        for source, saved in self._ospf_routes.items():
            if saved is _MISSING:
                state.ospf_routes.pop(source, None)
            else:
                state.ospf_routes[source] = saved
        for (protocol, router), saved in self._route_caches.items():
            cache = self._protocol_cache(protocol)
            if saved is _MISSING:
                cache.pop(router, None)
            else:
                cache[router] = saved
        if self._backbone is not _UNSET:
            state.backbone_adverts, state.backbone_totals_map = self._backbone
        if self._ospf_checkpoint is not None:
            state.ospf_state = self._ospf_checkpoint

        # Snapshot: configs wholesale, link flags individually.
        for router, saved_config in self._configs.items():
            if saved_config is _MISSING:
                snapshot.configs.pop(router, None)
            else:
                snapshot.configs[router] = saved_config
        for link, enabled in self._link_flags.items():
            snapshot.topology.set_link_enabled(link, enabled)

        # Data plane: inverse FIB writes restore tries, the refcounted
        # atom decomposition, and invalidate the touched action caches;
        # ACL registrations replay inverted in reverse order.
        for (router, prefix), entry in self._fib.items():
            state.dataplane.update_fib_entry(router, prefix, entry)
        for lo, hi, registered in reversed(self._acl_ops):
            state.dataplane.acl_interval_structure(lo, hi, not registered)
        for lo, hi in self._acl_spans:
            state.dataplane.invalidate_span(lo, hi)

        # Reachability cache: drop everything computed during the fork
        # over the dirty region, then reinstate the pre-fork coverage.
        # A later analysis inside one fork can capture "before" entries
        # keyed by atoms an *earlier* fork analysis created; those keys
        # do not exist in the restored decomposition and would shadow
        # the true base entries, so only entries whose atom is live
        # again are reinstated.  Coverage stays complete: any region a
        # fork-created atom spanned was dirtied by the earlier analysis
        # too, whose (first-recorded, hence kept) entries are base-keyed.
        if self._reach_regions:
            state.reachability.purge_overlapping(self._reach_regions)
        if self._reach_before:
            atom_table = state.dataplane.atom_table
            state.reachability.restore(
                reach
                for atom, reach in self._reach_before.items()
                if atom_table.atom_containing(atom.lo) == atom
            )
