"""Chunked binary snapshot codec: the unit shipped between machines.

Campaign workers and the what-if service used to receive the converged
base as a raw pickle — opaque, uncompressed, and unverifiable.  This
module defines a compact, self-describing container in the spirit of
chunked instrument formats (length-prefixed typed chunks behind a
fixed header carrying a content digest):

``header``
    ``magic (4s) | codec version (u16) | chunk count (u16) |
    digest (32B sha-256)`` — the digest covers every chunk's *tag and
    uncompressed payload*, so it identifies the content independently
    of compression level and is what result caches key on.

``chunk``
    ``tag (4s ascii) | flags (u8, bit0 = zlib) | length (u32) |
    payload`` — chunks are skippable by readers that do not know the
    tag, which is what makes the container self-describing and
    forward-extensible.

Standard chunks: ``topo`` and ``cfgs`` hold the snapshot's canonical
text forms (zlib-compressed); ``base`` optionally carries the
converged analyzer (compressed pickle) so workers skip re-simulation.
``loads``/``loads_base`` verify the digest before parsing — a
truncated or corrupted payload raises :class:`CodecError`, never a
half-built snapshot.

``dumps(snapshot)`` / ``loads(data)`` move snapshots; ``dumps_base`` /
``loads_base`` move warm analyzers (falling back to re-convergence
when only snapshot chunks are present); :func:`snapshot_digest` is the
stable content key the service result cache uses.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from typing import TYPE_CHECKING, Iterable

from repro.core.errors import ReproError
from repro.core.snapshot import (
    Snapshot,
    parse_topology,
    serialize_topology,
)
from repro.config.text import parse_configs, serialize_configs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.analyzer import DifferentialNetworkAnalyzer

MAGIC = b"RNS1"
CODEC_VERSION = 1

_HEADER = struct.Struct(">4sHH32s")
_CHUNK_HEAD = struct.Struct(">4sBI")

_FLAG_ZLIB = 0x01

# Payloads below this stay uncompressed: the zlib header would cost
# more than it saves and decompression is pure overhead.
_COMPRESS_THRESHOLD = 64

CHUNK_TOPOLOGY = "topo"
CHUNK_CONFIGS = "cfgs"
CHUNK_BASE = "base"


class CodecError(ReproError, ValueError):
    """A binary container is malformed, truncated, or corrupted."""


def _content_digest(chunks: Iterable[tuple[str, bytes]]) -> bytes:
    """sha-256 over (tag, raw payload) pairs — compression-invariant."""
    hasher = hashlib.sha256()
    for tag, payload in chunks:
        hasher.update(tag.encode("ascii"))
        hasher.update(struct.pack(">I", len(payload)))
        hasher.update(payload)
    return hasher.digest()


def encode_chunks(chunks: list[tuple[str, bytes]]) -> bytes:
    """Pack (tag, payload) pairs into one digested container."""
    parts = [_HEADER.pack(MAGIC, CODEC_VERSION, len(chunks),
                          _content_digest(chunks))]
    for tag, payload in chunks:
        raw = tag.encode("ascii")
        if len(raw) != 4:
            raise CodecError(f"chunk tag must be 4 ascii bytes, got {tag!r}")
        flags = 0
        stored = payload
        if len(payload) >= _COMPRESS_THRESHOLD:
            packed = zlib.compress(payload, 6)
            if len(packed) < len(payload):
                flags |= _FLAG_ZLIB
                stored = packed
        parts.append(_CHUNK_HEAD.pack(raw, flags, len(stored)))
        parts.append(stored)
    return b"".join(parts)


def decode_chunks(data: bytes) -> list[tuple[str, bytes]]:
    """Unpack a container, verifying magic, version, and digest."""
    if len(data) < _HEADER.size:
        raise CodecError("container shorter than its header")
    magic, version, count, digest = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported codec version {version} "
            f"(this build reads version {CODEC_VERSION})"
        )
    offset = _HEADER.size
    chunks: list[tuple[str, bytes]] = []
    for _ in range(count):
        if offset + _CHUNK_HEAD.size > len(data):
            raise CodecError("truncated chunk header")
        raw, flags, length = _CHUNK_HEAD.unpack_from(data, offset)
        offset += _CHUNK_HEAD.size
        if offset + length > len(data):
            raise CodecError(f"truncated {raw.decode('ascii')!r} chunk")
        stored = data[offset:offset + length]
        offset += length
        if flags & _FLAG_ZLIB:
            try:
                payload = zlib.decompress(stored)
            except zlib.error as error:
                raise CodecError(
                    f"corrupt {raw.decode('ascii')!r} chunk: {error}"
                ) from None
        else:
            payload = stored
        chunks.append((raw.decode("ascii"), payload))
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes after chunks")
    if _content_digest(chunks) != digest:
        raise CodecError("content digest mismatch (payload corrupted)")
    return chunks


def describe(data: bytes) -> dict[str, int]:
    """Tag -> uncompressed payload size, for logs and tests."""
    return {tag: len(payload) for tag, payload in decode_chunks(data)}


def container_digest(data: bytes) -> str:
    """The hex content digest straight from a container's header."""
    if len(data) < _HEADER.size:
        raise CodecError("container shorter than its header")
    magic, _, _, digest = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (expected {MAGIC!r})")
    return digest.hex()


# -- snapshots --------------------------------------------------------------


def _snapshot_chunks(snapshot: Snapshot) -> list[tuple[str, bytes]]:
    return [
        (CHUNK_TOPOLOGY, serialize_topology(snapshot.topology).encode()),
        (CHUNK_CONFIGS, serialize_configs(snapshot.configs).encode()),
    ]


def dumps(snapshot: Snapshot) -> bytes:
    """Encode a snapshot as a digested chunk container."""
    return encode_chunks(_snapshot_chunks(snapshot))


def loads(data: bytes) -> Snapshot:
    """Decode a snapshot container (digest-verified)."""
    chunks = dict(decode_chunks(data))
    try:
        topology_text = chunks[CHUNK_TOPOLOGY].decode()
        configs_text = chunks[CHUNK_CONFIGS].decode()
    except KeyError as error:
        raise CodecError(f"missing {error.args[0]!r} chunk") from None
    return Snapshot(
        topology=parse_topology(topology_text),
        configs=parse_configs(configs_text),
    )


def snapshot_digest(snapshot: Snapshot) -> str:
    """Stable hex content key of a snapshot (no container needed).

    Equal to :func:`container_digest` of ``dumps(snapshot)`` — the
    service result cache and the campaign payload cache key on it.
    """
    return _content_digest(_snapshot_chunks(snapshot)).hex()


# -- converged bases --------------------------------------------------------


def dumps_base(analyzer: "DifferentialNetworkAnalyzer") -> bytes:
    """Encode a converged analyzer: snapshot chunks + ``base`` chunk.

    The ``base`` chunk carries the warm analyzer (pickle, compressed
    by the chunk layer) so receivers skip re-simulation; the snapshot
    chunks ride along, making the payload self-describing — a reader
    that cannot unpickle (version skew) still gets the exact snapshot
    to re-converge from.
    """
    chunks = _snapshot_chunks(analyzer.snapshot)
    chunks.append(
        (CHUNK_BASE, pickle.dumps(analyzer, protocol=pickle.HIGHEST_PROTOCOL))
    )
    return encode_chunks(chunks)


def loads_base(data: bytes) -> "DifferentialNetworkAnalyzer":
    """Decode a converged base, re-simulating only when it must.

    With a ``base`` chunk the warm analyzer is rebuilt directly; a
    snapshot-only container falls back to one fresh convergence.
    """
    from repro.core.analyzer import DifferentialNetworkAnalyzer

    chunks = dict(decode_chunks(data))
    if CHUNK_BASE in chunks:
        analyzer = pickle.loads(chunks[CHUNK_BASE])
        if not isinstance(analyzer, DifferentialNetworkAnalyzer):
            raise CodecError(
                f"'base' chunk holds {type(analyzer).__name__}, "
                "not a converged analyzer"
            )
        return analyzer
    return DifferentialNetworkAnalyzer(loads(data))
