"""Per-device configuration container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.acl import Acl
from repro.config.routemap import PrefixList, RouteMap
from repro.config.routing import BgpConfig, OspfConfig, StaticRouteConfig


@dataclass
class InterfaceConfig:
    """Configuration attached to one interface.

    Addressing lives on the topology interface; this carries the
    administrative state and ACL bindings.
    """

    enabled: bool = True
    acl_in: str | None = None
    acl_out: str | None = None

    def clone(self) -> "InterfaceConfig":
        return InterfaceConfig(self.enabled, self.acl_in, self.acl_out)


@dataclass
class DeviceConfig:
    """Everything configured on one router.

    Maps are keyed by the obvious names (interface name, ACL name,
    route-map name, prefix-list name).  ``interfaces`` entries are
    optional — an interface missing from the map uses the defaults.
    """

    hostname: str
    interfaces: dict[str, InterfaceConfig] = field(default_factory=dict)
    static_routes: list[StaticRouteConfig] = field(default_factory=list)
    ospf: OspfConfig | None = None
    bgp: BgpConfig | None = None
    acls: dict[str, Acl] = field(default_factory=dict)
    route_maps: dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: dict[str, PrefixList] = field(default_factory=dict)

    # -- lookups --------------------------------------------------------

    def interface_config(self, name: str) -> InterfaceConfig:
        """Settings for an interface (defaults if unconfigured)."""
        return self.interfaces.get(name, _DEFAULT_INTERFACE)

    def acl(self, name: str) -> Acl:
        """Look up an ACL; raises KeyError with context if missing."""
        try:
            return self.acls[name]
        except KeyError:
            raise KeyError(f"{self.hostname}: no ACL named {name!r}") from None

    def route_map(self, name: str) -> RouteMap:
        """Look up a route map; raises KeyError with context if missing."""
        try:
            return self.route_maps[name]
        except KeyError:
            raise KeyError(f"{self.hostname}: no route-map named {name!r}") from None

    # -- mutation helpers ------------------------------------------------

    def ensure_interface(self, name: str) -> InterfaceConfig:
        """The mutable InterfaceConfig for ``name``, creating it."""
        if name not in self.interfaces:
            self.interfaces[name] = InterfaceConfig()
        return self.interfaces[name]

    def add_static_route(self, route: StaticRouteConfig) -> None:
        """Append a static route; rejects exact duplicates."""
        if route in self.static_routes:
            raise ValueError(f"{self.hostname}: duplicate static route {route}")
        self.static_routes.append(route)

    def remove_static_route(self, route: StaticRouteConfig) -> None:
        """Remove a static route by value."""
        try:
            self.static_routes.remove(route)
        except ValueError:
            raise ValueError(
                f"{self.hostname}: static route not present: {route}"
            ) from None

    # -- copying ----------------------------------------------------------

    def clone(self) -> "DeviceConfig":
        """A deep copy sharing no mutable state with the original."""
        return DeviceConfig(
            hostname=self.hostname,
            interfaces={name: c.clone() for name, c in self.interfaces.items()},
            static_routes=list(self.static_routes),
            ospf=self.ospf.clone() if self.ospf else None,
            bgp=self.bgp.clone() if self.bgp else None,
            acls={name: acl.clone() for name, acl in self.acls.items()},
            route_maps={name: rm.clone() for name, rm in self.route_maps.items()},
            prefix_lists={name: pl.clone() for name, pl in self.prefix_lists.items()},
        )


_DEFAULT_INTERFACE = InterfaceConfig()
