"""Routing protocol configuration blocks.

Three protocol blocks per device: static routes, one OSPF process,
one BGP process.  Administrative distances follow the usual defaults
(connected 0, static 1, eBGP 20, OSPF 110, iBGP 200), overridable per
static route.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addr import IPv4Address, Prefix

ADMIN_DISTANCE_CONNECTED = 0
ADMIN_DISTANCE_STATIC = 1
ADMIN_DISTANCE_EBGP = 20
ADMIN_DISTANCE_OSPF = 110
ADMIN_DISTANCE_IBGP = 200


@dataclass(frozen=True)
class StaticRouteConfig:
    """A static route: destination prefix plus a forwarding target.

    Exactly one of ``next_hop`` (an IP resolved against connected
    subnets) or ``interface`` (send directly out of an interface) must
    be given.  ``drop=True`` makes it a null route (discard).
    """

    prefix: Prefix
    next_hop: IPv4Address | None = None
    interface: str | None = None
    drop: bool = False
    admin_distance: int = ADMIN_DISTANCE_STATIC

    def __post_init__(self) -> None:
        targets = sum(
            1 for target in (self.next_hop, self.interface) if target is not None
        )
        if self.drop:
            if targets:
                raise ValueError("null route cannot also carry a target")
        elif targets != 1:
            raise ValueError(
                "static route needs exactly one of next_hop/interface"
            )
        if self.admin_distance < 1 or self.admin_distance > 255:
            raise ValueError("static admin distance must be in 1..255")


@dataclass
class OspfInterfaceSettings:
    """Per-interface OSPF knobs."""

    area: int = 0
    cost: int = 10
    enabled: bool = True
    passive: bool = False  # advertise the subnet but form no adjacency

    def clone(self) -> "OspfInterfaceSettings":
        return OspfInterfaceSettings(self.area, self.cost, self.enabled, self.passive)


@dataclass
class OspfConfig:
    """One OSPF process.

    ``interfaces`` maps interface name -> settings; interfaces absent
    from the map do not participate.  Multi-area support: adjacencies
    form only between interfaces in the same area; inter-area routes
    propagate through area-0 border routers (summarised per subnet, no
    ranges).
    """

    interfaces: dict[str, OspfInterfaceSettings] = field(default_factory=dict)

    def enabled_interfaces(self) -> list[str]:
        """Names of interfaces actively running OSPF."""
        return [
            name
            for name, settings in self.interfaces.items()
            if settings.enabled
        ]

    def clone(self) -> "OspfConfig":
        return OspfConfig(
            {name: settings.clone() for name, settings in self.interfaces.items()}
        )


@dataclass
class BgpNeighborConfig:
    """One BGP session, keyed by the peer's interface address.

    ``import_policy``/``export_policy`` name route maps on this device;
    None means accept/advertise everything (with standard loop and
    iBGP re-advertisement rules still applied).
    """

    peer_ip: IPv4Address
    remote_asn: int
    import_policy: str | None = None
    export_policy: str | None = None
    next_hop_self: bool = False

    def clone(self) -> "BgpNeighborConfig":
        return BgpNeighborConfig(
            self.peer_ip,
            self.remote_asn,
            self.import_policy,
            self.export_policy,
            self.next_hop_self,
        )


@dataclass
class BgpConfig:
    """One BGP process: local ASN, sessions, and originations."""

    asn: int
    router_id: IPv4Address
    neighbors: dict[IPv4Address, BgpNeighborConfig] = field(default_factory=dict)
    originated: list[Prefix] = field(default_factory=list)
    redistribute_connected: bool = False

    def add_neighbor(self, neighbor: BgpNeighborConfig) -> None:
        """Register a session; rejects duplicates."""
        if neighbor.peer_ip in self.neighbors:
            raise ValueError(f"duplicate BGP neighbor {neighbor.peer_ip}")
        self.neighbors[neighbor.peer_ip] = neighbor

    def remove_neighbor(self, peer_ip: IPv4Address) -> None:
        """Tear down a session."""
        if peer_ip not in self.neighbors:
            raise ValueError(f"no BGP neighbor {peer_ip}")
        del self.neighbors[peer_ip]

    def is_ebgp(self, peer_ip: IPv4Address) -> bool:
        """True if the session with ``peer_ip`` crosses AS boundaries."""
        return self.neighbors[peer_ip].remote_asn != self.asn

    def clone(self) -> "BgpConfig":
        return BgpConfig(
            self.asn,
            self.router_id,
            {ip: n.clone() for ip, n in self.neighbors.items()},
            list(self.originated),
            self.redistribute_connected,
        )
