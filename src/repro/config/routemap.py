"""Prefix lists, route maps, and BGP attribute manipulation.

Route maps are the policy language of the BGP layer: an ordered list
of clauses, each with match conditions (prefix list, community) and
set actions (local-pref, MED, communities, AS-path prepend), with
permit/deny semantics and an implicit trailing deny — the usual
IOS-style behaviour that Batfish models.

Policies transform an :class:`AttributeBundle`, the mutable bag of BGP
path attributes a route carries while being imported/exported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.net.addr import Prefix


@dataclass(frozen=True)
class AttributeBundle:
    """BGP path attributes carried by one route announcement.

    Immutable; policy application returns a new bundle.  ``as_path``
    is a tuple of ASNs, leftmost = most recent hop.  ``communities``
    is a frozenset of (asn, value) pairs.
    """

    prefix: Prefix
    as_path: tuple[int, ...] = ()
    local_pref: int = 100
    med: int = 0
    origin_asn: int = 0
    communities: frozenset[tuple[int, int]] = frozenset()

    def prepend(self, asn: int, count: int = 1) -> "AttributeBundle":
        """Prepend ``asn`` to the AS path ``count`` times."""
        return replace(self, as_path=(asn,) * count + self.as_path)

    def with_local_pref(self, value: int) -> "AttributeBundle":
        """A copy with a different local preference."""
        return replace(self, local_pref=value)

    def with_med(self, value: int) -> "AttributeBundle":
        """A copy with a different MED."""
        return replace(self, med=value)

    def add_communities(self, tags: Iterable[tuple[int, int]]) -> "AttributeBundle":
        """A copy with extra community tags."""
        return replace(self, communities=self.communities | frozenset(tags))

    def remove_communities(self, tags: Iterable[tuple[int, int]]) -> "AttributeBundle":
        """A copy with the given community tags removed."""
        return replace(self, communities=self.communities - frozenset(tags))

    def path_contains(self, asn: int) -> bool:
        """Loop check: True if ``asn`` already appears in the path."""
        return asn in self.as_path


@dataclass(frozen=True)
class PrefixListEntry:
    """One prefix-list line: match ``prefix`` with length bounds.

    A route ``r`` matches iff ``prefix.contains_prefix(r)`` and
    ``ge <= r.length <= le``.  Defaults reproduce exact-match.
    """

    prefix: Prefix
    ge: int | None = None
    le: int | None = None
    permit: bool = True

    def matches(self, route_prefix: Prefix) -> bool:
        """True if the entry's match condition holds for the route."""
        if not self.prefix.contains_prefix(route_prefix):
            return False
        lower = self.ge if self.ge is not None else self.prefix.length
        upper = self.le if self.le is not None else (
            32 if self.ge is not None else self.prefix.length
        )
        return lower <= route_prefix.length <= upper


@dataclass
class PrefixList:
    """An ordered prefix list with first-match semantics."""

    name: str
    entries: list[PrefixListEntry] = field(default_factory=list)

    def permits(self, route_prefix: Prefix) -> bool:
        """First-match evaluation; implicit deny."""
        for entry in self.entries:
            if entry.matches(route_prefix):
                return entry.permit
        return False

    def clone(self) -> "PrefixList":
        """An independent copy."""
        return PrefixList(self.name, list(self.entries))


class ClauseAction(enum.Enum):
    """Disposition of a route-map clause."""

    PERMIT = "permit"
    DENY = "deny"


@dataclass(frozen=True)
class RouteMapClause:
    """One route-map stanza.

    Matching: all present match conditions must hold (AND).  On match,
    a PERMIT clause applies its set actions and accepts the route; a
    DENY clause rejects it.  On no match, evaluation falls through to
    the next clause.
    """

    seq: int
    action: ClauseAction = ClauseAction.PERMIT
    match_prefix_list: str | None = None
    match_community: tuple[int, int] | None = None
    set_local_pref: int | None = None
    set_med: int | None = None
    set_communities_add: frozenset[tuple[int, int]] = frozenset()
    set_communities_remove: frozenset[tuple[int, int]] = frozenset()
    prepend_count: int = 0

    def matches(
        self,
        bundle: AttributeBundle,
        prefix_lists: dict[str, PrefixList],
    ) -> bool:
        """Evaluate the clause's match conditions against a route."""
        if self.match_prefix_list is not None:
            plist = prefix_lists.get(self.match_prefix_list)
            if plist is None or not plist.permits(bundle.prefix):
                return False
        if self.match_community is not None:
            if self.match_community not in bundle.communities:
                return False
        return True

    def apply_sets(self, bundle: AttributeBundle, own_asn: int) -> AttributeBundle:
        """Apply this clause's set actions to a matching route."""
        if self.set_local_pref is not None:
            bundle = bundle.with_local_pref(self.set_local_pref)
        if self.set_med is not None:
            bundle = bundle.with_med(self.set_med)
        if self.set_communities_add:
            bundle = bundle.add_communities(self.set_communities_add)
        if self.set_communities_remove:
            bundle = bundle.remove_communities(self.set_communities_remove)
        if self.prepend_count:
            bundle = bundle.prepend(own_asn, self.prepend_count)
        return bundle


@dataclass
class RouteMap:
    """An ordered list of clauses with an implicit trailing deny."""

    name: str
    clauses: list[RouteMapClause] = field(default_factory=list)

    def sorted_clauses(self) -> list[RouteMapClause]:
        """Clauses in sequence-number order."""
        return sorted(self.clauses, key=lambda clause: clause.seq)

    def apply(
        self,
        bundle: AttributeBundle,
        prefix_lists: dict[str, PrefixList],
        own_asn: int,
    ) -> AttributeBundle | None:
        """Run the route through the map.

        Returns the transformed bundle if permitted, None if denied
        (explicitly or by the implicit trailing deny).
        """
        for clause in self.sorted_clauses():
            if not clause.matches(bundle, prefix_lists):
                continue
            if clause.action is ClauseAction.DENY:
                return None
            return clause.apply_sets(bundle, own_asn)
        return None

    def add_clause(self, clause: RouteMapClause) -> None:
        """Insert a clause; rejects duplicate sequence numbers."""
        if any(existing.seq == clause.seq for existing in self.clauses):
            raise ValueError(
                f"route-map {self.name} already has clause seq {clause.seq}"
            )
        self.clauses.append(clause)

    def remove_clause(self, seq: int) -> None:
        """Delete the clause with sequence number ``seq``."""
        before = len(self.clauses)
        self.clauses = [clause for clause in self.clauses if clause.seq != seq]
        if len(self.clauses) == before:
            raise ValueError(f"route-map {self.name} has no clause seq {seq}")

    def clone(self) -> "RouteMap":
        """An independent copy (clauses are immutable and shared)."""
        return RouteMap(self.name, list(self.clauses))


PERMIT_ALL = RouteMap("__permit_all__", [RouteMapClause(seq=10)])
