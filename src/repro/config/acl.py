"""Access control lists.

An ACL is an ordered list of rules with first-match-wins semantics and
an implicit trailing deny.  Rules match on destination prefix and,
optionally, source prefix, IP protocol, and destination port range.

Two evaluation views are provided:

- :meth:`Acl.permits_packet` — exact evaluation of one concrete packet
  (used by the packet-level simulator and the oracle tests).
- :meth:`Acl.project_dst` — the destination-axis projection used by the
  atom decomposition: a list of disjoint destination interval sets,
  each labelled PERMIT, DENY, or MIXED.  An interval is MIXED when the
  ACL's decision inside it depends on non-destination fields.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.net.addr import Prefix
from repro.net.interval import IntervalSet


class AclAction(enum.Enum):
    """Terminal decision of an ACL rule (or projected interval)."""

    PERMIT = "permit"
    DENY = "deny"
    MIXED = "mixed"  # projection-only: decision depends on src/proto/port


@dataclass(frozen=True)
class AclRule:
    """One match-action rule.

    ``dst`` is mandatory (use ``0.0.0.0/0`` for any).  ``src``,
    ``proto`` and ``dport_lo``/``dport_hi`` default to wildcards.
    """

    action: AclAction
    dst: Prefix
    src: Prefix | None = None
    proto: int | None = None
    dport_lo: int | None = None
    dport_hi: int | None = None

    def __post_init__(self) -> None:
        if self.action is AclAction.MIXED:
            raise ValueError("MIXED is a projection label, not a rule action")
        if (self.dport_lo is None) != (self.dport_hi is None):
            raise ValueError("dport bounds must be given together")
        if self.dport_lo is not None and self.dport_lo > self.dport_hi:  # type: ignore[operator]
            raise ValueError("empty dport range")

    @property
    def dst_only(self) -> bool:
        """True if the rule matches on destination alone."""
        return self.src is None and self.proto is None and self.dport_lo is None

    def matches_packet(self, packet: Mapping[str, int]) -> bool:
        """Exact match against a concrete packet (field -> int)."""
        if not self.dst.contains_address(packet["dst"]):
            return False
        if self.src is not None and not self.src.contains_address(packet["src"]):
            return False
        if self.proto is not None and packet.get("proto") != self.proto:
            return False
        if self.dport_lo is not None:
            port = packet.get("dport")
            if port is None or not self.dport_lo <= port <= self.dport_hi:  # type: ignore[operator]
                return False
        return True

    def dst_intervals(self) -> IntervalSet:
        """The destination addresses this rule can match."""
        lo, hi = self.dst.interval()
        return IntervalSet.span(lo, hi)

    def __str__(self) -> str:
        parts = [self.action.value, f"dst {self.dst}"]
        if self.src is not None:
            parts.append(f"src {self.src}")
        if self.proto is not None:
            parts.append(f"proto {self.proto}")
        if self.dport_lo is not None:
            parts.append(f"dport {self.dport_lo}-{self.dport_hi}")
        return " ".join(parts)


@dataclass
class Acl:
    """An ordered rule list with an implicit trailing deny."""

    name: str
    rules: list[AclRule] = field(default_factory=list)

    def permits_packet(self, packet: Mapping[str, int]) -> bool:
        """First-match evaluation of one packet; default deny."""
        for rule in self.rules:
            if rule.matches_packet(packet):
                return rule.action is AclAction.PERMIT
        return False

    def project_dst(self) -> list[tuple[IntervalSet, AclAction]]:
        """Project onto the destination axis.

        Returns disjoint (interval set, action) pairs covering the full
        address space.  Sweeps rules in priority order; a dst-only rule
        definitively decides the part of its destination region not
        claimed by earlier rules.  A rule with non-destination
        constraints marks its unclaimed region MIXED (conservatively:
        inside it, whether the rule fires — and hence the decision —
        depends on src/proto/port).  Whatever no rule touches falls to
        the implicit deny.
        """
        remaining = IntervalSet.full()
        permit = IntervalSet.empty()
        deny = IntervalSet.empty()
        mixed = IntervalSet.empty()
        for rule in self.rules:
            claim = rule.dst_intervals().intersection(remaining)
            if claim.is_empty():
                continue
            if not rule.dst_only:
                mixed = mixed.union(claim)
            elif rule.action is AclAction.PERMIT:
                permit = permit.union(claim)
            else:
                deny = deny.union(claim)
            remaining = remaining.difference(claim)
        deny = deny.union(remaining)  # implicit deny
        result: list[tuple[IntervalSet, AclAction]] = []
        if not permit.is_empty():
            result.append((permit, AclAction.PERMIT))
        if not deny.is_empty():
            result.append((deny, AclAction.DENY))
        if not mixed.is_empty():
            result.append((mixed, AclAction.MIXED))
        return result

    def denied_dst(self) -> IntervalSet:
        """Destinations dropped for *every* packet (DENY projection)."""
        for interval_set, action in self.project_dst():
            if action is AclAction.DENY:
                return interval_set
        return IntervalSet.empty()

    def cut_sets(self) -> list[IntervalSet]:
        """Destination interval sets contributing atom cut points."""
        return [rule.dst_intervals() for rule in self.rules]

    def clone(self) -> "Acl":
        """An independent copy (rules are immutable and shared)."""
        return Acl(self.name, list(self.rules))

    def __str__(self) -> str:
        body = "; ".join(str(rule) for rule in self.rules)
        return f"acl {self.name} [{body}]"


def replace_rule_action(rule: AclRule, action: AclAction) -> AclRule:
    """A copy of ``rule`` with a different action."""
    return replace(rule, action=action)
