"""Vendor-neutral device configuration model.

A :class:`~repro.config.device.DeviceConfig` carries everything the
control plane needs for one router: interface settings (enable flags,
ACL bindings), static routes, an OSPF process, a BGP process, ACLs,
prefix lists, and route maps.  The model is deliberately close to the
subset of IOS/Junos semantics that Batfish-style simulators cover:
enough to express the evaluation scenarios without vendor quirks.

:mod:`~repro.config.text` provides a plain-text serialization (one
block per device) with a round-tripping parser, so snapshots can live
on disk like real config directories.
"""

from repro.config.acl import Acl, AclAction, AclRule
from repro.config.device import DeviceConfig, InterfaceConfig
from repro.config.routemap import (
    AttributeBundle,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routing import (
    BgpConfig,
    BgpNeighborConfig,
    OspfConfig,
    OspfInterfaceSettings,
    StaticRouteConfig,
)

__all__ = [
    "Acl",
    "AclAction",
    "AclRule",
    "AttributeBundle",
    "BgpConfig",
    "BgpNeighborConfig",
    "DeviceConfig",
    "InterfaceConfig",
    "OspfConfig",
    "OspfInterfaceSettings",
    "PrefixList",
    "PrefixListEntry",
    "RouteMap",
    "RouteMapClause",
    "StaticRouteConfig",
]
