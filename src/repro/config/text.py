"""Plain-text serialization of device configurations.

The format is a small, line-oriented, IOS-flavoured language::

    device edge0_0
      interface eth0
        shutdown
        acl-in BLOCK_WEB
      static 172.16.1.0/24 next-hop 10.0.0.1
      static 172.16.9.0/24 drop
      ospf
        interface eth0 area 0 cost 10
        interface host0 area 0 cost 1 passive
      bgp 65001 router-id 192.168.0.1
        redistribute-connected
        neighbor 10.0.0.1 remote-as 65002 import IMP export EXP
        network 172.16.1.0/24
      acl BLOCK_WEB
        deny dst 172.16.5.0/24 proto 6 dport 80-80
        permit dst 0.0.0.0/0
      prefix-list CUST
        permit 172.16.0.0/12 ge 24 le 24
      route-map IMP
        clause 10 permit
          match prefix-list CUST
          set local-pref 200
        clause 20 deny

Indentation is cosmetic; keywords drive the parser state machine.
``serialize_device`` / ``parse_device`` round-trip, and
``serialize_configs`` / ``parse_configs`` handle a whole snapshot
(devices separated by their ``device`` headers).
"""

from __future__ import annotations

from repro.config.acl import Acl, AclAction, AclRule
from repro.config.device import DeviceConfig, InterfaceConfig
from repro.config.routemap import (
    ClauseAction,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routing import (
    BgpConfig,
    BgpNeighborConfig,
    OspfConfig,
    OspfInterfaceSettings,
    StaticRouteConfig,
)
from repro.net.addr import IPv4Address, Prefix


class ConfigParseError(ValueError):
    """Raised on malformed configuration text, with line context."""

    def __init__(self, line_number: int, line: str, message: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _community_text(tag: tuple[int, int]) -> str:
    return f"{tag[0]}:{tag[1]}"


def _serialize_static(route: StaticRouteConfig) -> str:
    if route.drop:
        target = "drop"
    elif route.next_hop is not None:
        target = f"next-hop {route.next_hop}"
    else:
        target = f"interface {route.interface}"
    suffix = ""
    if route.admin_distance != 1:
        suffix = f" distance {route.admin_distance}"
    return f"  static {route.prefix} {target}{suffix}"


def _serialize_acl_rule(rule: AclRule) -> str:
    parts = [rule.action.value, "dst", str(rule.dst)]
    if rule.src is not None:
        parts += ["src", str(rule.src)]
    if rule.proto is not None:
        parts += ["proto", str(rule.proto)]
    if rule.dport_lo is not None:
        parts += ["dport", f"{rule.dport_lo}-{rule.dport_hi}"]
    return "    " + " ".join(parts)


def _serialize_clause(clause: RouteMapClause) -> list[str]:
    lines = [f"    clause {clause.seq} {clause.action.value}"]
    if clause.match_prefix_list is not None:
        lines.append(f"      match prefix-list {clause.match_prefix_list}")
    if clause.match_community is not None:
        lines.append(f"      match community {_community_text(clause.match_community)}")
    if clause.set_local_pref is not None:
        lines.append(f"      set local-pref {clause.set_local_pref}")
    if clause.set_med is not None:
        lines.append(f"      set med {clause.set_med}")
    for tag in sorted(clause.set_communities_add):
        lines.append(f"      set community add {_community_text(tag)}")
    for tag in sorted(clause.set_communities_remove):
        lines.append(f"      set community remove {_community_text(tag)}")
    if clause.prepend_count:
        lines.append(f"      prepend {clause.prepend_count}")
    return lines


def serialize_device(config: DeviceConfig) -> str:
    """Render one device's configuration as text."""
    lines = [f"device {config.hostname}"]
    for name in sorted(config.interfaces):
        settings = config.interfaces[name]
        body: list[str] = []
        if not settings.enabled:
            body.append("    shutdown")
        if settings.acl_in is not None:
            body.append(f"    acl-in {settings.acl_in}")
        if settings.acl_out is not None:
            body.append(f"    acl-out {settings.acl_out}")
        if body:
            lines.append(f"  interface {name}")
            lines.extend(body)
    for route in config.static_routes:
        lines.append(_serialize_static(route))
    if config.ospf is not None:
        lines.append("  ospf")
        for name in sorted(config.ospf.interfaces):
            settings = config.ospf.interfaces[name]
            line = f"    interface {name} area {settings.area} cost {settings.cost}"
            if settings.passive:
                line += " passive"
            if not settings.enabled:
                line += " disabled"
            lines.append(line)
    if config.bgp is not None:
        bgp = config.bgp
        lines.append(f"  bgp {bgp.asn} router-id {bgp.router_id}")
        if bgp.redistribute_connected:
            lines.append("    redistribute-connected")
        for peer_ip in sorted(bgp.neighbors, key=lambda ip: ip.value):
            neighbor = bgp.neighbors[peer_ip]
            line = f"    neighbor {peer_ip} remote-as {neighbor.remote_asn}"
            if neighbor.import_policy is not None:
                line += f" import {neighbor.import_policy}"
            if neighbor.export_policy is not None:
                line += f" export {neighbor.export_policy}"
            if neighbor.next_hop_self:
                line += " next-hop-self"
            lines.append(line)
        for prefix in bgp.originated:
            lines.append(f"    network {prefix}")
    for name in sorted(config.acls):
        lines.append(f"  acl {name}")
        for rule in config.acls[name].rules:
            lines.append(_serialize_acl_rule(rule))
    for name in sorted(config.prefix_lists):
        lines.append(f"  prefix-list {name}")
        for entry in config.prefix_lists[name].entries:
            line = f"    {'permit' if entry.permit else 'deny'} {entry.prefix}"
            if entry.ge is not None:
                line += f" ge {entry.ge}"
            if entry.le is not None:
                line += f" le {entry.le}"
            lines.append(line)
    for name in sorted(config.route_maps):
        lines.append(f"  route-map {name}")
        for clause in config.route_maps[name].sorted_clauses():
            lines.extend(_serialize_clause(clause))
    return "\n".join(lines) + "\n"


def serialize_configs(configs: dict[str, DeviceConfig]) -> str:
    """Render a whole snapshot's configs, one device block after another."""
    return "\n".join(
        serialize_device(configs[hostname]) for hostname in sorted(configs)
    )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _parse_community(text: str) -> tuple[int, int]:
    asn_text, _, value_text = text.partition(":")
    return (int(asn_text), int(value_text))


class _Parser:
    """Line-driven state machine shared by device/snapshot parsing."""

    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.index = 0
        self.devices: dict[str, DeviceConfig] = {}
        self.device: DeviceConfig | None = None
        # Current sub-block context.
        self.context: str | None = None
        self.current_acl: Acl | None = None
        self.current_plist: PrefixList | None = None
        self.current_rmap: RouteMap | None = None
        self.current_clause: dict | None = None
        self.current_interface: InterfaceConfig | None = None

    def error(self, message: str) -> ConfigParseError:
        line = self.lines[self.index] if self.index < len(self.lines) else "<eof>"
        return ConfigParseError(self.index + 1, line, message)

    def flush_clause(self) -> None:
        if self.current_clause is None or self.current_rmap is None:
            return
        fields = self.current_clause
        self.current_rmap.add_clause(RouteMapClause(**fields))
        self.current_clause = None

    def run(self) -> dict[str, DeviceConfig]:
        for self.index in range(len(self.lines)):
            raw = self.lines[self.index]
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            self.dispatch(tokens)
        self.flush_clause()
        return self.devices

    # -- dispatch -------------------------------------------------------

    def dispatch(self, tokens: list[str]) -> None:
        keyword = tokens[0]
        if keyword == "device":
            self.flush_clause()
            self.start_device(tokens)
            return
        if self.device is None:
            raise self.error("statement outside any device block")
        handler = {
            "interface": self.handle_interface,
            "static": self.handle_static,
            "ospf": self.handle_ospf,
            "bgp": self.handle_bgp,
            "acl": self.handle_acl_header,
            "prefix-list": self.handle_plist_header,
            "route-map": self.handle_rmap_header,
        }.get(keyword)
        if handler is not None:
            handler(tokens)
            return
        self.handle_context_line(tokens)

    def start_device(self, tokens: list[str]) -> None:
        if len(tokens) != 2:
            raise self.error("expected: device <hostname>")
        hostname = tokens[1]
        if hostname in self.devices:
            raise self.error(f"duplicate device {hostname!r}")
        self.device = DeviceConfig(hostname)
        self.devices[hostname] = self.device
        self.context = None

    # -- top-level statements --------------------------------------------

    def handle_interface(self, tokens: list[str]) -> None:
        if self.context == "ospf":
            self.handle_ospf_interface(tokens)
            return
        self.flush_clause()
        if len(tokens) != 2:
            raise self.error("expected: interface <name>")
        assert self.device is not None
        self.current_interface = self.device.ensure_interface(tokens[1])
        self.context = "interface"

    def handle_static(self, tokens: list[str]) -> None:
        self.flush_clause()
        self.context = None
        assert self.device is not None
        if len(tokens) < 3:
            raise self.error("expected: static <prefix> <target>")
        prefix = Prefix(tokens[1])
        distance = 1
        body = tokens[2:]
        if "distance" in body:
            at = body.index("distance")
            distance = int(body[at + 1])
            body = body[:at]
        if body == ["drop"]:
            route = StaticRouteConfig(prefix, drop=True, admin_distance=distance)
        elif len(body) == 2 and body[0] == "next-hop":
            route = StaticRouteConfig(
                prefix, next_hop=IPv4Address(body[1]), admin_distance=distance
            )
        elif len(body) == 2 and body[0] == "interface":
            route = StaticRouteConfig(
                prefix, interface=body[1], admin_distance=distance
            )
        else:
            raise self.error("bad static route target")
        self.device.add_static_route(route)

    def handle_ospf(self, tokens: list[str]) -> None:
        self.flush_clause()
        if len(tokens) != 1:
            raise self.error("expected: ospf")
        assert self.device is not None
        if self.device.ospf is None:
            self.device.ospf = OspfConfig()
        self.context = "ospf"

    def handle_ospf_interface(self, tokens: list[str]) -> None:
        assert self.device is not None and self.device.ospf is not None
        if len(tokens) < 6 or tokens[2] != "area" or tokens[4] != "cost":
            raise self.error(
                "expected: interface <name> area <n> cost <n> [passive] [disabled]"
            )
        flags = tokens[6:]
        settings = OspfInterfaceSettings(
            area=int(tokens[3]),
            cost=int(tokens[5]),
            enabled="disabled" not in flags,
            passive="passive" in flags,
        )
        self.device.ospf.interfaces[tokens[1]] = settings

    def handle_bgp(self, tokens: list[str]) -> None:
        self.flush_clause()
        if len(tokens) != 4 or tokens[2] != "router-id":
            raise self.error("expected: bgp <asn> router-id <ip>")
        assert self.device is not None
        self.device.bgp = BgpConfig(
            asn=int(tokens[1]), router_id=IPv4Address(tokens[3])
        )
        self.context = "bgp"

    def handle_acl_header(self, tokens: list[str]) -> None:
        self.flush_clause()
        if len(tokens) != 2:
            raise self.error("expected: acl <name>")
        assert self.device is not None
        self.current_acl = Acl(tokens[1])
        self.device.acls[tokens[1]] = self.current_acl
        self.context = "acl"

    def handle_plist_header(self, tokens: list[str]) -> None:
        self.flush_clause()
        if len(tokens) != 2:
            raise self.error("expected: prefix-list <name>")
        assert self.device is not None
        self.current_plist = PrefixList(tokens[1])
        self.device.prefix_lists[tokens[1]] = self.current_plist
        self.context = "prefix-list"

    def handle_rmap_header(self, tokens: list[str]) -> None:
        self.flush_clause()
        if len(tokens) != 2:
            raise self.error("expected: route-map <name>")
        assert self.device is not None
        self.current_rmap = RouteMap(tokens[1])
        self.device.route_maps[tokens[1]] = self.current_rmap
        self.context = "route-map"

    # -- context-dependent statements --------------------------------------

    def handle_context_line(self, tokens: list[str]) -> None:
        handlers = {
            "interface": self.interface_line,
            "ospf": self.ospf_line,
            "bgp": self.bgp_line,
            "acl": self.acl_line,
            "prefix-list": self.plist_line,
            "route-map": self.rmap_line,
        }
        if self.context not in handlers:
            raise self.error(f"unexpected statement {tokens[0]!r}")
        handlers[self.context](tokens)

    def interface_line(self, tokens: list[str]) -> None:
        assert self.current_interface is not None
        if tokens == ["shutdown"]:
            self.current_interface.enabled = False
        elif len(tokens) == 2 and tokens[0] == "acl-in":
            self.current_interface.acl_in = tokens[1]
        elif len(tokens) == 2 and tokens[0] == "acl-out":
            self.current_interface.acl_out = tokens[1]
        else:
            raise self.error("bad interface statement")

    def ospf_line(self, tokens: list[str]) -> None:
        if tokens[0] == "interface":
            self.handle_ospf_interface(tokens)
        else:
            raise self.error("bad ospf statement")

    def bgp_line(self, tokens: list[str]) -> None:
        assert self.device is not None and self.device.bgp is not None
        bgp = self.device.bgp
        if tokens == ["redistribute-connected"]:
            bgp.redistribute_connected = True
            return
        if tokens[0] == "network" and len(tokens) == 2:
            bgp.originated.append(Prefix(tokens[1]))
            return
        if tokens[0] == "neighbor":
            if len(tokens) < 4 or tokens[2] != "remote-as":
                raise self.error("expected: neighbor <ip> remote-as <asn> ...")
            neighbor = BgpNeighborConfig(
                peer_ip=IPv4Address(tokens[1]), remote_asn=int(tokens[3])
            )
            rest = tokens[4:]
            while rest:
                if rest[0] == "import" and len(rest) >= 2:
                    neighbor.import_policy = rest[1]
                    rest = rest[2:]
                elif rest[0] == "export" and len(rest) >= 2:
                    neighbor.export_policy = rest[1]
                    rest = rest[2:]
                elif rest[0] == "next-hop-self":
                    neighbor.next_hop_self = True
                    rest = rest[1:]
                else:
                    raise self.error(f"bad neighbor option {rest[0]!r}")
            bgp.add_neighbor(neighbor)
            return
        raise self.error("bad bgp statement")

    def acl_line(self, tokens: list[str]) -> None:
        assert self.current_acl is not None
        if tokens[0] not in ("permit", "deny"):
            raise self.error("acl rule must start with permit/deny")
        action = AclAction.PERMIT if tokens[0] == "permit" else AclAction.DENY
        fields: dict = {}
        rest = tokens[1:]
        while rest:
            if rest[0] == "dst" and len(rest) >= 2:
                fields["dst"] = Prefix(rest[1])
                rest = rest[2:]
            elif rest[0] == "src" and len(rest) >= 2:
                fields["src"] = Prefix(rest[1])
                rest = rest[2:]
            elif rest[0] == "proto" and len(rest) >= 2:
                fields["proto"] = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "dport" and len(rest) >= 2:
                lo_text, _, hi_text = rest[1].partition("-")
                fields["dport_lo"] = int(lo_text)
                fields["dport_hi"] = int(hi_text or lo_text)
                rest = rest[2:]
            else:
                raise self.error(f"bad acl field {rest[0]!r}")
        if "dst" not in fields:
            raise self.error("acl rule needs a dst")
        self.current_acl.rules.append(AclRule(action=action, **fields))

    def plist_line(self, tokens: list[str]) -> None:
        assert self.current_plist is not None
        if tokens[0] not in ("permit", "deny") or len(tokens) < 2:
            raise self.error("expected: permit|deny <prefix> [ge n] [le n]")
        entry_fields: dict = {
            "prefix": Prefix(tokens[1]),
            "permit": tokens[0] == "permit",
        }
        rest = tokens[2:]
        while rest:
            if rest[0] == "ge" and len(rest) >= 2:
                entry_fields["ge"] = int(rest[1])
                rest = rest[2:]
            elif rest[0] == "le" and len(rest) >= 2:
                entry_fields["le"] = int(rest[1])
                rest = rest[2:]
            else:
                raise self.error(f"bad prefix-list option {rest[0]!r}")
        self.current_plist.entries.append(PrefixListEntry(**entry_fields))

    def rmap_line(self, tokens: list[str]) -> None:
        assert self.current_rmap is not None
        if tokens[0] == "clause":
            self.flush_clause()
            if len(tokens) != 3 or tokens[2] not in ("permit", "deny"):
                raise self.error("expected: clause <seq> permit|deny")
            self.current_clause = {
                "seq": int(tokens[1]),
                "action": (
                    ClauseAction.PERMIT if tokens[2] == "permit" else ClauseAction.DENY
                ),
            }
            return
        if self.current_clause is None:
            raise self.error("route-map statement outside a clause")
        clause = self.current_clause
        if tokens[:2] == ["match", "prefix-list"] and len(tokens) == 3:
            clause["match_prefix_list"] = tokens[2]
        elif tokens[:2] == ["match", "community"] and len(tokens) == 3:
            clause["match_community"] = _parse_community(tokens[2])
        elif tokens[:2] == ["set", "local-pref"] and len(tokens) == 3:
            clause["set_local_pref"] = int(tokens[2])
        elif tokens[:2] == ["set", "med"] and len(tokens) == 3:
            clause["set_med"] = int(tokens[2])
        elif tokens[:3] == ["set", "community", "add"] and len(tokens) == 4:
            existing = clause.get("set_communities_add", frozenset())
            clause["set_communities_add"] = existing | {_parse_community(tokens[3])}
        elif tokens[:3] == ["set", "community", "remove"] and len(tokens) == 4:
            existing = clause.get("set_communities_remove", frozenset())
            clause["set_communities_remove"] = existing | {_parse_community(tokens[3])}
        elif tokens[0] == "prepend" and len(tokens) == 2:
            clause["prepend_count"] = int(tokens[1])
        else:
            raise self.error("bad route-map statement")


def parse_configs(text: str) -> dict[str, DeviceConfig]:
    """Parse one or more device blocks into configs keyed by hostname."""
    return _Parser(text).run()


def parse_device(text: str) -> DeviceConfig:
    """Parse exactly one device block."""
    devices = parse_configs(text)
    if len(devices) != 1:
        raise ValueError(f"expected exactly one device, found {len(devices)}")
    return next(iter(devices.values()))
