"""Incremental OSPF maintenance.

:class:`OspfIncremental` wraps the OSPF portion of a
:class:`~repro.controlplane.simulation.NetworkState` and keeps it
consistent under topology/config edits, surgically:

- logical edges between a pair of routers are recomputed from the
  snapshot and pushed into every per-source :class:`DynamicSpf` of the
  area (sources whose trees never used the edge pay O(1));
- a router's advertised prefixes are re-derived and diffed, yielding
  the set of prefixes whose routes must be refreshed *for every source
  in the area* — but only for those prefixes.

The result of each operation is an :class:`OspfDirty` summary the
analyzer folds into route recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controlplane.ospf import (
    OspfState,
    _active_ospf_settings,
    _interface_participates,
)
from repro.controlplane.rib import NextHop
from repro.controlplane.simulation import NetworkState
from repro.controlplane.spf import SpfGraph
from repro.net.addr import Prefix


@dataclass
class OspfDirty:
    """What an OSPF-touching edit invalidated.

    - ``sources``: (router, area) pairs whose SPF changed — their full
      OSPF route set is recomputed.
    - ``prefixes``: area -> prefixes whose advertisements changed —
      every source in the area refreshes *those* prefixes only.
    """

    sources: set[tuple[str, int]] = field(default_factory=set)
    prefixes: dict[int, set[Prefix]] = field(default_factory=dict)

    def merge(self, other: "OspfDirty") -> None:
        self.sources.update(other.sources)
        for area, prefixes in other.prefixes.items():
            self.prefixes.setdefault(area, set()).update(prefixes)

    def is_empty(self) -> bool:
        return not self.sources and not any(self.prefixes.values())


class OspfIncremental:
    """Surgical OSPF updates over a converged network state."""

    def __init__(self, state: NetworkState) -> None:
        self.state = state

    @property
    def ospf(self) -> OspfState:
        return self.state.ospf_state

    # -- edge maintenance ---------------------------------------------------

    def _desired_edges(
        self, u: str, w: str
    ) -> dict[tuple[int, str, str], tuple[int, frozenset[NextHop]]]:
        """What the snapshot says the logical edges between u and w
        should be, per (area, from, to)."""
        snapshot = self.state.snapshot
        topology = snapshot.topology
        desired: dict[tuple[int, str, str], tuple[int, set[NextHop]]] = {}
        for link in topology.links():
            if set(link.routers) != {u, w}:
                continue
            sides = (link.side_a, link.side_b)
            for (local, local_if), (peer, peer_if) in (sides, sides[::-1]):
                settings = _active_ospf_settings(snapshot, local, local_if)
                peer_settings = _active_ospf_settings(snapshot, peer, peer_if)
                if settings is None or peer_settings is None:
                    continue
                if settings.passive or peer_settings.passive:
                    continue
                if settings.area != peer_settings.area:
                    continue
                peer_address = topology.router(peer).interface(peer_if).address
                hop = NextHop(interface=local_if, ip=peer_address, neighbor=peer)
                key = (settings.area, local, peer)
                entry = desired.get(key)
                if entry is None or settings.cost < entry[0]:
                    desired[key] = (settings.cost, {hop})
                elif settings.cost == entry[0]:
                    entry[1].add(hop)
        return {
            key: (cost, frozenset(hops)) for key, (cost, hops) in desired.items()
        }

    def refresh_pair(self, u: str, w: str) -> OspfDirty:
        """Reconcile all logical edges between two routers.

        Called after any edit that may have changed links, interface
        states, costs, or OSPF participation between ``u`` and ``w``.
        """
        dirty = OspfDirty()
        desired = self._desired_edges(u, w)
        areas = set(self.ospf.graphs)
        areas.update(area for area, _, _ in desired)
        for area in areas:
            graph = self.ospf.graphs.get(area)
            if graph is None:
                graph = SpfGraph()
                self.ospf.graphs[area] = graph
            for x, y in ((u, w), (w, u)):
                want = desired.get((area, x, y))
                have_cost = graph.adjacency.get(x, {}).get(y)
                have_hops = graph.attachments.get((x, y))
                if want is None:
                    if have_cost is None:
                        continue
                    graph.remove_edge(x, y)
                    self._propagate_increase(area, x, y, dirty)
                else:
                    cost, hops = want
                    if have_cost == cost and have_hops == hops:
                        continue
                    graph.set_edge(x, y, cost, hops)
                    if have_cost is None or cost < have_cost:
                        self._propagate_decrease(area, x, y, dirty)
                    elif cost > have_cost:
                        self._propagate_increase(area, x, y, dirty)
                    else:
                        # Same cost, different physical attachments:
                        # distances hold, first hops from x change.
                        self._attachments_changed(area, x, dirty)
        return dirty

    def _sources_in(self, area: int):
        for (router, spf_area), spf in self.ospf.spf.items():
            if spf_area == area:
                yield router, spf

    def _propagate_increase(self, area: int, x: str, y: str, dirty: OspfDirty) -> None:
        for router, spf in self._sources_in(area):
            if spf.edge_increased(x, y):
                dirty.sources.add((router, area))

    def _propagate_decrease(self, area: int, x: str, y: str, dirty: OspfDirty) -> None:
        for router, spf in self._sources_in(area):
            if spf.edge_decreased(x, y):
                dirty.sources.add((router, area))

    def _attachments_changed(self, area: int, x: str, dirty: OspfDirty) -> None:
        spf = self.ospf.spf.get((x, area))
        if spf is not None:
            spf.invalidate_first_hops()
        dirty.sources.add((x, area))

    # -- advertisement maintenance ----------------------------------------------

    def refresh_router_adverts(self, router: str) -> OspfDirty:
        """Re-derive one router's advertised prefixes and memberships."""
        snapshot = self.state.snapshot
        dirty = OspfDirty()
        config = snapshot.configs.get(router)
        desired: dict[int, dict[Prefix, int]] = {}
        desired_membership: set[int] = set()
        if config is not None and config.ospf is not None:
            device = snapshot.topology.router(router)
            for interface_name, settings in config.ospf.interfaces.items():
                if not settings.enabled or interface_name not in device.interfaces:
                    continue
                if not _interface_participates(snapshot, router, interface_name):
                    continue
                desired_membership.add(settings.area)
                subnet = device.interfaces[interface_name].subnet
                if subnet is None:
                    continue
                per_area = desired.setdefault(settings.area, {})
                existing = per_area.get(subnet)
                if existing is None or settings.cost < existing:
                    per_area[subnet] = settings.cost

        areas = set(desired) | {
            area
            for area, owners in self.ospf.advertised.items()
            if router in owners
        }
        for area in areas:
            current = self.ospf.advertised.get(area, {}).get(router, {})
            wanted = desired.get(area, {})
            changed = {
                prefix
                for prefix in set(current) | set(wanted)
                if current.get(prefix) != wanted.get(prefix)
            }
            if changed:
                dirty.prefixes.setdefault(area, set()).update(changed)
            if wanted:
                self.ospf.advertised.setdefault(area, {})[router] = wanted
            else:
                self.ospf.advertised.get(area, {}).pop(router, None)

        if desired_membership:
            self.ospf.membership[router] = desired_membership
        else:
            self.ospf.membership.pop(router, None)
        for area in desired_membership:
            if area not in self.ospf.graphs:
                self.ospf.graphs[area] = SpfGraph()
            self.ospf.graphs[area].add_node(router)
        return dirty
