"""Routes, next hops, and per-router RIBs.

A :class:`Route` is one protocol's candidate path to a prefix on one
router; the :class:`Rib` keeps the best route per (prefix, protocol)
and answers "overall best per prefix" by administrative distance.
Equal-cost multipath is modelled by a route carrying a *set* of next
hops rather than by duplicate routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.config.routemap import AttributeBundle
from repro.net.addr import IPv4Address, Prefix

PROTOCOL_PREFERENCE = ("connected", "static", "bgp", "ospf")


@dataclass(frozen=True, order=True)
class NextHop:
    """One forwarding target of a route.

    - ``interface``: the egress interface name (empty for drops).
    - ``ip``: the next-hop address (None for directly attached).
    - ``neighbor``: the router on the far end (None when the packet is
      delivered locally onto the connected subnet, or dropped).
    - ``drop``: True for null routes.
    """

    interface: str = ""
    ip: IPv4Address | None = None
    neighbor: str | None = None
    drop: bool = False

    def __str__(self) -> str:
        if self.drop:
            return "drop"
        target = self.neighbor if self.neighbor is not None else "attached"
        via_ip = f" {self.ip}" if self.ip is not None else ""
        return f"{self.interface}->{target}{via_ip}"


DROP_NEXT_HOP = NextHop(drop=True)


@dataclass(frozen=True)
class Route:
    """A candidate route installed by one protocol on one router."""

    prefix: Prefix
    protocol: str
    admin_distance: int
    metric: int
    next_hops: frozenset[NextHop]
    # BGP-only bookkeeping; None for IGP/static/connected routes.
    bgp: AttributeBundle | None = None
    bgp_next_hop: IPv4Address | None = None  # unresolved protocol next hop
    learned_from: str | None = None  # advertising peer router, BGP only

    def sort_key(self) -> tuple:
        """Total order used for deterministic diffs and printing."""
        return (
            self.prefix,
            self.admin_distance,
            PROTOCOL_PREFERENCE.index(self.protocol)
            if self.protocol in PROTOCOL_PREFERENCE
            else len(PROTOCOL_PREFERENCE),
            self.metric,
        )

    def with_next_hops(self, next_hops: frozenset[NextHop]) -> "Route":
        """A copy forwarding via a different next-hop set."""
        return replace(self, next_hops=next_hops)

    def __str__(self) -> str:
        hops = ", ".join(str(nh) for nh in sorted(self.next_hops))
        return (
            f"{self.prefix} [{self.protocol} ad={self.admin_distance} "
            f"metric={self.metric}] via {{{hops}}}"
        )


class Rib:
    """Per-router routing table: best route per (prefix, protocol)."""

    def __init__(self, router: str) -> None:
        self.router = router
        self._routes: dict[Prefix, dict[str, Route]] = {}

    def install(self, route: Route) -> None:
        """Insert or replace the protocol's route for its prefix."""
        self._routes.setdefault(route.prefix, {})[route.protocol] = route

    def withdraw(self, prefix: Prefix, protocol: str) -> bool:
        """Remove a protocol's route; True if something was removed."""
        per_prefix = self._routes.get(prefix)
        if per_prefix is None or protocol not in per_prefix:
            return False
        del per_prefix[protocol]
        if not per_prefix:
            del self._routes[prefix]
        return True

    def route(self, prefix: Prefix, protocol: str) -> Route | None:
        """The installed route for (prefix, protocol), if any."""
        return self._routes.get(prefix, {}).get(protocol)

    def best(self, prefix: Prefix) -> Route | None:
        """The winning route for a prefix (admin distance, then
        protocol preference for determinism)."""
        candidates = self._routes.get(prefix)
        if not candidates:
            return None
        return min(candidates.values(), key=lambda r: r.sort_key())

    def best_excluding(self, prefix: Prefix, excluded: frozenset[str]) -> Route | None:
        """Best route ignoring some protocols (e.g. the IGP view
        excludes BGP)."""
        candidates = [
            route
            for protocol, route in self._routes.get(prefix, {}).items()
            if protocol not in excluded
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda r: r.sort_key())

    def snapshot_prefix(self, prefix: Prefix) -> dict[str, Route] | None:
        """The per-protocol route map for ``prefix`` (None if absent).

        Returns a copy safe to stash in an undo journal; restore with
        :meth:`restore_prefix`.
        """
        per_prefix = self._routes.get(prefix)
        return dict(per_prefix) if per_prefix is not None else None

    def restore_prefix(
        self, prefix: Prefix, saved: dict[str, Route] | None
    ) -> None:
        """Reinstate a state captured by :meth:`snapshot_prefix`."""
        if saved is None:
            self._routes.pop(prefix, None)
        else:
            self._routes[prefix] = dict(saved)

    def prefixes(self) -> Iterator[Prefix]:
        """All prefixes with at least one route."""
        return iter(self._routes)

    def best_routes(self) -> dict[Prefix, Route]:
        """Winning route per prefix."""
        return {prefix: self.best(prefix) for prefix in self._routes}  # type: ignore[misc]

    def all_routes(self) -> Iterator[Route]:
        """Every installed route, all protocols."""
        for per_prefix in self._routes.values():
            yield from per_prefix.values()

    def __len__(self) -> int:
        return sum(len(per_prefix) for per_prefix in self._routes.values())

    def __str__(self) -> str:
        lines = [f"RIB {self.router}:"]
        for prefix in sorted(self._routes):
            best = self.best(prefix)
            lines.append(f"  {best}")
        return "\n".join(lines)


@dataclass
class RibDelta:
    """Best-route changes of one router, as (before, after) pairs."""

    router: str
    changed: dict[Prefix, tuple[Route | None, Route | None]] = field(
        default_factory=dict
    )

    def record(self, prefix: Prefix, before: Route | None, after: Route | None) -> None:
        """Note a best-route transition (collapsing no-ops)."""
        if before == after:
            self.changed.pop(prefix, None)
            return
        existing = self.changed.get(prefix)
        if existing is not None:
            original = existing[0]
            if original == after:
                del self.changed[prefix]
            else:
                self.changed[prefix] = (original, after)
        else:
            self.changed[prefix] = (before, after)

    def is_empty(self) -> bool:
        return not self.changed

    def __len__(self) -> int:
        return len(self.changed)
