"""Datalog encoding of the data plane.

The paper's system expresses network behaviour as Datalog rules and
lets a differential Datalog runtime maintain them.  This module keeps
that architecture alive in the reproduction: the per-atom forwarding
relation is exported as EDB facts, reachability is the classic
transitive-closure program, and the incremental engine
(:class:`~repro.datalog.incremental.IncrementalProgram`) maintains it
under forwarding deltas.

The specialized per-atom reverse-BFS in :mod:`repro.dataplane` is the
*production* path (the "incremental datalog performance suffers" note
in the reproduction band is exactly why); this model is used to
cross-validate it in tests and to quantify the gap in the F7/F10
benchmarks.

Relations:

- ``fwd(atom, src, dst)``     — src forwards atom's packets to dst.
- ``delivers(atom, router)``  — router delivers the atom locally.
- ``reach(atom, src, owner)`` — derived: src can reach delivery at
  owner (``reach(a, o, o)`` holds for owners).
"""

from __future__ import annotations

from repro.datalog.ast import Program, Rule, Variable, atom as datom
from repro.datalog.database import Database
from repro.datalog.incremental import Delta, IncrementalProgram
from repro.dataplane.atoms import Atom
from repro.dataplane.forwarding import DataPlane

A = Variable("A")
S = Variable("S")
M = Variable("M")
O = Variable("O")
U = Variable("U")
V = Variable("V")
C1 = Variable("C1")
C2 = Variable("C2")


def spf_cost_program() -> "CostProgram":
    """Intra-area SPF as monotone cost Datalog.

    The rules the paper family writes for route computation::

        dist(S, S) min= 0                      :- node(S)
        dist(S, V) min= dist(S, U) + link(U,V)

    ``node(S)`` is a plain relation; ``link(U, V)`` is a cost relation
    whose cost is the edge weight.  Evaluated with
    :class:`~repro.datalog.costlog.CostProgram`, the fixpoint equals
    Dijkstra per source — cross-validated against the production SPF
    in tests and the F10 ablation.
    """
    from repro.datalog.costlog import CostAtom, CostProgram, CostRule, sum_of

    return CostProgram(
        [
            CostRule(datom("dist", S, S), [datom("node", S)], sum_of()),
            CostRule(
                datom("dist", S, V),
                [
                    CostAtom(datom("dist", S, U), C1),
                    CostAtom(datom("link", U, V), C2),
                ],
                sum_of(C1, C2),
            ),
        ]
    )


def spf_graph_facts(graph) -> tuple[set[tuple], dict[tuple, float]]:
    """(node rows, link cost facts) for one SPF area graph."""
    nodes = {(name,) for name in graph.nodes()}
    links = {
        (u, v): float(cost)
        for u, successors in graph.adjacency.items()
        for v, cost in successors.items()
    }
    return nodes, links


def spf_distances_via_datalog(graph) -> dict[tuple[str, str], float]:
    """All-pairs SPF distances from the cost-Datalog program."""
    program = spf_cost_program()
    database = Database()
    nodes, links = spf_graph_facts(graph)
    database.relation("node", 1).load(nodes)
    result = program.evaluate(database, {"link": links})
    return dict(result.get("dist", {}))


def reachability_program() -> Program:
    """The reachability rules over per-atom forwarding facts."""
    return Program(
        [
            Rule(datom("reach", A, O, O), [datom("delivers", A, O)]),
            Rule(
                datom("reach", A, S, O),
                [datom("fwd", A, S, M), datom("reach", A, M, O)],
            ),
        ]
    )


def forwarding_facts(
    dataplane: DataPlane, atoms: list[Atom] | None = None
) -> tuple[set[tuple], set[tuple]]:
    """Extract (fwd rows, delivers rows) for the given atoms.

    Atom identity in the facts is the (lo, hi) pair, which is stable
    for as long as the atom exists.
    """
    if atoms is None:
        atoms = list(dataplane.atom_table.atoms())
    fwd: set[tuple] = set()
    delivers: set[tuple] = set()
    for atom in atoms:
        key = (atom.lo, atom.hi)
        for router, action in dataplane.actions_for_atom(atom).items():
            for neighbor in action.forward_neighbors():
                fwd.add((key, router, neighbor))
            if action.delivers():
                delivers.add((key, router))
    return fwd, delivers


class DatalogReachability:
    """Reachability maintained by the incremental Datalog engine."""

    def __init__(self, dataplane: DataPlane) -> None:
        self.dataplane = dataplane
        self.program = reachability_program()
        self.database = Database()
        fwd, delivers = forwarding_facts(dataplane)
        self.database.relation("fwd", 3).load(fwd)
        self.database.relation("delivers", 2).load(delivers)
        self._fwd = set(fwd)
        self._delivers = set(delivers)
        self.incremental = IncrementalProgram(self.program, self.database)

    def pairs(self, atom: Atom) -> set[tuple[str, str]]:
        """(source, owner) pairs for one atom, from the Datalog view."""
        key = (atom.lo, atom.hi)
        return {
            (src, owner)
            for a, src, owner in self.database.relation("reach").rows()
            if a == key
        }

    def refresh_atoms(self, atoms: list[Atom]) -> Delta:
        """Re-derive facts for dirty atoms and push the delta.

        The dirty atoms' spans are re-extracted from the data plane;
        stale facts for atom keys overlapping those spans (including
        keys of atoms that no longer exist) are deleted.
        """
        spans = [(atom.lo, atom.hi) for atom in atoms]

        def overlaps(key: tuple[int, int]) -> bool:
            return any(key[0] < hi and lo < key[1] for lo, hi in spans)

        new_fwd, new_delivers = forwarding_facts(self.dataplane, atoms)
        stale_fwd = {row for row in self._fwd if overlaps(row[0])}
        stale_delivers = {row for row in self._delivers if overlaps(row[0])}
        delta = self.incremental.apply(
            inserts={
                "fwd": new_fwd - stale_fwd,
                "delivers": new_delivers - stale_delivers,
            },
            deletes={
                "fwd": stale_fwd - new_fwd,
                "delivers": stale_delivers - new_delivers,
            },
        )
        self._fwd = (self._fwd - stale_fwd) | new_fwd
        self._delivers = (self._delivers - stale_delivers) | new_delivers
        return delta

    def validate_against_dataplane(self, atoms: list[Atom] | None = None) -> bool:
        """True if the Datalog view matches the reverse-BFS analysis.

        ``reach`` includes transit pairs (src reaching an owner it
        forwards through); the data-plane analysis reports exactly the
        same set, so strict equality is required.
        """
        from repro.dataplane.reachability import compute_atom_reachability

        if atoms is None:
            atoms = list(self.dataplane.atom_table.atoms())
        for atom in atoms:
            expected = compute_atom_reachability(self.dataplane, atom).pair_set()
            if self.pairs(atom) != set(expected):
                return False
        return True
