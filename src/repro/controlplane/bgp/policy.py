"""Stage 3 — policy evaluation: route maps at session boundaries.

One definition of "apply this neighbor's policy to this bundle",
shared by the export and import halves of the adj-RIB stage, plus the
static policy-to-session index the extraction layer uses to scope
policy edits down to the adj-RIB entries they can actually affect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.routemap import AttributeBundle
from repro.net.addr import IPv4Address

if TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.config.device import DeviceConfig

# Sentinel distinguishing "no policy configured" (pass through) from
# "policy denied / dangling" (drop) in apply_policy's return.
_DENIED = None


def apply_policy(
    config: "DeviceConfig",
    policy_name: str | None,
    bundle: AttributeBundle,
) -> AttributeBundle | None:
    """Run one named route-map over ``bundle`` on ``config``'s device.

    Returns the (possibly transformed) bundle, or None when the policy
    denies the route.  A configured-but-missing route map blocks the
    session — a dangling policy name fails closed, matching vendor
    behaviour.  No policy configured passes the bundle through.
    """
    if policy_name is None:
        return bundle
    assert config.bgp is not None
    route_map = config.route_maps.get(policy_name)
    if route_map is None:
        return _DENIED
    return route_map.apply(bundle, config.prefix_lists, config.bgp.asn)


def neighbors_using_map(
    config: "DeviceConfig", route_map: str
) -> list[tuple[IPv4Address, str]]:
    """(peer_ip, direction) for every neighbor bound to ``route_map``.

    Direction is ``"import"`` or ``"export"``.  This is the scoping
    index for attribute-only policy edits: a local-pref change on map
    M can only perturb adj-RIB entries flowing over the sessions bound
    to M, so the extraction layer deposits exactly those (receiver,
    sender) pairs on the ``bgp_adj_rib`` axis instead of dirtying the
    whole router.
    """
    bound: list[tuple[IPv4Address, str]] = []
    if config.bgp is None:
        return bound
    for peer_ip, neighbor in config.bgp.neighbors.items():
        if neighbor.import_policy == route_map:
            bound.append((peer_ip, "import"))
        if neighbor.export_policy == route_map:
            bound.append((peer_ip, "export"))
    return bound
