"""Shared value types of the BGP pipeline stages.

The BGP subsystem is an explicit four-stage pipeline (mirroring the
PR-5 analyzer architecture):

1. **Session discovery** (:mod:`repro.controlplane.bgp.sessions`) —
   which directed sessions are structurally valid and up.
2. **Adj-RIB** (:mod:`repro.controlplane.bgp.adjrib`) — what one
   session direction exports and how the receiver files it.
3. **Policy** (:mod:`repro.controlplane.bgp.policy`) — route-map
   application and the policy-to-session index used for scoping.
4. **Best path** (:mod:`repro.controlplane.bgp.decision`) — the
   standard decision process over a router's candidates.

:mod:`repro.controlplane.bgp.solver` drives stages 2–4 to a fixpoint
per prefix.  This module holds the value types every stage shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.config.routemap import AttributeBundle
from repro.config.routing import ADMIN_DISTANCE_EBGP, ADMIN_DISTANCE_IBGP
from repro.controlplane.rib import Route
from repro.net.addr import IPv4Address, Prefix

LOCAL_KEY = "__local__"

INFINITY = float("inf")


class BgpConvergenceError(RuntimeError):
    """Raised when per-prefix propagation fails to reach a fixpoint."""


class IgpView(Protocol):
    """What BGP needs from the IGP/static/connected layers."""

    def cost_to(self, router: str, address: IPv4Address) -> float:
        """Metric of the best non-BGP route covering ``address``
        (infinity when unreachable)."""
        ...


@dataclass(frozen=True)
class BgpSession:
    """One configured, structurally valid BGP session."""

    local: str
    peer: str
    local_ip: IPv4Address
    peer_ip: IPv4Address
    ebgp: bool
    direct: bool  # peer address on a shared subnet (vs loopback/multihop)

    @property
    def key(self) -> tuple[str, str]:
        return (self.local, self.peer)

    @property
    def sort_key(self) -> tuple[str, str, int, int]:
        """Canonical ordering: session lists are kept sorted by this
        key so the full and pair-scoped discovery paths produce
        byte-identical state (the solver iterates sessions in list
        order, and determinism contracts compare converged state)."""
        return (self.local, self.peer, self.local_ip.value, self.peer_ip.value)


@dataclass(frozen=True)
class BgpCandidate:
    """One path for a prefix in a router's adj-RIB-in (or local)."""

    bundle: AttributeBundle
    next_hop: IPv4Address | None  # None only for local originations
    from_peer: str | None  # advertising router; None for local
    ebgp: bool
    peer_router_id: int

    @property
    def is_local(self) -> bool:
        return self.from_peer is None


@dataclass
class BgpPrefixSolution:
    """Converged state for one prefix."""

    prefix: Prefix
    best: dict[str, BgpCandidate]
    adj_in: dict[tuple[str, str], BgpCandidate]
    rounds: int = 0

    def route_for(self, router: str) -> Route | None:
        """The RIB route at ``router`` (None for local originations —
        the underlying IGP/connected route forwards those)."""
        candidate = self.best.get(router)
        if candidate is None or candidate.is_local:
            return None
        return Route(
            prefix=self.prefix,
            protocol="bgp",
            admin_distance=(
                ADMIN_DISTANCE_EBGP if candidate.ebgp else ADMIN_DISTANCE_IBGP
            ),
            metric=0,
            next_hops=frozenset(),  # resolved against the IGP at FIB build
            bgp=candidate.bundle,
            bgp_next_hop=candidate.next_hop,
            learned_from=candidate.from_peer,
        )
