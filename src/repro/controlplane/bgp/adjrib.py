"""Stage 2 — adj-RIB: what a session exports and how the peer files it.

The export half (``export_route``) runs the sender's advertisement
rules — split horizon, iBGP non-reflection, export policy, eBGP
prepend and next-hop rewrite; the import half (``import_route``) runs
the receiver's acceptance rules — AS-path loop drop, eBGP local-pref
reset, import policy.  Full iBGP mesh semantics: iBGP-learned routes
are not re-advertised to iBGP peers; no route reflectors or
confederations.  local-pref resets to 100 at eBGP ingress; the sender
prepends its ASN on eBGP export; receivers drop paths containing
their own ASN.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.config.routemap import AttributeBundle
from repro.net.addr import IPv4Address

from repro.controlplane.bgp.policy import apply_policy
from repro.controlplane.bgp.types import BgpCandidate, BgpSession

if TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.core.snapshot import Snapshot


def _loopback_ip(snapshot: "Snapshot", router: str) -> IPv4Address | None:
    device = snapshot.topology.router(router)
    loopback = device.interfaces.get("lo0")
    return loopback.address if loopback is not None else None


def export_route(
    snapshot: "Snapshot",
    session: BgpSession,
    best: BgpCandidate | None,
) -> tuple[AttributeBundle, IPv4Address] | None:
    """What ``session.local`` advertises to ``session.peer``."""
    if best is None:
        return None
    if best.from_peer == session.peer:
        return None  # split horizon toward the sender
    if not session.ebgp and not best.is_local and not best.ebgp:
        return None  # iBGP-learned routes are not reflected to iBGP peers
    config = snapshot.configs[session.local]
    bgp = config.bgp
    assert bgp is not None
    bundle = best.bundle
    neighbor = bgp.neighbors.get(session.peer_ip)
    if neighbor is not None and neighbor.export_policy is not None:
        transformed = apply_policy(config, neighbor.export_policy, bundle)
        if transformed is None:
            return None
        bundle = transformed
    if session.ebgp:
        bundle = bundle.prepend(bgp.asn)
        next_hop = session.local_ip
    else:
        if best.is_local or (neighbor is not None and neighbor.next_hop_self):
            next_hop = _loopback_ip(snapshot, session.local) or session.local_ip
        else:
            assert best.next_hop is not None
            next_hop = best.next_hop
    return bundle, next_hop


def import_route(
    snapshot: "Snapshot",
    session: BgpSession,
    message: tuple[AttributeBundle, IPv4Address] | None,
) -> BgpCandidate | None:
    """How ``session.peer`` files what ``session.local`` sent."""
    if message is None:
        return None
    bundle, next_hop = message
    receiver = session.peer
    config = snapshot.configs[receiver]
    bgp = config.bgp
    assert bgp is not None
    if bgp.asn in bundle.as_path:
        return None  # AS-path loop
    if session.ebgp:
        bundle = replace(bundle, local_pref=100)
    # The receiver's neighbor entry for this session is keyed by the
    # sender's address.
    neighbor = bgp.neighbors.get(session.local_ip)
    if neighbor is not None and neighbor.import_policy is not None:
        transformed = apply_policy(config, neighbor.import_policy, bundle)
        if transformed is None:
            return None
        bundle = transformed
    sender_bgp = snapshot.configs[session.local].bgp
    router_id = sender_bgp.router_id.value if sender_bgp is not None else 0
    return BgpCandidate(
        bundle=bundle,
        next_hop=next_hop,
        from_peer=session.local,
        ebgp=session.ebgp,
        peer_router_id=router_id,
    )
