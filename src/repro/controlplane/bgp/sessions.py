"""Stage 1 — session discovery: which directed sessions exist and are up.

Model notes (documented simplifications):

- Sessions require both sides to point at each other's interface
  addresses with matching ASNs; direct (shared-subnet) sessions need
  the link up, loopback sessions need IGP reachability (judged later,
  by the solver, against the live IGP).

Two discovery entry points share one validation core:

- :func:`discover_sessions` — the full scan, used at initial
  convergence and by the full-rescan recompute path;
- :func:`discover_sessions_for` — the scoped scan, which re-validates
  only the directed ``(local, peer)`` router pairs a batch of edits
  could have affected (the ``bgp_sessions`` DirtySet axis).

Both return canonically sorted lists (:attr:`BgpSession.sort_key`), so
``kept + rediscovered`` from the scoped path is byte-identical to a
full rescan whenever the dirty pair set is sound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.config.routing import BgpNeighborConfig
from repro.controlplane.connected import AddressIndex, interface_is_up
from repro.net.addr import IPv4Address

from repro.controlplane.bgp.types import BgpSession

if TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.controlplane.connected import AddressEntry
    from repro.core.snapshot import Snapshot

SessionPair = tuple[str, str]


def _validate_direction(
    snapshot: "Snapshot",
    address_index: AddressIndex,
    local: str,
    peer_ip: IPv4Address,
    neighbor: BgpNeighborConfig,
) -> BgpSession | None:
    """The session object for direction ``local -> owner(peer_ip)``,
    or None when the direction is structurally invalid or down.

    A direction exists when: the local config names ``peer_ip`` with
    the peer's true ASN; the peer owns ``peer_ip``; the peer config
    names one of the local router's addresses back with the local ASN;
    and the underlying connectivity is up (for direct sessions —
    loopback sessions are filtered later against the IGP).
    """
    config = snapshot.configs.get(local)
    if config is None or config.bgp is None:
        return None
    owner = address_index.owner(peer_ip)
    if owner is None or owner.router == local:
        return None
    peer_config = snapshot.configs.get(owner.router)
    if peer_config is None or peer_config.bgp is None:
        return None
    if peer_config.bgp.asn != neighbor.remote_asn:
        return None
    # Find the reverse entry pointing back at us.
    local_ip: IPv4Address | None = None
    for candidate_ip, reverse in peer_config.bgp.neighbors.items():
        reverse_owner = address_index.owner(candidate_ip)
        if (
            reverse_owner is not None
            and reverse_owner.router == local
            and reverse.remote_asn == config.bgp.asn
        ):
            local_ip = candidate_ip
            break
    if local_ip is None:
        return None
    direct, up = _session_transport(snapshot, local, peer_ip, owner)
    if direct and not up:
        return None
    return BgpSession(
        local=local,
        peer=owner.router,
        local_ip=local_ip,
        peer_ip=peer_ip,
        ebgp=config.bgp.asn != neighbor.remote_asn
        or config.bgp.asn != peer_config.bgp.asn,
        direct=direct,
    )


def discover_sessions(
    snapshot: "Snapshot", address_index: AddressIndex
) -> list[BgpSession]:
    """All *up* directed sessions (one object per direction), in
    canonical order."""
    sessions: list[BgpSession] = []
    for local, config in snapshot.configs.items():
        if config.bgp is None:
            continue
        for peer_ip, neighbor in config.bgp.neighbors.items():
            session = _validate_direction(
                snapshot, address_index, local, peer_ip, neighbor
            )
            if session is not None:
                sessions.append(session)
    sessions.sort(key=lambda s: s.sort_key)
    return sessions


def discover_sessions_for(
    snapshot: "Snapshot",
    address_index: AddressIndex,
    pairs: Iterable[SessionPair],
) -> list[BgpSession]:
    """Re-validate only the directed router ``pairs``, in canonical
    order.

    The scoped counterpart of :func:`discover_sessions`: for each
    ``(local, peer)`` pair, every neighbor entry of ``local`` whose
    address is owned by ``peer`` is put through the same validation.
    Sessions between router pairs outside ``pairs`` are untouched by
    construction, so ``kept + rediscovered`` equals a full rescan when
    the pair set covers everything the batch could have affected.
    """
    sessions: list[BgpSession] = []
    for local, peer in sorted(set(pairs)):
        config = snapshot.configs.get(local)
        if config is None or config.bgp is None:
            continue
        for peer_ip, neighbor in config.bgp.neighbors.items():
            owner = address_index.owner(peer_ip)
            if owner is None or owner.router != peer:
                continue
            session = _validate_direction(
                snapshot, address_index, local, peer_ip, neighbor
            )
            if session is not None:
                sessions.append(session)
    sessions.sort(key=lambda s: s.sort_key)
    return sessions


def session_scan_size(snapshot: "Snapshot") -> int:
    """How many directed neighbor entries a full rescan validates —
    the work-count denominator for the ``bgp_sessions_rescanned``
    counter."""
    total = 0
    for config in snapshot.configs.values():
        if config.bgp is not None:
            total += len(config.bgp.neighbors)
    return total


def pairs_involving(
    snapshot: "Snapshot", address_index: AddressIndex, router: str
) -> set[SessionPair]:
    """Every directed pair a configured neighbor entry could form with
    ``router`` on either end.

    The sound fallback for edits whose session blast radius cannot be
    narrowed to one adjacency (e.g. flapping an interface that is not
    on a point-to-point link): scan the configured neighbor entries —
    far cheaper than full validation — and dirty every pair touching
    the router.
    """
    pairs: set[SessionPair] = set()
    for local, config in snapshot.configs.items():
        if config.bgp is None:
            continue
        for peer_ip in config.bgp.neighbors:
            owner = address_index.owner(peer_ip)
            if owner is None or owner.router == local:
                continue
            if local == router or owner.router == router:
                pairs.add((local, owner.router))
                pairs.add((owner.router, local))
    return pairs


def _session_transport(
    snapshot: "Snapshot",
    local: str,
    peer_ip: IPv4Address,
    owner: "AddressEntry",
) -> tuple[bool, bool]:
    """(direct?, up?) for the transport under a session direction."""
    topology = snapshot.topology
    for interface, subnet in topology.connected_subnets(local):
        if subnet.contains_address(peer_ip):
            up = interface_is_up(
                snapshot, local, interface.name
            ) and interface_is_up(snapshot, owner.router, owner.interface)
            return True, up
    return False, True  # multihop; liveness judged against the IGP
