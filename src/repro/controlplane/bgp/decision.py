"""Stage 4 — best path: the standard BGP decision process.

Decision order: weight (local origination) > local-pref > AS-path
length > MED (always compared) > eBGP-over-iBGP > IGP cost to next
hop > peer router-id.  No BGP multipath.
"""

from __future__ import annotations

from repro.controlplane.bgp.types import INFINITY, BgpCandidate, IgpView

DecisionKey = tuple[int, int, int, int, int, float, int, str]


def best_path(
    router: str,
    candidates: dict[str, BgpCandidate],
    igp: IgpView,
) -> BgpCandidate | None:
    """The standard BGP decision process over usable candidates."""
    usable: list[tuple[DecisionKey, BgpCandidate]] = []
    for candidate in candidates.values():
        if candidate.is_local:
            igp_cost = 0.0
        else:
            assert candidate.next_hop is not None
            igp_cost = igp.cost_to(router, candidate.next_hop)
            if igp_cost == INFINITY:
                continue  # next hop unreachable: candidate unusable
        key: DecisionKey = (
            0 if candidate.is_local else 1,  # weight: local wins
            -candidate.bundle.local_pref,
            len(candidate.bundle.as_path),
            candidate.bundle.med,
            0 if (candidate.is_local or candidate.ebgp) else 1,
            igp_cost,
            candidate.peer_router_id,
            candidate.from_peer or "",
        )
        usable.append((key, candidate))
    if not usable:
        return None
    return min(usable, key=lambda pair: pair[0])[1]
