"""The per-prefix fixpoint driver over stages 2–4.

The solver is deliberately *per prefix*: BGP's computation for
different prefixes is independent given the IGP, so the full
simulation solves every originated prefix and the incremental path
re-solves only dirty ones — both through the same
:func:`solve_prefix`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config.routemap import AttributeBundle
from repro.controlplane.connected import interface_is_up
from repro.net.addr import Prefix

from repro.controlplane.bgp.adjrib import export_route, import_route
from repro.controlplane.bgp.decision import best_path
from repro.controlplane.bgp.types import (
    INFINITY,
    LOCAL_KEY,
    BgpCandidate,
    BgpConvergenceError,
    BgpPrefixSolution,
    BgpSession,
    IgpView,
)

if TYPE_CHECKING:  # pragma: no cover - layering guard
    from repro.core.snapshot import Snapshot


def solve_prefix(
    snapshot: "Snapshot",
    prefix: Prefix,
    origins: dict[str, AttributeBundle],
    sessions: list[BgpSession],
    igp: IgpView,
    max_rounds: int | None = None,
) -> BgpPrefixSolution:
    """Propagate one prefix to a fixpoint over the session graph.

    ``origins`` maps originating routers to their initial attribute
    bundles.  Loopback (multihop) sessions whose endpoints cannot
    reach each other through the IGP are skipped.
    """
    live_sessions = [
        s
        for s in sessions
        if s.direct
        or (
            igp.cost_to(s.local, s.peer_ip) < INFINITY
            and igp.cost_to(s.peer, s.local_ip) < INFINITY
        )
    ]
    routers = {s.local for s in live_sessions} | {s.peer for s in live_sessions}
    routers.update(origins)
    if max_rounds is None:
        max_rounds = 2 * max(len(routers), 1) + 10

    candidates: dict[str, dict[str, BgpCandidate]] = {r: {} for r in routers}
    for router, bundle in origins.items():
        candidates.setdefault(router, {})[LOCAL_KEY] = BgpCandidate(
            bundle=bundle,
            next_hop=None,
            from_peer=None,
            ebgp=False,
            peer_router_id=0,
        )
    best: dict[str, BgpCandidate | None] = {
        router: best_path(router, candidates[router], igp)
        for router in candidates
    }

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise BgpConvergenceError(
                f"BGP did not converge for {prefix} within {max_rounds} rounds"
            )
        changed_routers: set[str] = set()
        for session in live_sessions:
            message = export_route(snapshot, session, best.get(session.local))
            candidate = import_route(snapshot, session, message)
            receiver = candidates.setdefault(session.peer, {})
            previous = receiver.get(session.local)
            if candidate is None:
                if previous is not None:
                    del receiver[session.local]
                    changed_routers.add(session.peer)
            elif previous != candidate:
                receiver[session.local] = candidate
                changed_routers.add(session.peer)
        if not changed_routers:
            break
        for router in changed_routers:
            best[router] = best_path(router, candidates[router], igp)

    final_best = {router: b for router, b in best.items() if b is not None}
    adj_in = {
        (receiver, sender): candidate
        for receiver, per_receiver in candidates.items()
        for sender, candidate in per_receiver.items()
        if sender != LOCAL_KEY
    }
    return BgpPrefixSolution(
        prefix=prefix, best=final_best, adj_in=adj_in, rounds=rounds
    )


def collect_origins(
    snapshot: "Snapshot",
) -> dict[Prefix, dict[str, AttributeBundle]]:
    """Per-prefix origination map from ``network`` statements and
    connected redistribution."""
    origins: dict[Prefix, dict[str, AttributeBundle]] = {}

    def originate(router: str, prefix: Prefix, asn: int) -> None:
        origins.setdefault(prefix, {})[router] = AttributeBundle(
            prefix=prefix, as_path=(), local_pref=100, origin_asn=asn
        )

    for router, config in snapshot.configs.items():
        if config.bgp is None:
            continue
        for prefix in config.bgp.originated:
            originate(router, prefix, config.bgp.asn)
        if config.bgp.redistribute_connected:
            for interface, subnet in snapshot.topology.connected_subnets(
                router
            ):
                if interface_is_up(snapshot, router, interface.name):
                    originate(router, subnet, config.bgp.asn)
    return origins
