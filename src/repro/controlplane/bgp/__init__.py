"""BGP as an explicit pipeline: sessions, adj-RIB, policy, best path.

Historically one 400-line module, now a package of stage modules
mirroring the PR-5 analyzer architecture — each stage owns one
DirtySet axis (``bgp_sessions``, ``bgp_adj_rib``, ``bgp_policy``,
``bgp_prefixes``) and is consumed by a dedicated
``RecomputePipeline`` sub-stage:

- :mod:`~repro.controlplane.bgp.sessions` — directed session
  discovery (full and pair-scoped), canonical ordering;
- :mod:`~repro.controlplane.bgp.adjrib` — per-session export/import
  evaluation;
- :mod:`~repro.controlplane.bgp.policy` — route-map application and
  the policy-to-session scoping index;
- :mod:`~repro.controlplane.bgp.decision` — the standard decision
  process;
- :mod:`~repro.controlplane.bgp.solver` — the per-prefix fixpoint
  driver over stages 2–4, plus origination collection.

The public surface (this module) is unchanged from the monolith, so
existing imports keep working.
"""

from repro.controlplane.bgp.adjrib import export_route, import_route
from repro.controlplane.bgp.decision import best_path
from repro.controlplane.bgp.policy import apply_policy, neighbors_using_map
from repro.controlplane.bgp.sessions import (
    SessionPair,
    discover_sessions,
    discover_sessions_for,
    pairs_involving,
    session_scan_size,
)
from repro.controlplane.bgp.solver import collect_origins, solve_prefix
from repro.controlplane.bgp.types import (
    INFINITY,
    LOCAL_KEY,
    BgpCandidate,
    BgpConvergenceError,
    BgpPrefixSolution,
    BgpSession,
    IgpView,
)

# Pre-split private names, kept importable for callers and tests that
# reached into the monolith (the decision/adj-RIB internals are the
# same functions under their stage names).
_decision = best_path
_export = export_route
_import = import_route

__all__ = [
    "INFINITY",
    "LOCAL_KEY",
    "BgpCandidate",
    "BgpConvergenceError",
    "BgpPrefixSolution",
    "BgpSession",
    "IgpView",
    "SessionPair",
    "apply_policy",
    "best_path",
    "collect_origins",
    "discover_sessions",
    "discover_sessions_for",
    "export_route",
    "import_route",
    "neighbors_using_map",
    "pairs_involving",
    "session_scan_size",
    "solve_prefix",
]
