"""Dynamic single-source shortest paths (incremental SPF).

One :class:`DynamicSpf` instance maintains the SPF tree of one source
router over one area graph, updating distances and the ECMP parent DAG
in place when an edge's cost changes, appears, or disappears — the
Ramalingam–Reps family of algorithms.  Only the *affected region*
(DAG descendants whose every shortest path used the changed edge) is
re-settled with a bounded Dijkstra; everything else is untouched.

The OSPF incremental layer keeps one instance per (source, area) and
asks :meth:`DynamicSpf.affected_by` first, so sources whose trees
never used a failed edge pay O(1) per change.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.controlplane.rib import NextHop
from repro.controlplane.spf import INFINITY, SpfGraph, dijkstra, first_hops


class DynamicSpf:
    """Incrementally maintained SPF state for one source."""

    def __init__(self, graph: SpfGraph, source: str) -> None:
        self.graph = graph
        self.source = source
        self.dist, self.parents = dijkstra(graph, source)
        self._fh: dict[str, frozenset[NextHop]] | None = None
        self._children: dict[str, set[str]] | None = None

    # -- queries -----------------------------------------------------------

    def distance(self, node: str) -> float:
        """Shortest distance to ``node`` (infinity if unreachable)."""
        return self.dist.get(node, INFINITY)

    def first_hops(self) -> dict[str, frozenset[NextHop]]:
        """Per-destination ECMP next hops (cached until next update)."""
        if self._fh is None:
            self._fh = first_hops(self.graph, self.source, self.dist, self.parents)
        return self._fh

    def affected_by(self, u: str, v: str) -> bool:
        """True if edge (u, v) lies on some current shortest path."""
        du = self.dist.get(u)
        dv = self.dist.get(v)
        if du is None or dv is None:
            return False
        return du + self.graph.cost(u, v) == dv and u in self.parents.get(v, ())

    # -- updates -----------------------------------------------------------

    def edge_increased(self, u: str, v: str) -> set[str]:
        """React to edge (u, v) having grown more expensive or vanished.

        The graph must already reflect the new cost (or the edge's
        removal).  Returns the set of nodes whose distance or parent
        set changed.
        """
        if v == self.source:
            return set()
        du = self.dist.get(u)
        if du is None or u not in self.parents.get(v, ()):
            return set()  # edge was not on the SPF DAG of this source
        new_cost = self.graph.cost(u, v)
        if du + new_cost == self.dist.get(v, INFINITY):
            return set()  # cost change kept the equality (no-op)
        self._invalidate_caches()
        self.parents[v].discard(u)
        self._children_map()  # ensure children exist before surgery
        self._children_of(u).discard(v)
        if self.parents[v]:
            return {v}  # alternate equal-cost parents remain
        orphans, trimmed = self._collect_orphans(v)
        changed = self._resettle(orphans)
        return changed | trimmed | {v}

    def edge_decreased(self, u: str, v: str) -> set[str]:
        """React to edge (u, v) having appeared or grown cheaper.

        The graph must already reflect the new cost.  Returns the set
        of nodes whose distance or parent set changed.
        """
        if v == self.source:
            return set()
        du = self.dist.get(u)
        if du is None:
            return set()
        new_cost = self.graph.cost(u, v)
        candidate = du + new_cost
        current = self.dist.get(v, INFINITY)
        if candidate > current:
            return set()
        if candidate == current:
            if u in self.parents.get(v, ()):
                return set()
            self._invalidate_caches()
            self.parents.setdefault(v, set()).add(u)
            self._children_map()
            self._children_of(u).add(v)
            return {v}
        # Strict improvement: propagate decreases from v outward.
        self._invalidate_caches()
        changed: set[str] = set()
        heap: list[tuple[float, str]] = [(candidate, v)]
        improved: dict[str, float] = {v: candidate}
        while heap:
            d, node = heapq.heappop(heap)
            if d > improved.get(node, INFINITY):
                continue
            if d > self.dist.get(node, INFINITY):
                continue
            self._set_distance(node, d)
            changed.add(node)
            for succ, cost in self.graph.successors(node).items():
                if succ == self.source:
                    continue
                next_d = d + cost
                best = min(
                    improved.get(succ, INFINITY), self.dist.get(succ, INFINITY)
                )
                if next_d < best:
                    improved[succ] = next_d
                    heapq.heappush(heap, (next_d, succ))
                elif next_d == self.dist.get(succ, INFINITY):
                    if node not in self.parents.get(succ, ()):
                        self.parents.setdefault(succ, set()).add(node)
                        self._children_of(node).add(succ)
                        changed.add(succ)
        return changed

    def invalidate_first_hops(self) -> None:
        """Drop the cached first-hop map (edge attachments changed)."""
        self._fh = None

    def rebuild(self) -> None:
        """Fall back to a from-scratch Dijkstra (used by tests)."""
        self.dist, self.parents = dijkstra(self.graph, self.source)
        self._invalidate_caches()
        self._children = None

    def clone(self, graph: SpfGraph) -> "DynamicSpf":
        """An independent copy of the settled tree over ``graph``.

        ``graph`` must be a structural copy of this instance's graph
        (the caller clones graphs once per area and threads them in so
        all sources of an area keep sharing one graph object).  Caches
        start cold; they are recomputed on demand.
        """
        duplicate = object.__new__(DynamicSpf)
        duplicate.graph = graph
        duplicate.source = self.source
        duplicate.dist = dict(self.dist)
        duplicate.parents = {node: set(p) for node, p in self.parents.items()}
        duplicate._fh = None
        duplicate._children = None
        return duplicate

    # -- internals -----------------------------------------------------------

    def _invalidate_caches(self) -> None:
        self._fh = None

    def _children_map(self) -> dict[str, set[str]]:
        if self._children is None:
            children: dict[str, set[str]] = {}
            for node, parent_set in self.parents.items():
                for parent in parent_set:
                    children.setdefault(parent, set()).add(node)
            self._children = children
        return self._children

    def _children_of(self, node: str) -> set[str]:
        return self._children_map().setdefault(node, set())

    def _collect_orphans(self, start: str) -> tuple[set[str], set[str]]:
        """Nodes whose *every* shortest path ran through ``start``.

        Walks the children DAG, removing orphaned parent links; a child
        left with no parents joins the orphan set.  Returns
        ``(orphans, trimmed)`` where ``trimmed`` are nodes that lost a
        parent but kept others (their distance stands, their ECMP
        next-hop set may not).
        """
        orphans = {start}
        trimmed: set[str] = set()
        queue = [start]
        while queue:
            node = queue.pop()
            for child in list(self._children_of(node)):
                self._children_of(node).discard(child)
                self.parents[child].discard(node)
                if not self.parents[child]:
                    if child not in orphans:
                        orphans.add(child)
                        queue.append(child)
                else:
                    trimmed.add(child)
        return orphans, trimmed - orphans

    def _resettle(self, region: Iterable[str]) -> set[str]:
        """Re-run Dijkstra restricted to the orphaned region.

        Seeds come from edges entering the region from settled nodes
        outside it; nodes that no seed or relaxation reaches become
        unreachable.
        """
        region = set(region)
        old_dist = {node: self.dist.get(node, INFINITY) for node in region}
        for node in region:
            self.dist.pop(node, None)
            self.parents[node] = set()
        heap: list[tuple[float, str]] = []
        best: dict[str, float] = {}
        for node in region:
            seed = INFINITY
            for pred in self.graph.predecessors(node):
                if pred in region:
                    continue
                pred_dist = self.dist.get(pred)
                if pred_dist is None:
                    continue
                seed = min(seed, pred_dist + self.graph.cost(pred, node))
            if seed < INFINITY:
                best[node] = seed
                heapq.heappush(heap, (seed, node))
        settled: set[str] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled or d > best.get(node, INFINITY):
                continue
            settled.add(node)
            self._set_distance(node, d)
            for succ, cost in self.graph.successors(node).items():
                if succ not in region or succ in settled:
                    continue
                candidate = d + cost
                if candidate < best.get(succ, INFINITY):
                    best[succ] = candidate
                    heapq.heappush(heap, (candidate, succ))
        changed = set()
        for node in region:
            if self.dist.get(node, INFINITY) != old_dist[node]:
                changed.add(node)
            elif node in self.dist:
                changed.add(node)  # distance kept but parents rebuilt
        # Re-settled nodes may now tie into shortest paths of nodes
        # outside the region (their old parent links were severed
        # during orphan collection); restore the equal-cost links.
        for node in region:
            node_dist = self.dist.get(node)
            if node_dist is None:
                continue
            for succ, cost in self.graph.successors(node).items():
                if succ in region:
                    continue
                if node_dist + cost == self.dist.get(succ, INFINITY):
                    if node not in self.parents.get(succ, ()):
                        self.parents.setdefault(succ, set()).add(node)
                        self._children_of(node).add(succ)
                        changed.add(succ)
        return changed

    def _set_distance(self, node: str, distance: float) -> None:
        """Install a settled distance and rebuild the node's parents."""
        self.dist[node] = distance
        old_parents = self.parents.get(node, set())
        new_parents = set()
        for pred in self.graph.predecessors(node):
            pred_dist = self.dist.get(pred)
            if pred_dist is not None and pred_dist + self.graph.cost(pred, node) == distance:
                new_parents.add(pred)
        if self._children is not None:
            for parent in old_parents - new_parents:
                self._children.setdefault(parent, set()).discard(node)
            for parent in new_parents - old_parents:
                self._children.setdefault(parent, set()).add(node)
        self.parents[node] = new_parents
