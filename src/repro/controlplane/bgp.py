"""BGP: session discovery, per-prefix path-vector solving, decisions.

The solver is deliberately *per prefix*: BGP's computation for
different prefixes is independent given the IGP, so the full
simulation solves every originated prefix and the incremental path
re-solves only dirty ones — both through the same
:func:`solve_prefix`.

Model notes (documented simplifications):

- Sessions require both sides to point at each other's interface
  addresses with matching ASNs; direct (shared-subnet) sessions need
  the link up, loopback sessions need IGP reachability.
- Full iBGP mesh semantics: iBGP-learned routes are not re-advertised
  to iBGP peers; no route reflectors or confederations.
- Decision process: weight (local origination) > local-pref > AS-path
  length > MED (always compared) > eBGP-over-iBGP > IGP cost to next
  hop > peer router-id.  No BGP multipath.
- local-pref resets to 100 at eBGP ingress; the sender prepends its
  ASN on eBGP export; receivers drop paths containing their own ASN.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol

from repro.config.routemap import AttributeBundle
from repro.config.routing import (
    ADMIN_DISTANCE_EBGP,
    ADMIN_DISTANCE_IBGP,
    BgpNeighborConfig,
)
from repro.controlplane.connected import AddressIndex, interface_is_up
from repro.controlplane.rib import Route
from repro.net.addr import IPv4Address, Prefix

LOCAL_KEY = "__local__"


class BgpConvergenceError(RuntimeError):
    """Raised when per-prefix propagation fails to reach a fixpoint."""


class IgpView(Protocol):
    """What BGP needs from the IGP/static/connected layers."""

    def cost_to(self, router: str, address: IPv4Address) -> float:
        """Metric of the best non-BGP route covering ``address``
        (infinity when unreachable)."""
        ...


@dataclass(frozen=True)
class BgpSession:
    """One configured, structurally valid BGP session."""

    local: str
    peer: str
    local_ip: IPv4Address
    peer_ip: IPv4Address
    ebgp: bool
    direct: bool  # peer address on a shared subnet (vs loopback/multihop)

    @property
    def key(self) -> tuple[str, str]:
        return (self.local, self.peer)


def _neighbor_config(config, peer_ip: IPv4Address) -> BgpNeighborConfig | None:
    if config is None or config.bgp is None:
        return None
    return config.bgp.neighbors.get(peer_ip)


def discover_sessions(snapshot, address_index: AddressIndex) -> list[BgpSession]:
    """All *up* directed sessions (one object per direction).

    A session direction local -> peer exists when: the local config
    names peer_ip with the peer's true ASN; the peer owns peer_ip; the
    peer config names one of the local router's addresses back with
    the local ASN; and the underlying connectivity is up (for direct
    sessions — loopback sessions are filtered later against the IGP).
    """
    sessions: list[BgpSession] = []
    for local, config in snapshot.configs.items():
        if config.bgp is None:
            continue
        for peer_ip, neighbor in config.bgp.neighbors.items():
            owner = address_index.owner(peer_ip)
            if owner is None or owner.router == local:
                continue
            peer_config = snapshot.configs.get(owner.router)
            if peer_config is None or peer_config.bgp is None:
                continue
            if peer_config.bgp.asn != neighbor.remote_asn:
                continue
            # Find the reverse entry pointing back at us.
            local_ip: IPv4Address | None = None
            for candidate_ip, reverse in peer_config.bgp.neighbors.items():
                reverse_owner = address_index.owner(candidate_ip)
                if (
                    reverse_owner is not None
                    and reverse_owner.router == local
                    and reverse.remote_asn == config.bgp.asn
                ):
                    local_ip = candidate_ip
                    break
            if local_ip is None:
                continue
            direct, up = _session_transport(snapshot, local, peer_ip, owner)
            if direct and not up:
                continue
            sessions.append(
                BgpSession(
                    local=local,
                    peer=owner.router,
                    local_ip=local_ip,
                    peer_ip=peer_ip,
                    ebgp=config.bgp.asn != neighbor.remote_asn
                    or config.bgp.asn != peer_config.bgp.asn,
                    direct=direct,
                )
            )
    return sessions


def _session_transport(snapshot, local: str, peer_ip: IPv4Address, owner):
    """(direct?, up?) for the transport under a session direction."""
    topology = snapshot.topology
    for interface, subnet in topology.connected_subnets(local):
        if subnet.contains_address(peer_ip):
            up = (
                interface_is_up(snapshot, local, interface.name)
                and interface_is_up(snapshot, owner.router, owner.interface)
            )
            return True, up
    return False, True  # multihop; liveness judged against the IGP


@dataclass(frozen=True)
class BgpCandidate:
    """One path for a prefix in a router's adj-RIB-in (or local)."""

    bundle: AttributeBundle
    next_hop: IPv4Address | None  # None only for local originations
    from_peer: str | None  # advertising router; None for local
    ebgp: bool
    peer_router_id: int

    @property
    def is_local(self) -> bool:
        return self.from_peer is None


@dataclass
class BgpPrefixSolution:
    """Converged state for one prefix."""

    prefix: Prefix
    best: dict[str, BgpCandidate]
    adj_in: dict[tuple[str, str], BgpCandidate]
    rounds: int = 0

    def route_for(self, router: str) -> Route | None:
        """The RIB route at ``router`` (None for local originations —
        the underlying IGP/connected route forwards those)."""
        candidate = self.best.get(router)
        if candidate is None or candidate.is_local:
            return None
        return Route(
            prefix=self.prefix,
            protocol="bgp",
            admin_distance=(
                ADMIN_DISTANCE_EBGP if candidate.ebgp else ADMIN_DISTANCE_IBGP
            ),
            metric=0,
            next_hops=frozenset(),  # resolved against the IGP at FIB build
            bgp=candidate.bundle,
            bgp_next_hop=candidate.next_hop,
            learned_from=candidate.from_peer,
        )


INFINITY = float("inf")


def _loopback_ip(snapshot, router: str) -> IPv4Address | None:
    device = snapshot.topology.router(router)
    loopback = device.interfaces.get("lo0")
    return loopback.address if loopback is not None else None


def _export(
    snapshot,
    session: BgpSession,
    best: BgpCandidate | None,
) -> tuple[AttributeBundle, IPv4Address] | None:
    """What ``session.local`` advertises to ``session.peer``."""
    if best is None:
        return None
    if best.from_peer == session.peer:
        return None  # split horizon toward the sender
    if not session.ebgp and not best.is_local and not best.ebgp:
        return None  # iBGP-learned routes are not reflected to iBGP peers
    config = snapshot.configs[session.local]
    bgp = config.bgp
    assert bgp is not None
    bundle = best.bundle
    neighbor = bgp.neighbors.get(session.peer_ip)
    if neighbor is not None and neighbor.export_policy is not None:
        route_map = config.route_maps.get(neighbor.export_policy)
        if route_map is None:
            return None  # dangling policy name blocks the session
        transformed = route_map.apply(bundle, config.prefix_lists, bgp.asn)
        if transformed is None:
            return None
        bundle = transformed
    if session.ebgp:
        bundle = bundle.prepend(bgp.asn)
        next_hop = session.local_ip
    else:
        if best.is_local or (neighbor is not None and neighbor.next_hop_self):
            next_hop = _loopback_ip(snapshot, session.local) or session.local_ip
        else:
            assert best.next_hop is not None
            next_hop = best.next_hop
    return bundle, next_hop


def _import(
    snapshot,
    session: BgpSession,
    message: tuple[AttributeBundle, IPv4Address] | None,
) -> BgpCandidate | None:
    """How ``session.peer`` files what ``session.local`` sent."""
    if message is None:
        return None
    bundle, next_hop = message
    receiver = session.peer
    config = snapshot.configs[receiver]
    bgp = config.bgp
    assert bgp is not None
    if bgp.asn in bundle.as_path:
        return None  # AS-path loop
    if session.ebgp:
        bundle = replace(bundle, local_pref=100)
    # The receiver's neighbor entry for this session is keyed by the
    # sender's address.
    neighbor = bgp.neighbors.get(session.local_ip)
    if neighbor is not None and neighbor.import_policy is not None:
        route_map = config.route_maps.get(neighbor.import_policy)
        if route_map is None:
            return None
        transformed = route_map.apply(bundle, config.prefix_lists, bgp.asn)
        if transformed is None:
            return None
        bundle = transformed
    sender_bgp = snapshot.configs[session.local].bgp
    router_id = sender_bgp.router_id.value if sender_bgp is not None else 0
    return BgpCandidate(
        bundle=bundle,
        next_hop=next_hop,
        from_peer=session.local,
        ebgp=session.ebgp,
        peer_router_id=router_id,
    )


def _decision(
    router: str,
    candidates: dict[str, BgpCandidate],
    igp: IgpView,
) -> BgpCandidate | None:
    """The standard BGP decision process over usable candidates."""
    usable: list[tuple[tuple, BgpCandidate]] = []
    for candidate in candidates.values():
        if candidate.is_local:
            igp_cost = 0.0
        else:
            assert candidate.next_hop is not None
            igp_cost = igp.cost_to(router, candidate.next_hop)
            if igp_cost == INFINITY:
                continue  # next hop unreachable: candidate unusable
        key = (
            0 if candidate.is_local else 1,  # weight: local wins
            -candidate.bundle.local_pref,
            len(candidate.bundle.as_path),
            candidate.bundle.med,
            0 if (candidate.is_local or candidate.ebgp) else 1,
            igp_cost,
            candidate.peer_router_id,
            candidate.from_peer or "",
        )
        usable.append((key, candidate))
    if not usable:
        return None
    return min(usable, key=lambda pair: pair[0])[1]


def solve_prefix(
    snapshot,
    prefix: Prefix,
    origins: dict[str, AttributeBundle],
    sessions: list[BgpSession],
    igp: IgpView,
    max_rounds: int | None = None,
) -> BgpPrefixSolution:
    """Propagate one prefix to a fixpoint over the session graph.

    ``origins`` maps originating routers to their initial attribute
    bundles.  Loopback (multihop) sessions whose endpoints cannot
    reach each other through the IGP are skipped.
    """
    live_sessions = [
        s
        for s in sessions
        if s.direct
        or (
            igp.cost_to(s.local, s.peer_ip) < INFINITY
            and igp.cost_to(s.peer, s.local_ip) < INFINITY
        )
    ]
    routers = {s.local for s in live_sessions} | {s.peer for s in live_sessions}
    routers.update(origins)
    if max_rounds is None:
        max_rounds = 2 * max(len(routers), 1) + 10

    candidates: dict[str, dict[str, BgpCandidate]] = {r: {} for r in routers}
    for router, bundle in origins.items():
        candidates.setdefault(router, {})[LOCAL_KEY] = BgpCandidate(
            bundle=bundle,
            next_hop=None,
            from_peer=None,
            ebgp=False,
            peer_router_id=0,
        )
    best: dict[str, BgpCandidate | None] = {
        router: _decision(router, candidates[router], igp) for router in candidates
    }

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise BgpConvergenceError(
                f"BGP did not converge for {prefix} within {max_rounds} rounds"
            )
        changed_routers: set[str] = set()
        for session in live_sessions:
            message = _export(snapshot, session, best.get(session.local))
            candidate = _import(snapshot, session, message)
            receiver = candidates.setdefault(session.peer, {})
            previous = receiver.get(session.local)
            if candidate is None:
                if previous is not None:
                    del receiver[session.local]
                    changed_routers.add(session.peer)
            elif previous != candidate:
                receiver[session.local] = candidate
                changed_routers.add(session.peer)
        if not changed_routers:
            break
        for router in changed_routers:
            best[router] = _decision(router, candidates[router], igp)

    final_best = {router: b for router, b in best.items() if b is not None}
    adj_in = {
        (receiver, sender): candidate
        for receiver, per_receiver in candidates.items()
        for sender, candidate in per_receiver.items()
        if sender != LOCAL_KEY
    }
    return BgpPrefixSolution(prefix=prefix, best=final_best, adj_in=adj_in, rounds=rounds)


def collect_origins(snapshot) -> dict[Prefix, dict[str, AttributeBundle]]:
    """Per-prefix origination map from ``network`` statements and
    connected redistribution."""
    origins: dict[Prefix, dict[str, AttributeBundle]] = {}

    def originate(router: str, prefix: Prefix, asn: int) -> None:
        origins.setdefault(prefix, {})[router] = AttributeBundle(
            prefix=prefix, as_path=(), local_pref=100, origin_asn=asn
        )

    for router, config in snapshot.configs.items():
        if config.bgp is None:
            continue
        for prefix in config.bgp.originated:
            originate(router, prefix, config.bgp.asn)
        if config.bgp.redistribute_connected:
            for interface, subnet in snapshot.topology.connected_subnets(router):
                if interface_is_up(snapshot, router, interface.name):
                    originate(router, subnet, config.bgp.asn)
    return origins
