"""Control-plane computation.

Two paths compute the same routing state:

- :mod:`~repro.controlplane.simulation` — full convergence from
  scratch (the Batfish-style baseline): connected + static + OSPF
  (per-area SPF with ECMP, inter-area via the backbone) + BGP
  (per-prefix path-vector with the standard decision process and
  route-map policies), merged into per-router RIBs and FIBs.
- :mod:`~repro.controlplane.incremental` — the differential path: a
  change produces dirty sets (affected SPF sources, dirty BGP
  prefixes), which are re-solved in place; everything else is reused.
  The output is a RIB/FIB *delta* plus the updated state.

Both share the data structures in :mod:`~repro.controlplane.rib` and
the solvers in :mod:`~repro.controlplane.spf`,
:mod:`~repro.controlplane.ospf` and :mod:`~repro.controlplane.bgp`,
so agreement between them is checked tuple-for-tuple in the tests.
"""

from typing import Any

from repro.controlplane.rib import NextHop, Rib, Route

__all__ = ["NetworkState", "NextHop", "Rib", "Route", "simulate"]

_LAZY = {
    "NetworkState": ("repro.controlplane.simulation", "NetworkState"),
    "simulate": ("repro.controlplane.simulation", "simulate"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.controlplane' has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value
