"""Shortest-path-first computation with equal-cost multipath.

The OSPF layer reduces each area to a weighted digraph
(:class:`SpfGraph`): one logical edge per ordered router pair, with
cost = the cheapest parallel link, and the set of physical next hops
achieving that cost attached to the edge.  :func:`dijkstra` returns
distances and the shortest-path DAG (ECMP parents);
:func:`first_hops` folds the DAG into per-destination next-hop sets.

The dynamic (incremental) counterpart lives in
:mod:`~repro.controlplane.ispf`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.controlplane.rib import NextHop

INFINITY = float("inf")


@dataclass
class SpfGraph:
    """A weighted digraph with physical next-hop attachments.

    ``adjacency[u][v]`` is the logical edge cost; ``attachments[(u,
    v)]`` lists the :class:`NextHop` values (interface, next-hop IP,
    neighbor) that realize the logical edge at that cost.
    """

    adjacency: dict[str, dict[str, int]] = field(default_factory=dict)
    attachments: dict[tuple[str, str], frozenset[NextHop]] = field(
        default_factory=dict
    )
    _reverse: dict[str, set[str]] = field(default_factory=dict)

    def add_node(self, node: str) -> None:
        """Ensure the node exists (possibly isolated)."""
        self.adjacency.setdefault(node, {})
        self._reverse.setdefault(node, set())

    def set_edge(
        self, u: str, v: str, cost: int, next_hops: frozenset[NextHop]
    ) -> None:
        """Insert or replace the logical edge u -> v."""
        self.add_node(u)
        self.add_node(v)
        self.adjacency[u][v] = cost
        self.attachments[(u, v)] = next_hops
        self._reverse[v].add(u)

    def remove_edge(self, u: str, v: str) -> None:
        """Delete the logical edge u -> v if present."""
        if u in self.adjacency and v in self.adjacency[u]:
            del self.adjacency[u][v]
            self.attachments.pop((u, v), None)
            self._reverse[v].discard(u)

    def cost(self, u: str, v: str) -> float:
        """Edge cost or infinity."""
        return self.adjacency.get(u, {}).get(v, INFINITY)

    def successors(self, u: str) -> dict[str, int]:
        """Outgoing edges of u."""
        return self.adjacency.get(u, {})

    def predecessors(self, v: str) -> set[str]:
        """Nodes with an edge into v."""
        return self._reverse.get(v, set())

    def nodes(self) -> list[str]:
        """All nodes."""
        return list(self.adjacency)

    def num_edges(self) -> int:
        """Logical edge count."""
        return sum(len(out) for out in self.adjacency.values())

    def copy(self) -> "SpfGraph":
        """An independent structural copy."""
        duplicate = SpfGraph()
        for u, out in self.adjacency.items():
            duplicate.add_node(u)
            for v, cost in out.items():
                duplicate.set_edge(u, v, cost, self.attachments[(u, v)])
        return duplicate


def dijkstra(
    graph: SpfGraph, source: str
) -> tuple[dict[str, float], dict[str, set[str]]]:
    """Single-source shortest paths with ECMP parent sets.

    Returns ``(dist, parents)``; unreachable nodes are absent from
    ``dist``.  ``parents[v]`` is the set of predecessors on *some*
    shortest path to v (empty for the source).
    """
    dist: dict[str, float] = {source: 0}
    parents: dict[str, set[str]] = {source: set()}
    heap: list[tuple[float, str]] = [(0, source)]
    settled: set[str] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, cost in graph.successors(u).items():
            candidate = d + cost
            known = dist.get(v, INFINITY)
            if candidate < known:
                dist[v] = candidate
                parents[v] = {u}
                heapq.heappush(heap, (candidate, v))
            elif candidate == known and v not in settled:
                parents[v].add(u)
    return dist, parents


def first_hops(
    graph: SpfGraph,
    source: str,
    dist: dict[str, float],
    parents: dict[str, set[str]],
) -> dict[str, frozenset[NextHop]]:
    """Per-destination ECMP next hops, folded over the SPF DAG.

    ``fh[v]`` is the union of ``fh[p]`` over parents p, except that a
    parent equal to the source contributes the physical attachments of
    the edge (source, v) directly.
    """
    order = sorted((d, node) for node, d in dist.items())
    fh: dict[str, frozenset[NextHop]] = {source: frozenset()}
    for _, node in order:
        if node == source:
            continue
        hops: set[NextHop] = set()
        for parent in parents.get(node, ()):
            if parent == source:
                hops.update(graph.attachments.get((source, node), frozenset()))
            else:
                hops.update(fh.get(parent, frozenset()))
        fh[node] = frozenset(hops)
    return fh
