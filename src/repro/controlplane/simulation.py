"""Full control-plane convergence (the Batfish-style baseline).

:func:`simulate` computes, from scratch, everything a snapshot
implies: connected/static routes, OSPF (per-area SPF), BGP (per-prefix
path-vector), per-router RIBs, resolved FIBs, and the atom-decomposed
data plane.  The result — a :class:`NetworkState` — is also the warm
state the incremental analyzer starts from and maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.controlplane.bgp import (
    BgpPrefixSolution,
    BgpSession,
    collect_origins,
    discover_sessions,
    solve_prefix,
)
from repro.controlplane.connected import (
    AddressIndex,
    connected_routes,
    static_routes,
)
from repro.controlplane.ospf import (
    OspfState,
    backbone_advertisements,
    backbone_totals,
    build_ospf_state,
    ospf_routes_for_source,
)
from repro.controlplane.rib import NextHop, Rib, Route
from repro.dataplane.fib import Fib, FibEntry
from repro.dataplane.forwarding import DataPlane
from repro.dataplane.reachability import ReachabilityIndex
from repro.net.addr import IPv4Address, Prefix

INFINITY = float("inf")


class IgpAdapter:
    """LPM view over the non-BGP routes, used by BGP and FIB building.

    Backed by one trie per router containing the best non-BGP route
    per prefix; rebuilt cheaply per router when the IGP layer changes.
    """

    def __init__(self) -> None:
        self._tries: dict[str, Fib] = {}
        self._routes: dict[str, dict[Prefix, Route]] = {}

    def set_router_routes(self, router: str, routes: dict[Prefix, Route]) -> None:
        """Replace one router's IGP route set."""
        trie = Fib(router)
        for prefix, route in routes.items():
            trie.install(FibEntry(prefix, route.next_hops, route.protocol))
        self._tries[router] = trie
        self._routes[router] = dict(routes)

    def snapshot_router(self, router: str) -> tuple | None:
        """Opaque per-router state for an undo journal (None if absent).

        ``set_router_routes`` replaces rather than mutates the per
        router structures, so stashing references is sufficient.
        """
        if router not in self._tries:
            return None
        return (self._tries[router], self._routes[router])

    def restore_router(self, router: str, saved: tuple | None) -> None:
        """Reinstate a state captured by :meth:`snapshot_router`."""
        if saved is None:
            self._tries.pop(router, None)
            self._routes.pop(router, None)
        else:
            self._tries[router], self._routes[router] = saved

    def covering_route(self, router: str, address: IPv4Address) -> Route | None:
        """The best non-BGP route covering ``address`` at ``router``."""
        trie = self._tries.get(router)
        if trie is None:
            return None
        entry = trie.lookup(int(address))
        if entry is None:
            return None
        return self._routes[router].get(entry.prefix)

    def cost_to(self, router: str, address: IPv4Address) -> float:
        """IGP metric to ``address`` (infinity when uncovered)."""
        route = self.covering_route(router, address)
        if route is None or all(nh.drop for nh in route.next_hops):
            return INFINITY
        return float(route.metric)

    def resolve(self, router: str, address: IPv4Address, address_index: AddressIndex) -> frozenset[NextHop]:
        """Concrete next hops toward ``address``.

        A connected covering route yields a direct hop carrying the
        target address itself; otherwise the covering route's hops are
        reused (one level of recursion, as in real RIB resolution for
        directly-resolvable protocols).
        """
        route = self.covering_route(router, address)
        if route is None:
            return frozenset()
        if route.protocol == "connected":
            owner = address_index.owner(address)
            hops = set()
            for hop in route.next_hops:
                hops.add(
                    NextHop(
                        interface=hop.interface,
                        ip=address,
                        neighbor=owner.router if owner is not None else None,
                    )
                )
            return frozenset(hops)
        return route.next_hops


@dataclass
class NetworkState:
    """Converged control and data plane of one snapshot."""

    snapshot: object
    address_index: AddressIndex
    ospf_state: OspfState
    ospf_routes: dict[str, dict[Prefix, Route]]
    igp: IgpAdapter
    bgp_sessions: list[BgpSession]
    bgp_solutions: dict[Prefix, BgpPrefixSolution]
    ribs: dict[str, Rib]
    fibs: dict[str, Fib]
    dataplane: DataPlane
    reachability: ReachabilityIndex
    # Cached inter-area summaries (None when single-area).
    backbone_adverts: dict | None = None
    backbone_totals_map: dict | None = None
    connected: dict[str, dict[Prefix, Route]] = field(default_factory=dict)
    statics: dict[str, dict[Prefix, Route]] = field(default_factory=dict)

    def routers(self) -> list[str]:
        return self.snapshot.topology.router_names()


def build_fib_entry(
    state_igp: IgpAdapter,
    address_index: AddressIndex,
    router: str,
    route: Route,
) -> FibEntry | None:
    """Resolve one best route into a FIB entry (None if unresolvable)."""
    if route.protocol != "bgp":
        return FibEntry(route.prefix, route.next_hops, route.protocol)
    assert route.bgp_next_hop is not None
    hops = state_igp.resolve(router, route.bgp_next_hop, address_index)
    live = frozenset(h for h in hops if not h.drop)
    if not live:
        return None
    return FibEntry(route.prefix, live, "bgp")


def build_router_fib(
    router: str,
    rib: Rib,
    igp: IgpAdapter,
    address_index: AddressIndex,
) -> Fib:
    """The FIB implied by a RIB's best routes."""
    fib = Fib(router)
    for prefix, best in rib.best_routes().items():
        if best is None:
            continue
        entry = build_fib_entry(igp, address_index, router, best)
        if entry is not None:
            fib.install(entry)
    return fib


def simulate(snapshot, precompute_reachability: bool = False) -> NetworkState:
    """Fully converge a snapshot.

    With ``precompute_reachability`` the per-atom reachability of every
    atom is materialized (what the snapshot-diff baseline needs);
    otherwise atoms are analysed lazily on first query.
    """
    address_index = AddressIndex(snapshot)
    routers = snapshot.topology.router_names()

    connected_map: dict[str, dict[Prefix, Route]] = {}
    static_map: dict[str, dict[Prefix, Route]] = {}
    for router in routers:
        connected_map[router] = connected_routes(snapshot, router)
        static_map[router] = static_routes(
            snapshot, router, connected_map[router], address_index
        )

    ospf_state = build_ospf_state(snapshot)
    multi_area = len(ospf_state.areas()) > 1
    adverts = backbone_advertisements(ospf_state) if multi_area else None
    totals = backbone_totals(ospf_state, adverts) if multi_area and adverts is not None else None
    ospf_routes: dict[str, dict[Prefix, Route]] = {}
    for router in routers:
        ospf_routes[router] = ospf_routes_for_source(
            ospf_state, router, adverts, totals
        )

    igp = IgpAdapter()
    ribs: dict[str, Rib] = {}
    for router in routers:
        rib = Rib(router)
        for route in connected_map[router].values():
            rib.install(route)
        for route in static_map[router].values():
            rib.install(route)
        for route in ospf_routes[router].values():
            rib.install(route)
        ribs[router] = rib
        igp_best = {
            prefix: route
            for prefix, route in rib.best_routes().items()
            if route is not None
        }
        igp.set_router_routes(router, igp_best)

    sessions = discover_sessions(snapshot, address_index)
    origins = collect_origins(snapshot)
    solutions: dict[Prefix, BgpPrefixSolution] = {}
    for prefix in sorted(origins):
        solutions[prefix] = solve_prefix(
            snapshot, prefix, origins[prefix], sessions, igp
        )
    for prefix, solution in solutions.items():
        for router in routers:
            route = solution.route_for(router)
            if route is not None:
                ribs[router].install(route)

    fibs: dict[str, Fib] = {
        router: build_router_fib(router, ribs[router], igp, address_index)
        for router in routers
    }

    dataplane = DataPlane(snapshot, fibs)
    reachability = ReachabilityIndex(dataplane)
    if precompute_reachability:
        reachability.compute_all()

    return NetworkState(
        snapshot=snapshot,
        address_index=address_index,
        ospf_state=ospf_state,
        ospf_routes=ospf_routes,
        igp=igp,
        bgp_sessions=sessions,
        bgp_solutions=solutions,
        ribs=ribs,
        fibs=fibs,
        dataplane=dataplane,
        reachability=reachability,
        backbone_adverts=adverts,
        backbone_totals_map=totals,
        connected=connected_map,
        statics=static_map,
    )
