"""OSPF: per-area SPF with ECMP and backbone-based inter-area routing.

The model follows the standard two-level OSPF hierarchy:

- Within one area, adjacencies form across enabled links whose two
  interfaces both run OSPF (non-passive) in that area; each area is
  reduced to an :class:`~repro.controlplane.spf.SpfGraph` and every
  router keeps a :class:`~repro.controlplane.ispf.DynamicSpf` per area
  it belongs to (the incremental layer updates these in place).
- Every OSPF interface (including passive ones) advertises its subnet
  into its area at the interface cost.
- Area border routers (members of area 0 plus another area) summarise
  their non-backbone areas into the backbone and the backbone into
  their non-backbone areas.  Intra-area routes are preferred over
  inter-area routes for the same prefix, per the OSPF route
  preference rule.

Simplifications vs. a full ABR implementation (documented in
DESIGN.md): no virtual links, no area ranges/suppression, no NSSA/stub
areas, and inter-area ECMP ties are broken across ABRs by total cost
only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.routing import ADMIN_DISTANCE_OSPF
from repro.controlplane.ispf import DynamicSpf
from repro.controlplane.rib import NextHop, Route
from repro.controlplane.spf import INFINITY, SpfGraph
from repro.net.addr import Prefix

BACKBONE = 0


class OspfConfigError(ValueError):
    """Raised for invalid OSPF configuration (e.g. cost < 1)."""


@dataclass
class OspfState:
    """Everything OSPF derives from a snapshot.

    - ``graphs``: per-area adjacency graphs.
    - ``advertised``: area -> router -> {prefix: advertised cost}.
    - ``membership``: router -> set of areas it has interfaces in.
    - ``spf``: (router, area) -> incremental SPF instance.
    """

    graphs: dict[int, SpfGraph] = field(default_factory=dict)
    advertised: dict[int, dict[str, dict[Prefix, int]]] = field(default_factory=dict)
    membership: dict[str, set[int]] = field(default_factory=dict)
    spf: dict[tuple[str, int], DynamicSpf] = field(default_factory=dict)

    def areas(self) -> list[int]:
        """All areas, backbone first."""
        return sorted(self.graphs)

    def area_routers(self, area: int) -> list[str]:
        """Routers with interfaces in ``area``."""
        return [r for r, areas in self.membership.items() if area in areas]

    def abrs(self, area: int) -> list[str]:
        """Area border routers between ``area`` and the backbone."""
        if area == BACKBONE:
            return []
        return [
            r
            for r, areas in self.membership.items()
            if area in areas and BACKBONE in areas
        ]

    def spf_for(self, router: str, area: int) -> DynamicSpf:
        """The (lazily created) incremental SPF of one source."""
        key = (router, area)
        instance = self.spf.get(key)
        if instance is None:
            instance = DynamicSpf(self.graphs[area], router)
            self.spf[key] = instance
        return instance

    def clone(self) -> "OspfState":
        """An independent structural copy (the fork checkpoint).

        Graphs are copied once per area and every cloned SPF instance
        is rewired onto its area's copy, preserving the aliasing the
        incremental layer relies on.  Route/NextHop/Prefix values are
        shared — they are immutable.
        """
        graphs = {area: graph.copy() for area, graph in self.graphs.items()}
        return OspfState(
            graphs=graphs,
            advertised={
                area: {router: dict(costs) for router, costs in owners.items()}
                for area, owners in self.advertised.items()
            },
            membership={router: set(a) for router, a in self.membership.items()},
            spf={
                (router, area): spf.clone(graphs[area])
                for (router, area), spf in self.spf.items()
            },
        )


def _interface_participates(snapshot, router: str, interface_name: str) -> bool:
    """True if the interface is administratively and physically up."""
    from repro.controlplane.connected import interface_is_up

    return interface_is_up(snapshot, router, interface_name)


def build_ospf_state(snapshot) -> OspfState:
    """Derive graphs, advertisements, and memberships from a snapshot.

    SPF instances are created lazily by :meth:`OspfState.spf_for`.
    """
    state = OspfState()
    topology = snapshot.topology

    # Pass 1: memberships, advertised prefixes, area node sets.
    for router_name, config in snapshot.configs.items():
        if config.ospf is None:
            continue
        device = topology.router(router_name)
        for interface_name, settings in config.ospf.interfaces.items():
            if not settings.enabled:
                continue
            if settings.cost < 1:
                raise OspfConfigError(
                    f"{router_name}[{interface_name}]: OSPF cost must be >= 1"
                )
            if interface_name not in device.interfaces:
                continue  # config references a non-existent interface
            if not _interface_participates(snapshot, router_name, interface_name):
                continue
            area = settings.area
            state.membership.setdefault(router_name, set()).add(area)
            graph = state.graphs.setdefault(area, SpfGraph())
            graph.add_node(router_name)
            subnet = device.interfaces[interface_name].subnet
            if subnet is not None:
                per_router = state.advertised.setdefault(area, {}).setdefault(
                    router_name, {}
                )
                existing = per_router.get(subnet)
                if existing is None or settings.cost < existing:
                    per_router[subnet] = settings.cost

    # Pass 2: adjacencies (both interfaces active, same area, neither
    # passive); parallel links collapse onto the cheapest cost with
    # ECMP attachments.
    best: dict[tuple[int, str, str], tuple[int, set[NextHop]]] = {}
    for link in topology.links():
        sides = (link.side_a, link.side_b)
        for (local, local_if), (peer, peer_if) in (sides, sides[::-1]):
            settings = _active_ospf_settings(snapshot, local, local_if)
            peer_settings = _active_ospf_settings(snapshot, peer, peer_if)
            if settings is None or peer_settings is None:
                continue
            if settings.passive or peer_settings.passive:
                continue
            if settings.area != peer_settings.area:
                continue
            peer_address = topology.router(peer).interface(peer_if).address
            hop = NextHop(interface=local_if, ip=peer_address, neighbor=peer)
            key = (settings.area, local, peer)
            cost = settings.cost
            entry = best.get(key)
            if entry is None or cost < entry[0]:
                best[key] = (cost, {hop})
            elif cost == entry[0]:
                entry[1].add(hop)
    for (area, local, peer), (cost, hops) in best.items():
        state.graphs[area].set_edge(local, peer, cost, frozenset(hops))
    return state


def _active_ospf_settings(snapshot, router: str, interface_name: str):
    """The interface's OSPF settings if it actively participates."""
    config = snapshot.configs.get(router)
    if config is None or config.ospf is None:
        return None
    settings = config.ospf.interfaces.get(interface_name)
    if settings is None or not settings.enabled:
        return None
    if not _interface_participates(snapshot, router, interface_name):
        return None
    return settings


@dataclass(frozen=True)
class _Candidate:
    """One intra/inter candidate for a prefix at a source router."""

    metric: float
    intra: bool
    next_hops: frozenset[NextHop]


def backbone_advertisements(state: OspfState) -> dict[str, dict[Prefix, float]]:
    """Per-ABR summaries of non-backbone areas into area 0.

    ``result[abr][prefix]`` is the ABR's best intra-area cost to the
    prefix inside its non-backbone areas.
    """
    adverts: dict[str, dict[Prefix, float]] = {}
    for area in state.areas():
        if area == BACKBONE:
            continue
        owners = state.advertised.get(area, {})
        for abr in state.abrs(area):
            spf = state.spf_for(abr, area)
            for owner, prefixes in owners.items():
                if owner == abr:
                    distance = 0.0
                else:
                    distance = spf.distance(owner)
                if distance == INFINITY:
                    continue
                for prefix, cost in prefixes.items():
                    total = distance + cost
                    per_abr = adverts.setdefault(abr, {})
                    if total < per_abr.get(prefix, INFINITY):
                        per_abr[prefix] = total
    return adverts


def backbone_totals(
    state: OspfState, adverts: dict[str, dict[Prefix, float]]
) -> dict[str, dict[Prefix, float]]:
    """Best cost from each backbone router to every prefix, via the
    backbone: intra-area-0 prefixes plus other ABRs' summaries."""
    totals: dict[str, dict[Prefix, float]] = {}
    if BACKBONE not in state.graphs:
        return totals
    area0_owners = state.advertised.get(BACKBONE, {})
    for router in state.area_routers(BACKBONE):
        spf = state.spf_for(router, BACKBONE)
        per_router: dict[Prefix, float] = {}
        for owner, prefixes in area0_owners.items():
            distance = 0.0 if owner == router else spf.distance(owner)
            if distance == INFINITY:
                continue
            for prefix, cost in prefixes.items():
                total = distance + cost
                if total < per_router.get(prefix, INFINITY):
                    per_router[prefix] = total
        for abr, summaries in adverts.items():
            distance = 0.0 if abr == router else spf.distance(abr)
            if distance == INFINITY:
                continue
            for prefix, cost in summaries.items():
                total = distance + cost
                if total < per_router.get(prefix, INFINITY):
                    per_router[prefix] = total
        totals[router] = per_router
    return totals


def ospf_routes_for_source(
    state: OspfState,
    source: str,
    adverts: dict[str, dict[Prefix, float]] | None = None,
    totals: dict[str, dict[Prefix, float]] | None = None,
    only_prefixes: set[Prefix] | None = None,
) -> dict[Prefix, Route]:
    """All OSPF routes installed at ``source``.

    ``adverts``/``totals`` (from :func:`backbone_advertisements` and
    :func:`backbone_totals`) may be passed in to share work across
    sources; they are computed on demand otherwise.  With
    ``only_prefixes`` the result is restricted to those prefixes (the
    incremental layer's targeted recompute).
    """
    areas = state.membership.get(source, set())
    if not areas:
        return {}
    candidates: dict[Prefix, list[_Candidate]] = {}

    def offer(prefix: Prefix, metric: float, intra: bool, hops: frozenset[NextHop]) -> None:
        if not hops:
            return
        if only_prefixes is not None and prefix not in only_prefixes:
            return
        candidates.setdefault(prefix, []).append(_Candidate(metric, intra, hops))

    # Intra-area routes for every area the source belongs to.
    for area in areas:
        spf = state.spf_for(source, area)
        fh = spf.first_hops()
        for owner, prefixes in state.advertised.get(area, {}).items():
            if owner == source:
                continue
            distance = spf.distance(owner)
            if distance == INFINITY:
                continue
            hops = fh.get(owner, frozenset())
            for prefix, cost in prefixes.items():
                offer(prefix, distance + cost, True, hops)

    multi_area = len(state.areas()) > 1
    if multi_area:
        if adverts is None:
            adverts = backbone_advertisements(state)
        if BACKBONE in areas:
            # Backbone members read other areas through ABR summaries.
            spf = state.spf_for(source, BACKBONE)
            fh = spf.first_hops()
            for abr, summaries in adverts.items():
                if abr == source:
                    continue
                distance = spf.distance(abr)
                if distance == INFINITY:
                    continue
                hops = fh.get(abr, frozenset())
                for prefix, cost in summaries.items():
                    offer(prefix, distance + cost, False, hops)
        non_backbone = [a for a in areas if a != BACKBONE]
        if non_backbone and BACKBONE not in areas:
            # Internal routers reach everything else via their ABRs.
            if totals is None:
                totals = backbone_totals(state, adverts)
            for area in non_backbone:
                spf = state.spf_for(source, area)
                fh = spf.first_hops()
                for abr in state.abrs(area):
                    if abr == source:
                        continue
                    distance = spf.distance(abr)
                    if distance == INFINITY:
                        continue
                    hops = fh.get(abr, frozenset())
                    for prefix, cost in totals.get(abr, {}).items():
                        offer(prefix, distance + cost, False, hops)

    routes: dict[Prefix, Route] = {}
    for prefix, offers in candidates.items():
        intra_offers = [c for c in offers if c.intra]
        pool = intra_offers or offers
        best_metric = min(c.metric for c in pool)
        hops: set[NextHop] = set()
        for candidate in pool:
            if candidate.metric == best_metric:
                hops.update(candidate.next_hops)
        routes[prefix] = Route(
            prefix=prefix,
            protocol="ospf",
            admin_distance=ADMIN_DISTANCE_OSPF,
            metric=int(best_metric),
            next_hops=frozenset(hops),
        )
    return routes
