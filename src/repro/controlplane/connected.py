"""Connected and static routes, plus the global address index.

Connected routes come straight from enabled, numbered interfaces.
Static routes resolve their targets against connected subnets: a
next-hop static needs a connected subnet containing the next-hop
address; an interface static forwards onto that interface's link.
Unresolvable statics are not installed (matching router behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.routing import ADMIN_DISTANCE_CONNECTED, StaticRouteConfig
from repro.controlplane.rib import DROP_NEXT_HOP, NextHop, Route
from repro.net.addr import IPv4Address, Prefix


@dataclass(frozen=True)
class AddressEntry:
    """Where one address lives: (router, interface)."""

    router: str
    interface: str


class AddressIndex:
    """Global map from interface address -> owning interface.

    Used to resolve BGP peer addresses and static next hops to the
    routers that own them.
    """

    def __init__(self, snapshot) -> None:
        self._by_address: dict[int, AddressEntry] = {}
        for router in snapshot.topology.routers():
            for interface in router.interfaces.values():
                if interface.address is not None:
                    self._by_address[interface.address.value] = AddressEntry(
                        router.name, interface.name
                    )

    def owner(self, address: IPv4Address | int) -> AddressEntry | None:
        """The interface carrying ``address``, if any."""
        return self._by_address.get(int(address))


def interface_is_up(snapshot, router: str, interface_name: str) -> bool:
    """Operational state of an interface.

    Requires: administratively enabled locally, the link (if cabled)
    enabled, and the far-side interface administratively enabled too —
    an admin-down interface drops carrier for both ends of the cable.
    """
    config = snapshot.configs.get(router)
    if config is not None and not config.interface_config(interface_name).enabled:
        return False
    link = snapshot.topology.link_of_interface(router, interface_name)
    if link is None:
        return True
    if not snapshot.topology.link_enabled(link):
        return False
    peer_router, peer_interface = link.other_end(router)
    peer_config = snapshot.configs.get(peer_router)
    if peer_config is not None and not peer_config.interface_config(peer_interface).enabled:
        return False
    return True


def connected_routes(snapshot, router: str) -> dict[Prefix, Route]:
    """Connected routes of one router (subnets of up interfaces)."""
    routes: dict[Prefix, Route] = {}
    for interface, subnet in snapshot.topology.connected_subnets(router):
        if not interface_is_up(snapshot, router, interface.name):
            continue
        hop = NextHop(interface=interface.name)
        existing = routes.get(subnet)
        if existing is not None:
            hops = existing.next_hops | {hop}
            routes[subnet] = existing.with_next_hops(frozenset(hops))
        else:
            routes[subnet] = Route(
                prefix=subnet,
                protocol="connected",
                admin_distance=ADMIN_DISTANCE_CONNECTED,
                metric=0,
                next_hops=frozenset({hop}),
            )
    return routes


def resolve_static(
    snapshot,
    router: str,
    static: StaticRouteConfig,
    connected: dict[Prefix, Route],
    address_index: AddressIndex,
) -> Route | None:
    """Turn one static route config into an installable route.

    Returns None when the target cannot be resolved (down interface,
    next hop outside every connected subnet).
    """
    if static.drop:
        return Route(
            prefix=static.prefix,
            protocol="static",
            admin_distance=static.admin_distance,
            metric=0,
            next_hops=frozenset({DROP_NEXT_HOP}),
        )
    if static.interface is not None:
        if static.interface not in snapshot.topology.router(router).interfaces:
            return None
        if not interface_is_up(snapshot, router, static.interface):
            return None
        peer = snapshot.topology.interface_peer(router, static.interface)
        hop = NextHop(
            interface=static.interface,
            ip=peer.address if peer is not None else None,
            neighbor=peer.router if peer is not None else None,
        )
        return Route(
            prefix=static.prefix,
            protocol="static",
            admin_distance=static.admin_distance,
            metric=0,
            next_hops=frozenset({hop}),
        )
    # Next-hop static: find a connected subnet containing the address,
    # longest prefix first.
    assert static.next_hop is not None
    target = static.next_hop.value
    best: Prefix | None = None
    for subnet in connected:
        if subnet.contains_address(target):
            if best is None or subnet.length > best.length:
                best = subnet
    if best is None:
        return None
    out_interfaces = connected[best].next_hops
    owner = address_index.owner(static.next_hop)
    hops = set()
    for attached in out_interfaces:
        hops.add(
            NextHop(
                interface=attached.interface,
                ip=static.next_hop,
                neighbor=owner.router if owner is not None else None,
            )
        )
    return Route(
        prefix=static.prefix,
        protocol="static",
        admin_distance=static.admin_distance,
        metric=0,
        next_hops=frozenset(hops),
    )


def static_routes(
    snapshot,
    router: str,
    connected: dict[Prefix, Route],
    address_index: AddressIndex,
) -> dict[Prefix, Route]:
    """All installable static routes of one router.

    When several statics cover the same prefix, the lowest admin
    distance wins (floating statics).
    """
    routes: dict[Prefix, Route] = {}
    config = snapshot.configs.get(router)
    if config is None:
        return routes
    for static in config.static_routes:
        route = resolve_static(snapshot, router, static, connected, address_index)
        if route is None:
            continue
        existing = routes.get(route.prefix)
        if existing is None or route.admin_distance < existing.admin_distance:
            routes[route.prefix] = route
    return routes
