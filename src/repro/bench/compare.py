"""The perf regression gate: current smoke pulse vs committed baseline.

``benchmarks/smoke.py`` regenerates ``BENCH_smoke.json`` on every CI
run.  This module turns the artifact-only upload into a gate: compare
the fresh document against the baseline committed at the repo root
and fail the build when any shared entry's median regresses past the
threshold (default >30%).

Rules of the comparison (see :func:`compare`):

- entries are matched by ``name``; entries new in the current run
  pass (there is nothing to regress against), entries that vanished
  fail (a silently dropped benchmark is how regressions hide);
- baselines below the noise floor (default 1ms) are skipped — at
  that scale scheduler jitter swamps any real signal;
- the gate reads medians, so a single outlier sample cannot fail it.

Usage (exits 1 on regression)::

    PYTHONPATH=src python -m repro.bench.compare \
        BENCH_smoke.json /tmp/fresh.json --threshold 1.3
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping

DEFAULT_THRESHOLD = 1.3  # fail on >30% median regression
DEFAULT_NOISE_FLOOR_S = 0.001


def compare(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = DEFAULT_NOISE_FLOOR_S,
) -> list[str]:
    """Regression messages comparing two smoke documents; empty = pass."""
    problems: list[str] = []
    baseline_entries = {
        entry["name"]: entry for entry in baseline["results"]
    }
    current_entries = {entry["name"]: entry for entry in current["results"]}

    for name in sorted(set(baseline_entries) - set(current_entries)):
        problems.append(
            f"{name}: present in the baseline but missing from the "
            f"current run"
        )

    for name in sorted(set(baseline_entries) & set(current_entries)):
        base_median = float(baseline_entries[name]["median_s"])
        current_median = float(current_entries[name]["median_s"])
        if base_median < noise_floor_s:
            continue
        ratio = current_median / base_median
        if ratio > threshold:
            problems.append(
                f"{name}: median {current_median * 1e3:.2f}ms is "
                f"{ratio:.2f}x the baseline "
                f"{base_median * 1e3:.2f}ms (threshold {threshold:.2f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when the smoke benchmark regressed vs baseline"
    )
    parser.add_argument("baseline", help="committed BENCH_smoke.json")
    parser.add_argument("current", help="freshly regenerated document")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="fail when current/baseline median exceeds this "
        "(default: 1.3 = 30%% regression)",
    )
    parser.add_argument(
        "--noise-floor-ms", type=float,
        default=DEFAULT_NOISE_FLOOR_S * 1e3,
        help="skip entries whose baseline median is below this "
        "(default: 1ms)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)
    problems = compare(
        baseline,
        current,
        threshold=args.threshold,
        noise_floor_s=args.noise_floor_ms / 1e3,
    )
    shared = {e["name"] for e in baseline["results"]} & {
        e["name"] for e in current["results"]
    }
    if problems:
        print("perf regression gate FAILED:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"perf regression gate passed ({len(shared)} entries compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
