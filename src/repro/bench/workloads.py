"""Shared benchmark workloads.

One definition of the measured change batches, imported by both the
pytest benchmarks (``benchmarks/test_bench_batch.py``) and the CI
performance pulse (``benchmarks/smoke.py``), so the tracked numbers
always measure the same shape the acceptance assertions enforce.
"""

from __future__ import annotations

from repro.core.change import Change, SetOspfCost
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import Scenario


def _ospf_cost_sites(
    scenario: Scenario, count: int
) -> list[tuple[str, str, int]]:
    """The first ``count`` active OSPF interfaces (router, iface,
    current cost), in deterministic config order."""
    sites: list[tuple[str, str, int]] = []
    for router in sorted(scenario.snapshot.configs):
        config = scenario.snapshot.configs[router]
        if config.ospf is None:
            continue
        for interface, settings in sorted(config.ospf.interfaces.items()):
            if settings.enabled and not settings.passive:
                sites.append((router, interface, settings.cost))
                break
        if len(sites) == count:
            break
    return sites


def _cost_changes(
    sites: list[tuple[str, str, int]], bump: int
) -> tuple[list[Change], list[Change]]:
    """(bumped, restored) OSPF cost changes over ``sites``."""
    costs = [
        Change.of(
            SetOspfCost(r, i, c + bump), label=f"{r}[{i}] cost {c + bump}"
        )
        for r, i, c in sites
    ]
    uncosts = [
        Change.of(SetOspfCost(r, i, c), label=f"{r}[{i}] cost {c}")
        for r, i, c in sites
    ]
    return costs, uncosts


def mixed_k8_batch(
    scenario: Scenario, seed: int = 77
) -> tuple[list[Change], list[Change]]:
    """A k=8 mixed change batch and its exact inverse (for restores).

    2 link failures + 4 static-route adds + 2 OSPF cost changes — the
    PR-5 acceptance-criteria shape, spanning IGP topology, local
    routes, and SPF cost dirt.
    """
    gen = ChangeGenerator(scenario, seed=seed)
    down1, up1 = gen.random_link_failure()
    down2, up2 = gen.random_link_failure()
    while down2.label == down1.label:
        down2, up2 = gen.random_link_failure()
    statics = [gen.random_static_route() for _ in range(4)]
    costs, uncosts = _cost_changes(_ospf_cost_sites(scenario, 2), 13)
    changes = [down1, down2] + [add for add, _ in statics] + costs
    recovery = list(
        reversed(uncosts + [remove for _, remove in statics] + [up2, up1])
    )
    assert sum(len(change.edits) for change in changes) == 8
    return changes, recovery


def wan_k8_batch(
    scenario: Scenario, seed: int = 78
) -> tuple[list[Change], list[Change]]:
    """A k=8 WAN change batch and its exact inverse (for restores).

    1 BGP session teardown + 1 dual-homed local-pref flip (2 edits) +
    2 prefix announces + 1 link failure + 2 OSPF cost changes — every
    BGP dirty-set axis (sessions, adj-RIB, prefixes) plus IGP dirt
    that feeds the fingerprint/liveness diffs, converging in one pass.

    Requires a BGP scenario with customers and a dual-homed customer
    (:func:`~repro.workloads.scenarios.internet2_bgp`).
    """
    gen = ChangeGenerator(scenario, seed=seed)
    teardown, restore = gen.random_session_flap()
    flip = gen.dual_homed_pref_flip(100, 200)
    unflip = gen.dual_homed_pref_flip(200, 100)
    announce1, withdraw1 = gen.random_prefix_flap()
    announce2, withdraw2 = gen.random_prefix_flap()
    down, up = gen.random_link_failure()
    costs, uncosts = _cost_changes(_ospf_cost_sites(scenario, 2), 13)
    changes = [teardown, flip, announce1, announce2, down] + costs
    recovery = list(
        reversed(
            uncosts + [up, withdraw2, withdraw1, unflip, restore]
        )
    )
    assert sum(len(change.edits) for change in changes) == 8
    return changes, recovery
