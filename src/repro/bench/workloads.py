"""Shared benchmark workloads.

One definition of the measured change batches, imported by both the
pytest benchmarks (``benchmarks/test_bench_batch.py``) and the CI
performance pulse (``benchmarks/smoke.py``), so the tracked numbers
always measure the same shape the acceptance assertions enforce.
"""

from __future__ import annotations

from repro.core.change import Change, SetOspfCost
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import Scenario


def mixed_k8_batch(
    scenario: Scenario, seed: int = 77
) -> tuple[list[Change], list[Change]]:
    """A k=8 mixed change batch and its exact inverse (for restores).

    2 link failures + 4 static-route adds + 2 OSPF cost changes — the
    PR-5 acceptance-criteria shape, spanning IGP topology, local
    routes, and SPF cost dirt.
    """
    gen = ChangeGenerator(scenario, seed=seed)
    down1, up1 = gen.random_link_failure()
    down2, up2 = gen.random_link_failure()
    while down2.label == down1.label:
        down2, up2 = gen.random_link_failure()
    statics = [gen.random_static_route() for _ in range(4)]
    cost_sites: list[tuple[str, str, int]] = []
    for router in sorted(scenario.snapshot.configs):
        config = scenario.snapshot.configs[router]
        if config.ospf is None:
            continue
        for interface, settings in sorted(config.ospf.interfaces.items()):
            if settings.enabled and not settings.passive:
                cost_sites.append((router, interface, settings.cost))
                break
        if len(cost_sites) == 2:
            break
    costs = [
        Change.of(SetOspfCost(r, i, c + 13), label=f"{r}[{i}] cost {c + 13}")
        for r, i, c in cost_sites
    ]
    uncosts = [
        Change.of(SetOspfCost(r, i, c), label=f"{r}[{i}] cost {c}")
        for r, i, c in cost_sites
    ]
    changes = [down1, down2] + [add for add, _ in statics] + costs
    recovery = list(
        reversed(uncosts + [remove for _, remove in statics] + [up2, up1])
    )
    assert sum(len(change.edits) for change in changes) == 8
    return changes, recovery
