"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    BenchRow,
    Table,
    geometric_mean,
    median,
    time_call,
)

__all__ = ["BenchRow", "Table", "geometric_mean", "median", "time_call"]
