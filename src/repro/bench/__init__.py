"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    BenchRow,
    Table,
    geometric_mean,
    median,
    time_call,
)
from repro.bench.workloads import mixed_k8_batch

__all__ = [
    "BenchRow",
    "Table",
    "geometric_mean",
    "median",
    "mixed_k8_batch",
    "time_call",
]
