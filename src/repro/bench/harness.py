"""Timing and table helpers for the benchmark suite.

The benchmarks regenerate the paper's tables/figures as text: each
bench builds a :class:`Table`, fills :class:`BenchRow` entries from
measured runs, and prints it (captured into ``bench_output.txt`` by
the top-level run).  ``pytest-benchmark`` handles the statistical
timing of the headline operation in each file; these helpers cover
the multi-column sweeps a single ``benchmark()`` call cannot express.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


def time_call(fn: Callable[[], Any], repeat: int = 3) -> tuple[float, Any]:
    """(best wall-clock seconds, last result) over ``repeat`` runs."""
    best = math.inf
    result: Any = None
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def median(values: Sequence[float]) -> float:
    """The middle value (mean of middle two for even length)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (values must be positive)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class BenchRow:
    """One table row: a label and its column values."""

    label: str
    values: dict[str, Any] = field(default_factory=dict)


class Table:
    """A paper-style results table rendered as aligned text."""

    def __init__(self, title: str, columns: list[str]) -> None:
        self.title = title
        self.columns = columns
        self.rows: list[BenchRow] = []

    def add(self, label: str, **values: Any) -> None:
        """Append one row; unknown columns are rejected."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(BenchRow(label, values))

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        """The table as aligned monospace text."""
        header = ["case"] + self.columns
        body = [
            [row.label] + [self._fmt(row.values.get(c, "-")) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for line in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
        return "\n".join(lines)

    def emit(self) -> None:
        """Print with surrounding blank lines (shows up in -s output)."""
        print()
        print(self.render())
        print()
