"""Work metrics: named counters, gauges, and histograms.

A :class:`MetricsRegistry` replaces the loose ``report.counters``
writes scattered through the analyzer, pipeline, fork journal, and
campaign runner with named, typed, mergeable instruments:

- :class:`Counter` — monotonically increasing totals
  (``pipeline.spf_sources_recomputed``);
- :class:`Gauge` — last-written levels (``pipeline.atoms_total``);
- :class:`Histogram` — fixed-bound distributions of per-operation
  work (``dirty.spf_sources`` observed once per recompute pass).

**Determinism contract**: the registry holds only quantities that are
a pure function of (snapshot, changes) — counts of work, never wall
time (wall-clock belongs to :class:`~repro.obs.trace.Tracer`).  That
is what makes campaign metrics mergeable byte-identically: each
scenario evaluation snapshots its own registry, the parent merges the
snapshots in enumeration order, and serial vs multiprocessing
backends produce the same bytes.

Export is a versioned JSON document (``kind: "metrics"``) through
:meth:`MetricsRegistry.to_dict`; :meth:`from_dict` rejects unknown
schema versions with :class:`~repro.core.serialize.SchemaError`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Union

from repro.core import serialize

Number = Union[int, float]

# Powers of two up to 64k: dirty-set sizes, batch sizes, and touched
# counts all land here, and fixed bounds are what make two histograms
# from different processes mergeable.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    float(1 << exponent) for exponent in range(17)
)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


@dataclass
class Gauge:
    """A level: last write wins (also across merges)."""

    name: str
    value: Number | None = None

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bound distribution of observed values.

    Buckets are cumulative-style upper bounds (``value <= bound``
    lands in that bucket; larger values land in the overflow bucket),
    shared by construction so histograms merge by element-wise count
    addition.  ``total``/``min``/``max`` ride along for summaries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "low", "high")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.low: Number | None = None
        self.high: Number | None = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.low = value if self.low is None else min(self.low, value)
        self.high = value if self.high is None else max(self.high, value)

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"differ ({len(self.bounds)} vs {len(other.bounds)} edges)"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.low is not None:
            self.low = other.low if self.low is None else min(self.low, other.low)
        if other.high is not None:
            self.high = (
                other.high if self.high is None else max(self.high, other.high)
            )

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, "
            f"mean={self.mean():.2f}, min={self.low}, max={self.high})"
        )


class MetricsRegistry:
    """Named instruments, created on first use, mergeable, versioned.

    ``counter``/``gauge``/``histogram`` get-or-create by name (the
    dotted ``component.metric`` convention mirrors span names);
    :meth:`merge` folds another registry in — counters add, gauges
    take the other's value, histograms add bucket counts — and is the
    primitive behind cross-process campaign aggregation.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # -- views ----------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Counter values by name (sorted), for quick assertions."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- merge ----------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self.

        Deterministic given a deterministic fold order — campaign
        aggregation merges per-scenario snapshots in enumeration
        order, which is what makes serial and multiprocessing
        backends byte-identical.
        """
        for name, counter in other._counters.items():
            self.counter(name).value += counter.value
        for name, gauge in other._gauges.items():
            if gauge.value is not None:
                self.gauge(name).value = gauge.value
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        return self

    def merge_payload(self, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Merge a :meth:`to_payload` fragment (cross-process path)."""
        return self.merge(MetricsRegistry.from_payload(payload))

    # -- serialization --------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready fragment with sorted, stable key order."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "count": self._histograms[name].count,
                    "total": self._histograms[name].total,
                    "min": self._histograms[name].low,
                    "max": self._histograms[name].high,
                }
                for name in sorted(self._histograms)
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, data in payload.get("histograms", {}).items():
            histogram = registry.histogram(name, data["bounds"])
            histogram.counts = list(data["counts"])
            histogram.count = data["count"]
            histogram.total = data["total"]
            histogram.low = data["min"]
            histogram.high = data["max"]
        return registry

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (``kind: "metrics"``)."""
        return serialize.document("metrics", self.to_payload())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry; raises SchemaError on unknown versions."""
        serialize.check_document(data, "metrics")
        return cls.from_payload(data)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms)"
        )
