"""Unified observability: tracing spans and work metrics.

The analysis engines answer *what changed*; this package answers
*where the time and work went*.  It is zero-dependency (standard
library only) and opt-in: the default :data:`NULL_TRACER` records
nothing, so instrumentation sites cost two clock reads and one small
allocation per span.

Two complementary instruments:

- :class:`Tracer` — nestable, labelled wall-clock spans
  (``with tracer.span("pipeline.igp", spf_sources=3):``) forming a
  tree per top-level operation.  Export as a versioned JSON document
  (``kind: "span-trace"``) or as Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto timelines.
- :class:`MetricsRegistry` — named counters, gauges, and histograms
  of *work* (SPF sources recomputed, BGP prefixes solved, dirty-set
  sizes).  By contract the registry holds only deterministic
  quantities — wall-clock belongs to the tracer — which is what lets
  campaign workers ship per-scenario snapshots that merge
  byte-identically across serial and multiprocessing backends.

Span-naming convention: dotted lowercase ``component.operation`` —
``analyze.batch`` > ``analyze.edits`` / ``pipeline.igp`` /
``pipeline.bgp`` / ``pipeline.fib`` / ``pipeline.reachability``,
plus ``fork.rollback`` and ``campaign.run``.  Labels are flat
JSON-scalar key/values; recompute-stage spans carry the dirty-set
sizes that explain their cost.

Two further instruments answer *which edit caused what*:

- :class:`ProvenanceRecord` — per-batch edit table
  (:class:`EditInfo` with dense :data:`~repro.obs.provenance.EditId`
  ids) plus may-have-caused sets per RIB/FIB change and ACL span,
  with derived reachability-segment and violation causes
  (``kind: "provenance"``).
- :class:`EventLog` — an append-only stream interleaving span,
  metric, and provenance records under monotonic sequence numbers
  (``kind: "event-log"``, JSONL export); payloads are deterministic
  by contract, so per-worker slices merge byte-identically.
"""

from repro.obs.events import EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.provenance import EditInfo, ProvenanceRecord
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "EditInfo",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProvenanceRecord",
    "Span",
    "SpanRecord",
    "Tracer",
]
