"""Append-only structured event log with monotonic sequence numbers.

Spans say where time went, metrics say how much work happened; the
event log says **in what order** — one append-only stream per
analyzer interleaving three record types:

- ``span`` — a pipeline stage or analysis pass closed, with its
  deterministic labels (dirty-set sizes, edit counts — never
  durations);
- ``metric`` — a named work count observed during the pass;
- ``provenance`` — an edit was registered for attribution, or a pass
  finished with an attribution summary.

Records are plain JSON-scalar dicts wrapped as
``{"seq": n, "type": t, "data": {...}}`` with ``seq`` monotonically
increasing per log.  By contract the payloads are *deterministic*:
wall-clock values belong to the tracer, not here.  That is what lets
campaign workers ship per-scenario log slices that
:meth:`EventLog.absorb` re-sequences into one stream byte-identical
across serial and multiprocessing backends (the same discipline as
metric merging).

Export: versioned JSON (``kind: "event-log"``) via
:meth:`EventLog.to_dict`/:meth:`EventLog.from_dict`, or JSON-Lines via
:meth:`EventLog.to_jsonl` — one sorted-key object per line, suitable
for appending to a file and replaying with any JSONL tooling.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, Mapping, Union

from repro.core import serialize

EVENT_TYPES = ("span", "metric", "provenance")

Scalar = Union[int, float, str, bool, None]


class EventLog:
    """An append-only, monotonically sequenced stream of records."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    # -- appending ----------------------------------------------------------

    def append(self, type_: str, data: Mapping[str, Scalar]) -> dict[str, Any]:
        """Append one record; returns it (with its ``seq`` assigned)."""
        if type_ not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type_!r} (expected one of {EVENT_TYPES})"
            )
        record = {
            "seq": len(self.records),
            "type": type_,
            "data": dict(data),
        }
        self.records.append(record)
        return record

    def span(self, name: str, **labels: Scalar) -> None:
        """Append a span-close event (name + deterministic labels)."""
        self.append("span", {"name": name, **labels})

    def metric(self, name: str, value: Union[int, float]) -> None:
        """Append one observed work count."""
        self.append("metric", {"name": name, "value": value})

    def provenance(self, **data: Scalar) -> None:
        """Append one attribution record."""
        self.append("provenance", data)

    # -- merging ------------------------------------------------------------

    def absorb(self, records: Iterable[Mapping[str, Any]]) -> "EventLog":
        """Re-sequence ``records`` onto the end of this log; returns self.

        The source records' own ``seq`` values are discarded — the
        merged stream is renumbered densely, so absorbing per-worker
        slices in enumeration order yields one byte-stable log
        regardless of which backend produced the slices.
        """
        for record in records:
            self.append(record["type"], record["data"])
        return self

    def clear(self) -> None:
        self.records.clear()

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def of_type(self, type_: str) -> list[dict[str, Any]]:
        """The records of one type, in sequence order."""
        return [r for r in self.records if r["type"] == type_]

    def __repr__(self) -> str:
        counts = {t: len(self.of_type(t)) for t in EVENT_TYPES}
        parts = ", ".join(f"{n} {t}" for t, n in counts.items() if n)
        return f"EventLog({len(self.records)} records: {parts or 'empty'})"

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> list[dict[str, Any]]:
        """The raw record list (what workers ship to the merger)."""
        return [dict(r) for r in self.records]

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (``kind: "event-log"``)."""
        return serialize.document(
            "event-log", {"records": self.to_payload()}
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EventLog":
        serialize.check_document(data, "event-log")
        log = cls()
        log.absorb(data["records"])
        return log

    def to_jsonl(self) -> str:
        """One sorted-key JSON object per line (byte-stable)."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.records
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        log = cls()
        log.absorb(
            json.loads(line) for line in text.splitlines() if line.strip()
        )
        return log
