"""Causal provenance: which edit caused which delta.

A batch of edits converges in one recompute pass
(:meth:`~repro.core.analyzer.DifferentialNetworkAnalyzer.analyze_batch`),
so by the time a route flips or a violation fires, the per-edit
trail is gone — unless it is carried explicitly.  This module is that
carrier: a :class:`ProvenanceRecord` assigns each edit in a batch a
stable, dense :data:`EditId` (its 0-based application order), and the
pipeline stages deposit **cause sets** — the edit ids that may have
produced each RIB change, FIB change, and invalidated header-space
span — as they emit deltas.

Reachability-segment and violation causes are *derived*, not stored:
a segment's causes are the union of causes of every FIB change and
ACL span overlapping its ``[lo, hi)`` interval (:meth:`causes_over`).
Deriving keeps the batched and sequentially-composed documents
byte-identical wherever the underlying RIB/FIB cause maps agree.

Semantics: cause sets are a **sound may-have-caused
over-approximation** at the granularity of the dirty-set axes.  Every
edit that actually produced a delta is in its cause set; an edit that
dirtied the same axis element without changing the outcome can appear
too.  For batches whose edits have disjoint dirty footprints (the
common case, and the shape the determinism tests pin), attribution is
exact and byte-identical across batched vs. sequential composition
and serial vs. multiprocessing backends.

This module is dependency-light by design (it never imports network
types): prefixes are carried as their canonical strings, intervals as
``(lo, hi)`` pairs, so the record round-trips through JSON
(``kind: "provenance"``) without the object layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.core import serialize

EditId = int
RibKey = tuple[str, str]  # (router, prefix string)
Span = tuple[int, int]


@dataclass(frozen=True)
class EditInfo:
    """One registered edit: its stable id and human description."""

    edit_id: EditId
    kind: str
    detail: str
    change: str = ""

    def to_payload(self) -> dict[str, Any]:
        return {
            "id": self.edit_id,
            "kind": self.kind,
            "detail": self.detail,
            "change": self.change,
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "EditInfo":
        return cls(
            edit_id=data["id"],
            kind=data["kind"],
            detail=data["detail"],
            change=data.get("change", ""),
        )

    def __str__(self) -> str:
        label = f" ({self.change})" if self.change else ""
        return f"#{self.edit_id} {self.kind}: {self.detail}{label}"


class ProvenanceRecord:
    """Edit table plus cause maps for one analysis pass (or batch)."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.edits: list[EditInfo] = []
        self.rib_causes: dict[RibKey, set[EditId]] = {}
        self.fib_causes: dict[RibKey, set[EditId]] = {}
        self.fib_intervals: dict[RibKey, Span] = {}
        self.acl_causes: dict[Span, set[EditId]] = {}
        # Segment causes are derived from the maps above when the
        # owning report serializes; a record rebuilt from JSON keeps
        # the loaded list so it re-serializes byte-identically.
        self.cached_segment_causes: list[list[Any]] | None = None

    def __repr__(self) -> str:
        return (
            f"ProvenanceRecord({self.label!r}: {len(self.edits)} edits, "
            f"{len(self.rib_causes)} RIB / {len(self.fib_causes)} FIB "
            f"cause sets, {len(self.acl_causes)} ACL spans)"
        )

    # -- building -----------------------------------------------------------

    def register_edit(
        self, kind: str, detail: str, change: str = ""
    ) -> EditId:
        """Assign the next dense edit id; returns it."""
        info = EditInfo(
            edit_id=len(self.edits), kind=kind, detail=detail, change=change
        )
        self.edits.append(info)
        return info.edit_id

    def all_ids(self) -> set[EditId]:
        """Every registered edit id (the coarsest sound cause set)."""
        return {info.edit_id for info in self.edits}

    def record_rib(
        self, router: str, prefix: str, causes: Iterable[EditId]
    ) -> None:
        """Union ``causes`` into the RIB cause set for (router, prefix)."""
        self.rib_causes.setdefault((router, prefix), set()).update(causes)

    def drop_rib(self, router: str, prefix: str) -> None:
        """Forget a RIB cause set (the change net-cancelled)."""
        self.rib_causes.pop((router, prefix), None)

    def record_fib(
        self,
        router: str,
        prefix: str,
        interval: Span,
        causes: Iterable[EditId],
    ) -> None:
        key = (router, prefix)
        self.fib_causes.setdefault(key, set()).update(causes)
        self.fib_intervals[key] = (interval[0], interval[1])

    def drop_fib(self, router: str, prefix: str) -> None:
        key = (router, prefix)
        self.fib_causes.pop(key, None)
        self.fib_intervals.pop(key, None)

    def record_acl_span(
        self, lo: int, hi: int, causes: Iterable[EditId]
    ) -> None:
        self.acl_causes.setdefault((lo, hi), set()).update(causes)

    # -- queries ------------------------------------------------------------

    def edit(self, edit_id: EditId) -> EditInfo:
        if not 0 <= edit_id < len(self.edits):
            raise KeyError(f"no edit with id {edit_id}")
        return self.edits[edit_id]

    def describe(self, ids: Iterable[EditId]) -> list[str]:
        """Human-readable lines for a cause set, in id order."""
        return [str(self.edit(edit_id)) for edit_id in sorted(set(ids))]

    def entry_causes(self, router: str, prefix: str) -> set[EditId]:
        """Causes for one (router, prefix): FIB first, RIB fallback."""
        key = (router, prefix)
        causes = self.fib_causes.get(key)
        if causes is None:
            causes = self.rib_causes.get(key)
        return set(causes) if causes is not None else set()

    def causes_over(self, lo: int, hi: int) -> set[EditId]:
        """Union of causes of every FIB change / ACL span overlapping
        the destination interval ``[lo, hi)``."""
        causes: set[EditId] = set()
        for key, (s_lo, s_hi) in self.fib_intervals.items():
            if s_lo < hi and lo < s_hi:
                causes.update(self.fib_causes.get(key, ()))
        for (s_lo, s_hi), ids in self.acl_causes.items():
            if s_lo < hi and lo < s_hi:
                causes.update(ids)
        return causes

    def segment_causes(
        self, segments: Iterable[Any]
    ) -> list[list[Any]]:
        """``[lo, hi, [edit ids]]`` per reach segment (``.lo``/``.hi``)."""
        return [
            [segment.lo, segment.hi, sorted(self.causes_over(segment.lo, segment.hi))]
            for segment in segments
        ]

    def attribution(self, edit_id: EditId) -> dict[str, Any]:
        """Everything one edit (may have) caused, JSON-ready."""
        info = self.edit(edit_id)
        return {
            "edit": info.to_payload(),
            "rib": sorted(
                list(key) for key, ids in self.rib_causes.items()
                if edit_id in ids
            ),
            "fib": sorted(
                list(key) for key, ids in self.fib_causes.items()
                if edit_id in ids
            ),
            "acl_spans": sorted(
                list(span) for span, ids in self.acl_causes.items()
                if edit_id in ids
            ),
        }

    # -- composition --------------------------------------------------------

    def absorb_edits(self, other: "ProvenanceRecord") -> EditId:
        """Append ``other``'s edit table; returns the id offset its
        causes must be shifted by (sequential composition)."""
        offset = len(self.edits)
        for info in other.edits:
            self.register_edit(info.kind, info.detail, info.change)
        return offset

    # -- serialization ------------------------------------------------------

    @staticmethod
    def _encode_causes(
        causes: Mapping[RibKey, set[EditId]]
    ) -> dict[str, dict[str, list[EditId]]]:
        encoded: dict[str, dict[str, list[EditId]]] = {}
        for (router, prefix), ids in sorted(causes.items()):
            encoded.setdefault(router, {})[prefix] = sorted(ids)
        return encoded

    def to_dict(
        self, segments: Union[Iterable[Any], None] = None
    ) -> dict[str, Any]:
        """Schema-versioned JSON document (``kind: "provenance"``).

        ``segments`` — the owning report's reach segments, used to
        derive per-segment causes; omitted, the list loaded by
        :meth:`from_dict` (if any) is re-emitted.
        """
        if segments is not None:
            segment_causes = self.segment_causes(segments)
        else:
            segment_causes = self.cached_segment_causes or []
        return serialize.document(
            "provenance",
            {
                "label": self.label,
                "edits": [info.to_payload() for info in self.edits],
                "rib_causes": self._encode_causes(self.rib_causes),
                "fib_causes": {
                    router: {
                        prefix: {
                            "edits": ids,
                            "interval": list(
                                self.fib_intervals[(router, prefix)]
                            ),
                        }
                        for prefix, ids in per_router.items()
                    }
                    for router, per_router in self._encode_causes(
                        self.fib_causes
                    ).items()
                },
                "acl_span_causes": [
                    [lo, hi, sorted(ids)]
                    for (lo, hi), ids in sorted(self.acl_causes.items())
                ],
                "segment_causes": segment_causes,
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProvenanceRecord":
        serialize.check_document(data, "provenance")
        record = cls(data["label"])
        record.edits = [
            EditInfo.from_payload(payload) for payload in data["edits"]
        ]
        for router, per_router in data["rib_causes"].items():
            for prefix, ids in per_router.items():
                record.record_rib(router, prefix, ids)
        for router, per_router in data["fib_causes"].items():
            for prefix, entry in per_router.items():
                lo, hi = entry["interval"]
                record.record_fib(router, prefix, (lo, hi), entry["edits"])
        for lo, hi, ids in data["acl_span_causes"]:
            record.record_acl_span(lo, hi, ids)
        record.cached_segment_causes = [
            [lo, hi, list(ids)] for lo, hi, ids in data["segment_causes"]
        ]
        return record
