"""Nestable wall-clock spans with labels and versioned export.

A :class:`Tracer` records a forest of :class:`SpanRecord` trees — one
root per top-level traced operation.  Opening a span while another is
active nests it; the context-manager protocol keeps the stack honest
even when the traced body raises.

The default tracer in every analyzer is :data:`NULL_TRACER`: it still
times each span (the analyzer's ``report.timings`` compatibility view
is fed from span durations either way) but allocates no records, so
always-on instrumentation stays cheap — ``benchmarks/test_bench_obs``
holds the no-op path to <5% overhead on the k=8 batch workload.

Export:

- :meth:`Tracer.to_dict` — versioned JSON document
  (``kind: "span-trace"``, byte-stable through
  ``from_dict``/``to_dict``; unknown versions raise
  :class:`~repro.core.serialize.SchemaError`).
- :meth:`Tracer.to_chrome_trace` — Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto): one complete (``"ph": "X"``)
  event per span, labels as ``args``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Iterator, Mapping, Union

from repro.core import serialize

LabelValue = Union[int, float, str, bool, None]


@dataclass
class SpanRecord:
    """One recorded span: name, placement, duration, labels, children.

    ``start`` is seconds relative to the tracer's epoch (its
    construction or last :meth:`Tracer.reset`), ``duration`` is
    seconds of wall time between enter and exit.
    """

    name: str
    labels: dict[str, LabelValue] = field(default_factory=dict)
    start: float = 0.0
    duration: float = 0.0
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def child_time(self) -> float:
        """Seconds spent in direct children (for self-time math)."""
        return sum(child.duration for child in self.children)

    def find(self, name: str) -> "SpanRecord | None":
        """The first descendant (or self) with ``name``, depth-first."""
        for record in self.walk():
            if record.name == name:
                return record
        return None

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready fragment (the enclosing document is versioned)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "labels": {key: self.labels[key] for key in sorted(self.labels)},
            "children": [child.to_payload() for child in self.children],
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            labels=dict(data["labels"]),
            start=data["start"],
            duration=data["duration"],
            children=[
                cls.from_payload(child) for child in data["children"]
            ],
        )

    def __str__(self) -> str:
        labels = ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        suffix = f" [{labels}]" if labels else ""
        return f"{self.name}: {self.duration * 1e3:.2f}ms{suffix}"


class Span:
    """The live context-manager handle of one span.

    Always measures wall time (``duration`` is readable after the
    ``with`` block exits — the analyzer's ``report.timings`` keys are
    fed from it); records a :class:`SpanRecord` only when opened by a
    recording tracer.  :meth:`set` attaches labels discovered while
    the span runs (e.g. how many prefixes a stage ended up solving).
    """

    __slots__ = ("_tracer", "record", "duration", "_start")

    def __init__(self, tracer: "Tracer | None", record: SpanRecord | None) -> None:
        self._tracer = tracer
        self.record = record
        self.duration = 0.0
        self._start = 0.0

    def set(self, **labels: LabelValue) -> "Span":
        """Attach labels to the recorded span (no-op when unrecorded)."""
        if self.record is not None:
            self.record.labels.update(labels)
        return self

    def __enter__(self) -> "Span":
        if self._tracer is not None and self.record is not None:
            self._tracer._push(self.record)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.duration = time.perf_counter() - self._start
        if self._tracer is not None and self.record is not None:
            self._tracer._pop(self.record, self._start, self.duration)


class Tracer:
    """Records nestable spans into a forest of :class:`SpanRecord`.

    One tracer per session (the :class:`~repro.api.Network` facade
    owns one and threads it through the analyzer, pipeline, fork
    journal, and campaign runner).  Not thread-safe: one tracer
    belongs to one analysis session, mirroring the analyzer itself.
    """

    def __init__(self) -> None:
        self.roots: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._epoch = time.perf_counter()

    @property
    def enabled(self) -> bool:
        """True when spans are recorded (False for the null tracer)."""
        return True

    def span(self, name: str, **labels: LabelValue) -> Span:
        """A new span; ``with tracer.span("pipeline.igp", n=3) as sp:``."""
        return Span(self, SpanRecord(name=name, labels=dict(labels)))

    def reset(self) -> None:
        """Drop every recorded span and restart the epoch."""
        self.roots = []
        self._stack = []
        self._epoch = time.perf_counter()

    # -- recording internals (driven by Span) --------------------------------

    def _push(self, record: SpanRecord) -> None:
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)

    def _pop(self, record: SpanRecord, start: float, duration: float) -> None:
        record.start = start - self._epoch
        record.duration = duration
        # Well-nested `with` blocks make this the stack top; tolerate
        # surprises (a leaked span) rather than corrupt the tree.
        if self._stack and self._stack[-1] is record:
            self._stack.pop()

    # -- views ----------------------------------------------------------------

    def walk(self) -> Iterator[SpanRecord]:
        """Every recorded span, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> SpanRecord | None:
        """The first recorded span named ``name``, depth-first."""
        for record in self.walk():
            if record.name == name:
                return record
        return None

    def render(self) -> str:
        """Human-readable indented tree of every recorded span."""
        lines: list[str] = []

        def visit(record: SpanRecord, depth: int) -> None:
            lines.append("  " * depth + str(record))
            for child in record.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (``kind: "span-trace"``)."""
        return serialize.document(
            "span-trace",
            {"spans": [root.to_payload() for root in self.roots]},
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Tracer":
        """Rebuild a recorded forest; raises SchemaError on unknowns."""
        serialize.check_document(data, "span-trace")
        tracer = cls()
        tracer.roots = [
            SpanRecord.from_payload(span) for span in data["spans"]
        ]
        return tracer

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (load in ``chrome://tracing``).

        One complete event (``"ph": "X"``) per span; timestamps are
        microseconds from the tracer epoch, labels travel as ``args``.
        """
        events: list[dict[str, Any]] = []
        for record in self.walk():
            events.append(
                {
                    "name": record.name,
                    "ph": "X",
                    "ts": record.start * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {
                        key: record.labels[key]
                        for key in sorted(record.labels)
                    },
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def __repr__(self) -> str:
        spans = sum(1 for _ in self.walk())
        return f"Tracer({len(self.roots)} roots, {spans} spans)"


class NullTracer(Tracer):
    """The default no-op tracer: times spans, records nothing.

    Instrumentation sites read durations off their spans (feeding the
    ``report.timings`` compatibility keys), so the null span still
    takes two clock reads — but no record, no tree, no labels are
    kept, and label values passed as keywords are dropped unseen.
    """

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **labels: LabelValue) -> Span:
        return Span(None, None)

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()
"""Shared default tracer; stateless, safe to hand to every analyzer."""
