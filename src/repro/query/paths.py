"""Differential path queries.

``forwarding_paths`` extracts the forwarding DAG between a source
router and the owners of a destination address from converged state;
``path_diff`` compares the DAG before/after a change — the "how did my
traffic move?" question the BGP what-if example asks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controlplane.simulation import NetworkState


@dataclass(frozen=True)
class PathDiff:
    """Edge-level difference between two forwarding DAGs."""

    added_edges: frozenset[tuple[str, str]]
    removed_edges: frozenset[tuple[str, str]]
    reachable_before: bool
    reachable_after: bool

    def is_empty(self) -> bool:
        return not self.added_edges and not self.removed_edges

    def __str__(self) -> str:
        parts = []
        if self.added_edges:
            parts.append(
                "now via " + ", ".join(f"{u}->{v}" for u, v in sorted(self.added_edges))
            )
        if self.removed_edges:
            parts.append(
                "no longer via "
                + ", ".join(f"{u}->{v}" for u, v in sorted(self.removed_edges))
            )
        if self.reachable_before != self.reachable_after:
            parts.append(
                "became reachable" if self.reachable_after else "became unreachable"
            )
        return "; ".join(parts) if parts else "unchanged"


def forwarding_paths(
    state: NetworkState, source: str, dst_address: int, max_hops: int = 64
) -> tuple[frozenset[tuple[str, str]], bool]:
    """(forwarding DAG edges, delivered?) from ``source`` for one
    destination address.

    The DAG is the union of ECMP branches actually taken; traversal
    stops at delivery, drops, or missing routes.
    """
    edges: set[tuple[str, str]] = set()
    delivered = False
    frontier = [source]
    visited: set[str] = set()
    hops = 0
    while frontier and hops < max_hops * 4:
        router = frontier.pop()
        if router in visited:
            continue
        visited.add(router)
        hops += 1
        fib = state.fibs.get(router)
        entry = fib.lookup(dst_address) if fib is not None else None
        if entry is None:
            continue
        for hop in entry.next_hops:
            if hop.drop:
                continue
            if hop.neighbor is None:
                delivered = True
                continue
            edges.add((router, hop.neighbor))
            frontier.append(hop.neighbor)
    return frozenset(edges), delivered


def path_diff(
    before: NetworkState,
    after: NetworkState,
    source: str,
    dst_address: int,
) -> PathDiff:
    """How the forwarding DAG for (source, destination) changed."""
    edges_before, reach_before = forwarding_paths(before, source, dst_address)
    edges_after, reach_after = forwarding_paths(after, source, dst_address)
    return PathDiff(
        added_edges=edges_after - edges_before,
        removed_edges=edges_before - edges_after,
        reachable_before=reach_before,
        reachable_after=reach_after,
    )
