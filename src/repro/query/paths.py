"""Differential path queries.

``Network.paths`` extracts the forwarding DAG between a source router
and the owners of a destination address from converged state;
``Network.path_diff`` compares the DAG before/after a change — the
"how did my traffic move?" question the BGP what-if example asks.

The supported entry points live on the :class:`repro.api.Network`
facade; the module-level ``forwarding_paths``/``path_diff`` free
functions survive as deprecated shims.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Mapping

from repro.controlplane.simulation import NetworkState
from repro.core import serialize


@dataclass(frozen=True)
class ForwardingPaths:
    """The forwarding DAG for one (source, destination) pair."""

    source: str
    edges: frozenset[tuple[str, str]]
    delivered: bool

    def routers(self) -> set[str]:
        """Every router the DAG touches (including the source)."""
        return {self.source} | {r for edge in self.edges for r in edge}

    def __str__(self) -> str:
        edges = ", ".join(f"{u}->{v}" for u, v in sorted(self.edges))
        fate = "delivered" if self.delivered else "not delivered"
        return f"paths from {self.source}: {edges or 'none'} ({fate})"

    def __repr__(self) -> str:
        return (
            f"ForwardingPaths(from {self.source!r}, {len(self.edges)} edges, "
            f"delivered={self.delivered})"
        )


@dataclass(frozen=True)
class PathDiff:
    """Edge-level difference between two forwarding DAGs."""

    added_edges: frozenset[tuple[str, str]]
    removed_edges: frozenset[tuple[str, str]]
    reachable_before: bool
    reachable_after: bool

    def is_empty(self) -> bool:
        return not self.added_edges and not self.removed_edges

    def __str__(self) -> str:
        parts = []
        if self.added_edges:
            parts.append(
                "now via " + ", ".join(f"{u}->{v}" for u, v in sorted(self.added_edges))
            )
        if self.removed_edges:
            parts.append(
                "no longer via "
                + ", ".join(f"{u}->{v}" for u, v in sorted(self.removed_edges))
            )
        if self.reachable_before != self.reachable_after:
            parts.append(
                "became reachable" if self.reachable_after else "became unreachable"
            )
        return "; ".join(parts) if parts else "unchanged"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (see :mod:`repro.core.serialize`)."""
        return serialize.document(
            "path-diff",
            {
                "added_edges": sorted(list(edge) for edge in self.added_edges),
                "removed_edges": sorted(
                    list(edge) for edge in self.removed_edges
                ),
                "reachable_before": self.reachable_before,
                "reachable_after": self.reachable_after,
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PathDiff":
        """Rebuild a diff; raises SchemaError on unknown versions."""
        serialize.check_document(data, "path-diff")
        return cls(
            added_edges=frozenset((u, v) for u, v in data["added_edges"]),
            removed_edges=frozenset((u, v) for u, v in data["removed_edges"]),
            reachable_before=data["reachable_before"],
            reachable_after=data["reachable_after"],
        )


def _forwarding_paths(
    state: NetworkState, source: str, dst_address: int, max_hops: int = 64
) -> tuple[frozenset[tuple[str, str]], bool]:
    """(forwarding DAG edges, delivered?) from ``source`` for one
    destination address.

    The DAG is the union of ECMP branches actually taken; traversal
    stops at delivery, drops, or missing routes.
    """
    edges: set[tuple[str, str]] = set()
    delivered = False
    frontier = [source]
    visited: set[str] = set()
    hops = 0
    while frontier and hops < max_hops * 4:
        router = frontier.pop()
        if router in visited:
            continue
        visited.add(router)
        hops += 1
        fib = state.fibs.get(router)
        entry = fib.lookup(dst_address) if fib is not None else None
        if entry is None:
            continue
        for hop in entry.next_hops:
            if hop.drop:
                continue
            if hop.neighbor is None:
                delivered = True
                continue
            edges.add((router, hop.neighbor))
            frontier.append(hop.neighbor)
    return frozenset(edges), delivered


def _path_diff(
    before: NetworkState,
    after: NetworkState,
    source: str,
    dst_address: int,
) -> PathDiff:
    """How the forwarding DAG for (source, destination) changed."""
    edges_before, reach_before = _forwarding_paths(before, source, dst_address)
    edges_after, reach_after = _forwarding_paths(after, source, dst_address)
    return PathDiff(
        added_edges=edges_after - edges_before,
        removed_edges=edges_before - edges_after,
        reachable_before=reach_before,
        reachable_after=reach_after,
    )


def forwarding_paths(
    state: NetworkState, source: str, dst_address: int, max_hops: int = 64
) -> tuple[frozenset[tuple[str, str]], bool]:
    """Deprecated shim: use :meth:`repro.api.Network.paths`."""
    warnings.warn(
        "forwarding_paths() is deprecated; use repro.api.Network.paths()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _forwarding_paths(state, source, dst_address, max_hops)


def path_diff(
    before: NetworkState,
    after: NetworkState,
    source: str,
    dst_address: int,
) -> PathDiff:
    """Deprecated shim: use :meth:`repro.api.Network.path_diff`."""
    warnings.warn(
        "path_diff() is deprecated; use repro.api.Network.path_diff()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _path_diff(before, after, source, dst_address)
