"""Packet-level forwarding traces.

Where the atom decomposition answers *set-level* questions on the
destination axis, the tracer answers the exact question for one
concrete packet — including source/protocol/port ACL matches that the
atom view treats conservatively (MIXED).  It follows every ECMP branch
breadth-first, so the result is the packet's full forwarding DAG with
one terminal fate per leaf.

Used by examples as a "traceroute", and by tests as an oracle: for
packets whose path crosses only destination-based ACLs, the trace's
delivery fate must agree with the atom-level reachability analysis.

The supported entry point is :meth:`repro.api.Network.trace`; the
module-level ``trace_packet`` survives as a deprecated shim.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.controlplane.simulation import NetworkState
from repro.core import serialize


class TraceOutcome(enum.Enum):
    """Terminal fate of one branch of a packet trace."""

    DELIVERED = "delivered"
    DROPPED_ACL = "dropped-acl"
    DROPPED_NULL = "dropped-null-route"
    NO_ROUTE = "no-route"
    LOOP = "loop"


@dataclass(frozen=True)
class Hop:
    """One step of the trace: a router and what it did."""

    router: str
    prefix: str | None  # matched FIB prefix, None when nothing matched
    action: str  # human-readable disposition

    def __str__(self) -> str:
        matched = f" [{self.prefix}]" if self.prefix else ""
        return f"{self.router}{matched}: {self.action}"


@dataclass
class PacketTrace:
    """The full multipath trace of one packet."""

    packet: dict[str, int]
    source: str
    hops: list[Hop] = field(default_factory=list)
    outcomes: dict[TraceOutcome, set[str]] = field(default_factory=dict)

    def record(self, outcome: TraceOutcome, router: str) -> None:
        self.outcomes.setdefault(outcome, set()).add(router)

    def delivered_at(self) -> set[str]:
        """Routers where some branch delivered the packet."""
        return self.outcomes.get(TraceOutcome.DELIVERED, set())

    def is_delivered(self) -> bool:
        """True if at least one ECMP branch delivers."""
        return bool(self.delivered_at())

    def fates(self) -> set[TraceOutcome]:
        """All terminal fates across branches."""
        return set(self.outcomes)

    def render(self) -> str:
        lines = [f"trace from {self.source} for {self.packet}:"]
        lines.extend(f"  {hop}" for hop in self.hops)
        for outcome, routers in sorted(
            self.outcomes.items(), key=lambda kv: kv[0].value
        ):
            lines.append(f"  => {outcome.value} at {sorted(routers)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        fates = ", ".join(sorted(fate.value for fate in self.outcomes))
        return (
            f"PacketTrace(from {self.source!r} for {self.packet}, "
            f"{len(self.hops)} hops, fates: {fates or 'none'})"
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Schema-versioned JSON document (see :mod:`repro.core.serialize`)."""
        return serialize.document(
            "packet-trace",
            {
                "packet": {key: self.packet[key] for key in sorted(self.packet)},
                "source": self.source,
                "hops": [
                    {
                        "router": hop.router,
                        "prefix": hop.prefix,
                        "action": hop.action,
                    }
                    for hop in self.hops
                ],
                "outcomes": {
                    outcome.value: sorted(routers)
                    for outcome, routers in sorted(
                        self.outcomes.items(), key=lambda kv: kv[0].value
                    )
                },
            },
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PacketTrace":
        """Rebuild a trace; raises SchemaError on unknown versions."""
        serialize.check_document(data, "packet-trace")
        # Restore the tracer's canonical field order (the JSON form is
        # key-sorted) so render() round-trips verbatim.
        fields = dict(data["packet"])
        packet = {
            key: fields.pop(key)
            for key in ("src", "proto", "dport", "dst")
            if key in fields
        }
        packet.update(fields)
        return cls(
            packet=packet,
            source=data["source"],
            hops=[
                Hop(
                    router=hop["router"],
                    prefix=hop["prefix"],
                    action=hop["action"],
                )
                for hop in data["hops"]
            ],
            outcomes={
                TraceOutcome(value): set(routers)
                for value, routers in data["outcomes"].items()
            },
        )


def _acl_permits(state: NetworkState, router: str, acl_name: str | None,
                 packet: Mapping[str, int]) -> bool:
    if acl_name is None:
        return True
    config = state.snapshot.configs.get(router)
    if config is None:
        return True
    acl = config.acls.get(acl_name)
    if acl is None:
        return True  # dangling binding treated as absent (matches atoms)
    return acl.permits_packet(packet)


def _trace_packet(
    state: NetworkState,
    source: str,
    packet: Mapping[str, int],
    max_hops: int = 64,
) -> PacketTrace:
    """Follow one packet from ``source`` through the network.

    ``packet`` maps header fields (``dst`` required; ``src``,
    ``proto``, ``dport`` defaulted to wildcard-ish values) to ints.
    Every ECMP branch is explored; a router revisited along one branch
    terminates that branch as a LOOP.
    """
    fields = {"src": 0, "proto": 0, "dport": 0}
    fields.update(packet)
    if "dst" not in fields:
        raise ValueError("packet needs a dst field")
    trace = PacketTrace(packet=fields, source=source)

    # BFS over (router, path-visited-set); visited sets are per branch
    # so diamond re-joins are not misreported as loops.
    frontier: list[tuple[str, frozenset[str]]] = [(source, frozenset())]
    seen_states: set[tuple[str, frozenset[str]]] = set()
    hop_count = 0
    while frontier and hop_count < max_hops * 4:
        router, visited = frontier.pop(0)
        if (router, visited) in seen_states:
            continue
        seen_states.add((router, visited))
        hop_count += 1
        if router in visited:
            trace.hops.append(Hop(router, None, "already visited: loop"))
            trace.record(TraceOutcome.LOOP, router)
            continue
        visited = visited | {router}
        fib = state.fibs.get(router)
        entry = fib.lookup(fields["dst"]) if fib is not None else None
        if entry is None:
            trace.hops.append(Hop(router, None, "no matching route"))
            trace.record(TraceOutcome.NO_ROUTE, router)
            continue
        config = state.snapshot.configs.get(router)
        for hop in sorted(entry.next_hops):
            if hop.drop:
                trace.hops.append(
                    Hop(router, str(entry.prefix), "null route: dropped")
                )
                trace.record(TraceOutcome.DROPPED_NULL, router)
                continue
            if hop.neighbor is None:
                trace.hops.append(
                    Hop(router, str(entry.prefix), f"delivered on {hop.interface}")
                )
                trace.record(TraceOutcome.DELIVERED, router)
                continue
            # Egress ACL here.
            acl_out = None
            if config is not None:
                acl_out = config.interface_config(hop.interface).acl_out
            if not _acl_permits(state, router, acl_out, fields):
                trace.hops.append(
                    Hop(router, str(entry.prefix),
                        f"denied by egress acl {acl_out} on {hop.interface}")
                )
                trace.record(TraceOutcome.DROPPED_ACL, router)
                continue
            # Ingress ACL on the far side.
            peer = state.snapshot.topology.interface_peer(router, hop.interface)
            if peer is not None:
                peer_config = state.snapshot.configs.get(peer.router)
                acl_in = (
                    peer_config.interface_config(peer.name).acl_in
                    if peer_config is not None
                    else None
                )
                if not _acl_permits(state, peer.router, acl_in, fields):
                    trace.hops.append(
                        Hop(router, str(entry.prefix),
                            f"denied by ingress acl {acl_in} at "
                            f"{peer.router}[{peer.name}]")
                    )
                    trace.record(TraceOutcome.DROPPED_ACL, router)
                    continue
            trace.hops.append(
                Hop(router, str(entry.prefix),
                    f"forward via {hop.interface} to {hop.neighbor}")
            )
            frontier.append((hop.neighbor, visited))
    return trace


def trace_packet(
    state: NetworkState,
    source: str,
    packet: Mapping[str, int],
    max_hops: int = 64,
) -> PacketTrace:
    """Deprecated shim: use :meth:`repro.api.Network.trace`."""
    warnings.warn(
        "trace_packet() is deprecated; use repro.api.Network.trace()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _trace_packet(state, source, packet, max_hops)
