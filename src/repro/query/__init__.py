"""User-facing queries over converged network state.

- :mod:`~repro.query.trace` — packet-level forwarding traces: inject a
  concrete packet at a router and follow every ECMP branch through
  FIB lookups and exact (4-field) ACL evaluation to its fates
  (delivered / dropped / blackholed / looping).
- :mod:`~repro.query.paths` — differential path queries: how did the
  forwarding DAG between two routers change across a delta report?

The supported entry points are :meth:`repro.api.Network.trace`,
:meth:`~repro.api.Network.paths`, and
:meth:`~repro.api.Network.path_diff`; the free functions re-exported
here are deprecated shims kept for backwards compatibility.
"""

from repro.query.trace import Hop, PacketTrace, TraceOutcome, trace_packet
from repro.query.paths import (
    ForwardingPaths,
    PathDiff,
    forwarding_paths,
    path_diff,
)

__all__ = [
    "ForwardingPaths",
    "Hop",
    "PacketTrace",
    "PathDiff",
    "TraceOutcome",
    "forwarding_paths",
    "path_diff",
    "trace_packet",
]
