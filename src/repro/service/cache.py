"""The digest-keyed result cache behind the what-if service.

Keys are ``(snapshot_digest, change_digest, options_digest)`` — what
network, what changes, what question — all hex sha-256 strings, so a
key never holds live objects and two textually different scripts that
parse to the same canonical change batch share an entry.  Values are
canonical result-document JSON strings (sorted keys), which makes a
warm hit byte-identical to the cold miss that stored it by
construction.

Bounded LRU: ``maxsize`` entries, least-recently-*hit* evicted first.
Generation-based invalidation: the cache remembers the base
generation it was filled against and clears wholesale when
:meth:`ResultCache.ensure_generation` sees it move — a committed
change on the shared base instantly orphans every cached answer.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Mapping, Sequence

from repro.core.change import Change
from repro.core.change_text import serialize_change_batch

CacheKey = tuple[str, str, str]


def change_digest(changes: Sequence[Change]) -> str:
    """Stable hex key of a change batch (canonical script text)."""
    text = serialize_change_batch(list(changes))
    return hashlib.sha256(text.encode()).hexdigest()


def options_digest(options: Mapping[str, Any]) -> str:
    """Stable hex key of a request's option mapping.

    Options must be JSON-serializable (they come off the wire, so they
    are); key order does not matter.
    """
    text = json.dumps(options, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class ResultCache:
    """Bounded LRU of canonical result documents."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[CacheKey, str] = OrderedDict()
        self._generation: int | None = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def ensure_generation(self, generation: int) -> None:
        """Invalidate everything if the base's generation moved."""
        if self._generation is None:
            self._generation = generation
        elif self._generation != generation:
            self._entries.clear()
            self._generation = generation
            self.invalidations += 1

    def get(self, key: CacheKey) -> str | None:
        """The cached canonical result JSON, refreshing recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, value: str) -> None:
        """Store a canonical result, evicting the coldest past bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Deterministic counters for the ``stats`` op."""
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
