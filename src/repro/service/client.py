"""The blocking service client behind ``Network.connect()``.

Speaks the newline-delimited versioned-JSON frame protocol over a
plain socket and decodes results into the same typed objects the
in-process facade returns — a caller migrating from ``Network.load``
to ``Network.connect`` keeps its downstream code unchanged::

    with Network.connect("127.0.0.1:7421") as remote:
        report = remote.preview("link down agg0_0 core0")
        answer = remote.explain("link down agg0_0 core0", edit=0)
        stats = remote.stats()

Error frames re-raise as the typed exceptions of
:mod:`repro.api.errors` — a malformed script raises
``ChangeParseError`` on the client exactly as it would in process.
"""

from __future__ import annotations

import socket
from typing import Any, Mapping, Sequence

from repro.api.errors import ProtocolError
from repro.campaign.report import CampaignReport
from repro.core.change import Change
from repro.core.change_text import serialize_change_batch
from repro.core.delta import DeltaReport
from repro.service import protocol

ScriptLike = str | Change | Sequence[Change]


def _as_script(changes: ScriptLike) -> str:
    """Accept a script string, a Change, or a sequence of Changes."""
    if isinstance(changes, str):
        return changes
    if isinstance(changes, Change):
        return serialize_change_batch([changes])
    return serialize_change_batch(list(changes))


class ServiceClient:
    """One connection to a running what-if service."""

    def __init__(self, sock: socket.socket, address: str) -> None:
        self.address = address
        self._socket = sock
        self._reader = sock.makefile("rb")
        self._next_id = 0
        self.last_cache: str | None = None

    @classmethod
    def connect(cls, address: str, timeout: float = 30.0) -> "ServiceClient":
        """Open a client against ``host:port`` or a Unix socket path."""
        kind, host, port = protocol.parse_address(address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(host)
        else:
            sock = socket.create_connection((host, port), timeout=timeout)
        return cls(sock, address)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the frame round trip ------------------------------------------------

    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """One op round trip; returns the raw result document.

        Raises the typed exception of an error frame;
        :attr:`last_cache` records the response's cache disposition
        (``"hit"``/``"miss"``/``None``).
        """
        self._next_id += 1
        request_id = self._next_id
        self._socket.sendall(
            protocol.encode_frame(protocol.request(request_id, op, params))
        )
        line = self._reader.readline()
        if not line:
            raise ProtocolError("service closed the connection mid-request")
        frame = protocol.decode_frame(line, "response")
        if frame["kind"] == "error":
            protocol.raise_error_frame(frame)
        if frame.get("id") != request_id:
            raise ProtocolError(
                f"response id {frame.get('id')!r} does not match "
                f"request id {request_id}"
            )
        self.last_cache = frame.get("cache")
        result = frame.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("response frame carries no result document")
        return result

    # -- typed ops -----------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to stop serving (the reply is the last frame)."""
        return self.request("shutdown")

    def preview(
        self,
        changes: ScriptLike,
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Fork-backed what-if against the service's base.

        ``changes`` is a change-script string, a :class:`Change`, or a
        sequence of Changes (serialized over the wire as a script).
        The report matches in-process ``Network.preview`` except that
        wall-clock ``timings`` are stripped server-side.
        """
        result = self.request(
            "preview",
            script=_as_script(changes),
            label=label,
            provenance=provenance,
        )
        return DeltaReport.from_dict(result)

    def analyze_batch(
        self,
        changes: ScriptLike,
        label: str | None = None,
        provenance: bool = False,
    ) -> DeltaReport:
        """Batch analysis (fork-backed server-side; the shared base
        never advances)."""
        result = self.request(
            "analyze_batch",
            script=_as_script(changes),
            label=label,
            provenance=provenance,
        )
        return DeltaReport.from_dict(result)

    def campaign(
        self,
        scenarios: Sequence[Mapping[str, str]],
        jobs: int = 1,
        invariants: Sequence[str] = (),
        label: str | None = None,
        provenance: bool = False,
    ) -> CampaignReport:
        """Evaluate explicit scenarios (``{"name", "script"}`` each)
        against the service's base."""
        result = self.request(
            "campaign",
            scenarios=[dict(entry) for entry in scenarios],
            jobs=jobs,
            invariants=list(invariants),
            label=label,
            provenance=provenance,
        )
        return CampaignReport.from_dict(result)

    def explain(
        self,
        changes: ScriptLike,
        edit: int | None = None,
        router: str | None = None,
        prefix: str | None = None,
        dst: str | None = None,
        invariants: Sequence[str] = (),
        top: int = 10,
        label: str | None = None,
    ) -> dict[str, Any]:
        """Causality queries over a provenance-enabled preview."""
        return self.request(
            "explain",
            script=_as_script(changes),
            edit=edit,
            router=router,
            prefix=prefix,
            dst=dst,
            invariants=list(invariants),
            top=top,
            label=label,
        )

    def __repr__(self) -> str:
        return f"ServiceClient({self.address!r})"
