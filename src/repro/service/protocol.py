"""The wire protocol: newline-delimited versioned-JSON frames.

One frame per line, canonical JSON (sorted keys, compact separators),
``\\n``-terminated — readable with ``nc``, parseable by anything.
Every frame is a :mod:`repro.core.serialize` document, so it carries
``schema_version`` and ``kind`` and is rejected by
:class:`~repro.api.errors.SchemaError` on version skew:

====================  =====================================================
frame kind            fields
====================  =====================================================
``request``           ``id`` (caller-chosen int), ``op``, ``params`` (obj)
``response``          ``id``, ``op``, ``cache`` (``"hit"``/``"miss"``/
                      ``null``), ``result`` (a versioned document)
``error``             ``id`` (``null`` if unparseable), ``op``, ``error``
                      = ``{"type": exception class name, "message": str}``
====================  =====================================================

The ``result`` field of a response is byte-identical (as canonical
JSON) to the CLI's ``--json`` envelope ``result`` for the same
question — one schema, two transports.

Errors cross the wire *typed*: the server maps an exception to its
class name (:data:`ERROR_TYPES` holds the public hierarchy), the
client re-raises the matching class — unknown names degrade to
:class:`~repro.api.errors.ReproError`, never to a silent string.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.api.errors import (
    ChangeError,
    ChangeParseError,
    ConvergenceError,
    InvalidChangeError,
    ProtocolError,
    ReproError,
    SchemaError,
)
from repro.core.codec import CodecError
from repro.core.serialize import check_document, document
from repro.topology.model import TopologyError

#: Every op the service answers; anything else is a ProtocolError.
OPS = (
    "ping",
    "stats",
    "preview",
    "analyze_batch",
    "campaign",
    "explain",
    "shutdown",
)

#: Exception classes that cross the wire under their own name.
ERROR_TYPES: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        SchemaError,
        ConvergenceError,
        InvalidChangeError,
        ChangeError,
        ChangeParseError,
        ProtocolError,
        CodecError,
        TopologyError,
    )
}


def parse_address(address: str) -> tuple[str, str, int]:
    """``host:port`` -> ``("tcp", host, port)``; a path -> ``("unix",
    path, 0)``.  Anything else is a ProtocolError."""
    if "/" in address or address.startswith("@"):
        return ("unix", address, 0)
    host, sep, port_text = address.rpartition(":")
    if sep and host:
        try:
            return ("tcp", host, int(port_text))
        except ValueError:
            pass
    raise ProtocolError(
        f"bad service address {address!r}: expected host:port or a "
        "unix socket path (containing '/')"
    )


def encode_frame(doc: Mapping[str, Any]) -> bytes:
    """One canonical-JSON line, ready to write."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def decode_frame(line: bytes, kind: str) -> dict[str, Any]:
    """Parse and validate one received line as a ``kind`` frame."""
    try:
        data = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not JSON: {error}") from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(data).__name__}"
        )
    if kind == "response" and data.get("kind") == "error":
        # Callers expecting a response accept the error alternative;
        # raise_error_frame turns it into the typed exception.
        check_document(data, "error")
        return data
    check_document(data, kind)
    return data


def request(id: int, op: str, params: Mapping[str, Any]) -> dict[str, Any]:
    return document("request", {"id": id, "op": op, "params": dict(params)})


def response(
    id: int | None,
    op: str,
    result: Mapping[str, Any],
    cache: str | None = None,
) -> dict[str, Any]:
    return document(
        "response",
        {"id": id, "op": op, "cache": cache, "result": dict(result)},
    )


def error_frame(
    id: int | None, op: str | None, error: BaseException
) -> dict[str, Any]:
    """Map an exception onto a structured, typed error frame."""
    name = type(error).__name__
    if name not in ERROR_TYPES:
        # Internal classes degrade to the nearest public ancestor so
        # clients always get a raisable type.
        name = "ReproError" if isinstance(error, ReproError) else "ProtocolError"
    return document(
        "error",
        {
            "id": id,
            "op": op,
            "error": {"type": name, "message": str(error)},
        },
    )


def raise_error_frame(frame: Mapping[str, Any]) -> None:
    """Re-raise the typed exception an error frame carries."""
    payload = frame.get("error") or {}
    cls = ERROR_TYPES.get(payload.get("type", ""), ReproError)
    message = payload.get("message", "service error")
    try:
        exc = cls(message)
    except TypeError:
        # Classes with structured constructors (ChangeParseError takes
        # line context) still cross the wire typed: rebuild the bare
        # exception around the rendered message.
        exc = cls.__new__(cls)
        Exception.__init__(exc, message)
    raise exc


def strip_timings(doc: Any) -> Any:
    """A deep copy with every wall-clock field zeroed.

    ``timings`` maps empty; ``duration``/``wall_time`` scalars zero.
    Wall-clock is the one nondeterministic part of result documents;
    the service strips it so responses are deterministic functions of
    (base, changes, options) — the property the result cache's
    byte-identity contract rests on.  Latency is still observable via
    server spans and the ``stats`` op.
    """
    if isinstance(doc, dict):
        out: dict[str, Any] = {}
        for key, value in doc.items():
            if key == "timings" and isinstance(value, dict):
                out[key] = {}
            elif key in ("duration", "wall_time") and isinstance(
                value, (int, float)
            ):
                out[key] = 0.0
            else:
                out[key] = strip_timings(value)
        return out
    if isinstance(doc, list):
        return [strip_timings(item) for item in doc]
    return doc
