"""The asyncio what-if daemon: one converged base, many callers.

:class:`ReproService` wraps one :class:`repro.api.Network`, converges
it once at startup, and serves concurrent requests over asyncio
streams (TCP or Unix socket) using the frame protocol of
:mod:`repro.service.protocol`.

Concurrency model — three tiers, fastest first:

1. **Cache hits** never touch the analyzer: the canonical result
   string comes straight off the LRU and is written back.  Hits,
   ``ping``, and ``stats`` stay fully concurrent with running
   analyses.
2. **Analyses** (preview/analyze_batch/campaign/explain misses) are
   fork-backed against the shared converged analyzer — each request
   evaluates inside a PR-1 undo journal and rolls back, so requests
   are isolated and byte-identical to serial evaluation.  Forks do
   not nest, so analyses serialize on one ``asyncio.Lock`` and run in
   a worker thread, keeping the event loop (and tier 1) responsive.
3. **Campaigns** may additionally fan out worker processes
   (``jobs > 1``) exactly like the in-process facade.

Every request runs under a ``service.<op>`` span (when the service's
network traces) labelled with the request id and cache disposition, so
per-request attribution rides the PR-6 observability layer; work
counts land in the shared metrics registry either way.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Callable, Mapping

from repro.api import Network
from repro.api.errors import ConvergenceError, ProtocolError
from repro.api.explain import explain_answer
from repro.campaign.scenarios import WhatIfScenario
from repro.core import codec
from repro.core.change import Change
from repro.core.change_text import parse_change_batch
from repro.core.serialize import document
from repro.service import protocol
from repro.service.cache import (
    CacheKey,
    ResultCache,
    change_digest,
    options_digest,
)

#: Ops whose results are pure functions of (base, changes, options) —
#: the only ones the result cache may answer.
CACHEABLE_OPS = ("preview", "analyze_batch", "campaign", "explain")


class ReproService:
    """One hot converged base behind a frame-protocol socket."""

    def __init__(self, network: Network, cache_size: int = 256) -> None:
        self.network = network
        self.cache = ResultCache(cache_size)
        # Converge up front: requests must never pay for (or race) the
        # one-time simulation.  Convergence failures surface here, at
        # startup, as ConvergenceError — not per-request.
        self.network.analyzer
        self.base_digest = codec.snapshot_digest(network.snapshot)
        self.requests: dict[str, int] = {}
        self.address: str | None = None
        self._server: asyncio.base_events.Server | None = None
        self._lock: asyncio.Lock | None = None
        self._stopping: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, address: str = "127.0.0.1:0") -> str:
        """Bind and begin serving; returns the bound address."""
        self._loop = asyncio.get_running_loop()
        self._lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        kind, host, port = protocol.parse_address(address)
        if kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=host
            )
            self.address = host
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        return self.address

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` request)."""
        assert self._server is not None and self._stopping is not None
        async with self._server:
            await self._stopping.wait()

    async def run(self, address: str = "127.0.0.1:0") -> None:
        """Bind, announce, and serve until stopped (CLI entry)."""
        bound = await self.start(address)
        print(f"repro service listening on {bound} "
              f"(base {self.base_digest[:12]}, "
              f"{self.network.summary()})", flush=True)
        await self.serve_until_stopped()

    def stop(self) -> None:
        """Stop serving (threadsafe; idempotent)."""
        loop, stopping = self._loop, self._stopping
        if loop is None or stopping is None:
            return
        loop.call_soon_threadsafe(stopping.set)

    def start_in_thread(self, address: str = "127.0.0.1:0") -> str:
        """Serve from a daemon thread; returns the bound address.

        The harness tests and benchmarks drive a real socket server
        this way; production use is ``repro serve``.  Stop with
        :meth:`stop` or a ``shutdown`` request.
        """
        ready: "threading.Event" = threading.Event()
        failure: list[BaseException] = []

        async def _main() -> None:
            try:
                await self.start(address)
            except BaseException as error:  # surface bind errors
                failure.append(error)
                ready.set()
                return
            ready.set()
            await self.serve_until_stopped()

        thread = threading.Thread(
            target=lambda: asyncio.run(_main()), daemon=True
        )
        thread.start()
        ready.wait()
        if failure:
            raise ConvergenceError(
                f"service failed to start: {failure[0]}"
            ) from failure[0]
        assert self.address is not None
        return self.address

    # -- connection handling -------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                frame = await self._answer(line)
                writer.write(protocol.encode_frame(frame))
                await writer.drain()
                if frame.get("kind") == "response" and frame.get("op") == (
                    "shutdown"
                ):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-frame; nothing to answer
        finally:
            writer.close()

    async def _answer(self, line: bytes) -> dict[str, Any]:
        """One request frame in, one response/error frame out."""
        request_id: int | None = None
        op: str | None = None
        try:
            frame = protocol.decode_frame(line, "request")
            request_id = frame.get("id")
            op = frame.get("op")
            params = frame.get("params") or {}
            if op not in protocol.OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; known: {', '.join(protocol.OPS)}"
                )
            if not isinstance(params, dict):
                raise ProtocolError("request 'params' must be an object")
            self.requests[op] = self.requests.get(op, 0) + 1
            self.network.metrics.counter("service.requests").inc()
            self.network.metrics.counter(f"service.op.{op}").inc()
            return await self._dispatch(request_id, op, params)
        except Exception as error:  # typed -> structured error frame
            self.network.metrics.counter("service.errors").inc()
            return protocol.error_frame(request_id, op, error)

    async def _dispatch(
        self, request_id: int | None, op: str, params: Mapping[str, Any]
    ) -> dict[str, Any]:
        if op == "ping":
            return protocol.response(request_id, op, self._pong())
        if op == "stats":
            return protocol.response(request_id, op, self._stats())
        if op == "shutdown":
            assert self._stopping is not None
            self._stopping.set()
            return protocol.response(
                request_id, op, document("pong", {"stopping": True})
            )

        # Cacheable analysis ops: digest the question, try the cache,
        # otherwise compute fork-backed under the analysis lock.
        self.cache.ensure_generation(self.network.analyzer.generation)
        key, work = self._plan(op, params)
        cached = self.cache.get(key)
        if cached is not None:
            self.network.metrics.counter("service.cache_hits").inc()
            with self.network.tracer.span(
                f"service.{op}", id=request_id, cache="hit"
            ):
                return protocol.response(
                    request_id, op, json.loads(cached), cache="hit"
                )
        self.network.metrics.counter("service.cache_misses").inc()
        assert self._lock is not None and self._loop is not None
        async with self._lock:
            with self.network.tracer.span(
                f"service.{op}", id=request_id, cache="miss"
            ):
                result = await self._loop.run_in_executor(None, work)
        canonical = json.dumps(
            protocol.strip_timings(result),
            sort_keys=True,
            separators=(",", ":"),
        )
        self.cache.put(key, canonical)
        return protocol.response(
            request_id, op, json.loads(canonical), cache="miss"
        )

    # -- op implementations --------------------------------------------------

    def _pong(self) -> dict[str, Any]:
        return document(
            "pong",
            {
                "base_digest": self.base_digest,
                "generation": self.network.analyzer.generation,
            },
        )

    def _stats(self) -> dict[str, Any]:
        return document(
            "service-stats",
            {
                "base_digest": self.base_digest,
                "generation": self.network.analyzer.generation,
                "snapshot": self.network.summary(),
                "requests": dict(sorted(self.requests.items())),
                "cache": self.cache.stats(),
                "metrics": self.network.metrics.to_payload(),
            },
        )

    def _plan(
        self, op: str, params: Mapping[str, Any]
    ) -> tuple[CacheKey, Callable[[], dict[str, Any]]]:
        """(cache key, thunk) for one analysis op."""
        if op in ("preview", "analyze_batch"):
            changes = self._parse_script(params)
            label = params.get("label")
            wants_provenance = bool(params.get("provenance", False))
            options = {
                "op": "preview",  # analyze_batch is the same question
                "label": label,
                "provenance": wants_provenance,
            }
            key = (
                self.base_digest,
                change_digest(changes),
                options_digest(options),
            )

            def work() -> dict[str, Any]:
                report = self.network.preview(
                    changes, label=label, provenance=wants_provenance
                )
                return report.to_dict()

            return key, work
        if op == "explain":
            changes = self._parse_script(params)
            query = {
                "op": "explain",
                "label": params.get("label"),
                "edit": params.get("edit"),
                "router": params.get("router"),
                "prefix": params.get("prefix"),
                "dst": params.get("dst"),
                "invariants": list(params.get("invariants") or []),
                "top": int(params.get("top", 10)),
            }
            key = (
                self.base_digest,
                change_digest(changes),
                options_digest(query),
            )

            def work() -> dict[str, Any]:
                report = self.network.preview(
                    changes, label=query["label"], provenance=True
                )
                record = report.provenance
                assert record is not None
                violations = (
                    self.network.check(report, query["invariants"])
                    if query["invariants"]
                    else []
                )
                answer, _ = explain_answer(
                    record,
                    report=report,
                    violations=violations,
                    edit=query["edit"],
                    router=query["router"],
                    prefix=query["prefix"],
                    dst=query["dst"],
                    top=query["top"],
                )
                return document("explain-answer", answer)

            return key, work
        if op == "campaign":
            scenarios, scripts = self._parse_scenarios(params)
            options = {
                "op": "campaign",
                "scenarios": scripts,
                "invariants": list(params.get("invariants") or []),
                "jobs": int(params.get("jobs", 1)),
                "label": params.get("label"),
                "provenance": bool(params.get("provenance", False)),
            }
            key = (self.base_digest, "-", options_digest(options))

            def work() -> dict[str, Any]:
                report = self.network.campaign(
                    scenarios,
                    jobs=options["jobs"],
                    invariants=options["invariants"],
                    label=options["label"] or "",
                    provenance=options["provenance"],
                )
                return report.to_dict()

            return key, work
        raise ProtocolError(f"op {op!r} is not an analysis op")

    def _parse_script(self, params: Mapping[str, Any]) -> list[Change]:
        script = params.get("script")
        if not isinstance(script, str):
            raise ProtocolError("request needs a 'script' string param")
        return parse_change_batch(
            script, label=str(params.get("label") or "request")
        )

    def _parse_scenarios(
        self, params: Mapping[str, Any]
    ) -> tuple[list[WhatIfScenario], list[dict[str, str]]]:
        """Explicit scenario list -> (scenarios, canonical scripts).

        Each entry is ``{"name": ..., "script": ...}`` (``---`` batches
        inside a script evaluate in one recompute pass).  The
        canonical scripts feed the cache key.
        """
        raw = params.get("scenarios")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "campaign needs a non-empty 'scenarios' list of "
                '{"name", "script"} objects'
            )
        scenarios: list[WhatIfScenario] = []
        scripts: list[dict[str, str]] = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict) or not isinstance(
                entry.get("script"), str
            ):
                raise ProtocolError(
                    f"scenarios[{index}] needs a 'script' string"
                )
            name = str(entry.get("name") or f"scenario #{index}")
            changes = parse_change_batch(entry["script"], label=name)
            combined = (
                changes[0]
                if len(changes) == 1
                else Change(
                    edits=[e for change in changes for e in change.edits],
                    label=name,
                )
            )
            scenarios.append(
                WhatIfScenario(
                    name=name,
                    change=combined,
                    kind=str(entry.get("kind") or "service"),
                    changes=tuple(changes) if len(changes) > 1 else (),
                )
            )
            scripts.append({"name": name, "script": entry["script"]})
        return scenarios, scripts
