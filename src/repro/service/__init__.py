"""The always-on what-if service: one hot base, many callers.

Every caller used to pay full session construction and convergence per
process.  This package turns the :class:`repro.api.Network` facade
into a long-lived daemon (``repro serve``) that converges one base and
serves concurrent ``preview``/``analyze_batch``/``campaign``/
``explain`` requests over TCP or a Unix socket:

- :mod:`repro.service.protocol` — newline-delimited versioned-JSON
  frames (``request``/``response``/``error`` kinds riding the
  :mod:`repro.core.serialize` document conventions); typed errors map
  to structured error frames and back.
- :mod:`repro.service.cache` — the digest-keyed LRU result cache:
  ``(snapshot digest, change digest, options digest)`` -> canonical
  result document, invalidated wholesale when the base's generation
  moves.
- :mod:`repro.service.server` — the asyncio daemon.  Request
  *analysis* is fork-backed against the shared converged analyzer
  (PR-1 journal) and serialized by one lock — forks do not nest — so
  overlapping requests are isolated and byte-identical to serial
  evaluation, while cache hits, stats, and socket I/O stay fully
  concurrent.
- :mod:`repro.service.client` — the blocking client
  (``Network.connect()`` / ``repro client``) speaking the same frames
  and decoding the same versioned documents.

Responses are deterministic by construction: wall-clock timing maps
are stripped from result documents (latency lives in server spans and
``stats``), which is what lets a cache hit be byte-identical to the
cold miss that populated it.
"""

from repro.service.cache import ResultCache, change_digest, options_digest
from repro.service.client import ServiceClient
from repro.service.server import ReproService

__all__ = [
    "ReproService",
    "ResultCache",
    "ServiceClient",
    "change_digest",
    "options_digest",
]
