"""Evaluation workloads: configured scenarios and change generators.

:mod:`~repro.workloads.scenarios` turns the raw fabrics from
:mod:`repro.topology.generators` into fully configured snapshots (the
datasets of the evaluation); :mod:`~repro.workloads.changes` draws the
randomized change sequences the benchmarks replay.
"""

from repro.workloads.scenarios import (
    Scenario,
    fat_tree_ospf,
    geant_ospf,
    internet2_bgp,
    line_static,
    ring_ospf,
    random_ospf,
)
from repro.workloads.changes import ChangeGenerator

__all__ = [
    "ChangeGenerator",
    "Scenario",
    "fat_tree_ospf",
    "geant_ospf",
    "internet2_bgp",
    "line_static",
    "random_ospf",
    "ring_ospf",
]
