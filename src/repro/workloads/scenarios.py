"""Configured evaluation scenarios.

Each builder takes a fabric (or its parameters), attaches protocol
configuration, and returns a :class:`Scenario`: the snapshot plus the
structural metadata change generators need (roles, host subnets,
customer attachment points).

Scenarios mirror the paper family's datasets:

- ``fat_tree_ospf``   — a data-center fabric running single-area OSPF
  with ECMP; host subnets live on edge routers.
- ``internet2_bgp``   — the Internet2 WAN running OSPF + iBGP full
  mesh over loopbacks, with eBGP customers hanging off the PoPs (one
  dual-homed customer exercises local-pref policy).
- ``ring_ospf`` / ``random_ospf`` — smaller IGP-only fabrics used by
  tests and micro-benchmarks.
- ``line_static``     — a static-routing chain (pure static substrate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.api import Network

from repro.config.device import DeviceConfig
from repro.config.routemap import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routing import (
    BgpConfig,
    BgpNeighborConfig,
    OspfConfig,
    OspfInterfaceSettings,
    StaticRouteConfig,
)
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.topology.generators import (
    Fabric,
    fat_tree,
    geant,
    internet2,
    line,
    random_gnm,
    ring,
)

WAN_ASN = 64512


@dataclass
class Scenario:
    """A configured snapshot plus generator metadata."""

    name: str
    snapshot: Snapshot
    fabric: Fabric
    customer_asns: dict[str, int] = field(default_factory=dict)
    dual_homed: list[str] = field(default_factory=list)

    @property
    def topology(self):
        return self.snapshot.topology

    def network(self) -> "Network":
        """Wrap this scenario in a :class:`repro.api.Network` session.

        The facade keeps a reference back to this scenario (roles,
        host subnets) so campaign enumerators keep working.
        """
        from repro.api import Network  # runtime import: api builds on us

        net = Network.from_snapshot(self.snapshot)
        net.scenario = self
        return net


def _enable_ospf_everywhere(
    snapshot: Snapshot, fabric: Fabric, area: int = 0, cost: int = 10
) -> None:
    """Run OSPF on every interface: p2p active, host/loopback passive."""
    for router in snapshot.topology.routers():
        config = snapshot.config(router.name)
        if config.ospf is None:
            config.ospf = OspfConfig()
        for interface in router.interfaces.values():
            passive = interface.name.startswith(("host", "lo"))
            config.ospf.interfaces[interface.name] = OspfInterfaceSettings(
                area=area, cost=1 if passive else cost, passive=passive
            )


def fat_tree_ospf(k: int, host_subnets_per_edge: int = 1) -> Scenario:
    """A k-ary fat-tree running single-area OSPF with ECMP."""
    fabric = fat_tree(k, host_subnets_per_edge)
    snapshot = Snapshot(topology=fabric.topology)
    _enable_ospf_everywhere(snapshot, fabric)
    return Scenario(name=fabric.kind, snapshot=snapshot, fabric=fabric)


def ring_ospf(n: int) -> Scenario:
    """An n-router OSPF ring."""
    fabric = ring(n)
    snapshot = Snapshot(topology=fabric.topology)
    _enable_ospf_everywhere(snapshot, fabric)
    return Scenario(name=fabric.kind, snapshot=snapshot, fabric=fabric)


def random_ospf(n: int, m: int, seed: int = 0) -> Scenario:
    """A connected random OSPF fabric."""
    fabric = random_gnm(n, m, seed=seed)
    snapshot = Snapshot(topology=fabric.topology)
    _enable_ospf_everywhere(snapshot, fabric)
    return Scenario(name=fabric.kind, snapshot=snapshot, fabric=fabric)


def geant_ospf(host_subnets_per_pop: int = 1) -> Scenario:
    """The GÉANT-like European WAN running single-area OSPF."""
    fabric = geant(host_subnets_per_pop)
    snapshot = Snapshot(topology=fabric.topology)
    _enable_ospf_everywhere(snapshot, fabric)
    return Scenario(name=fabric.kind, snapshot=snapshot, fabric=fabric)


def line_static(n: int) -> Scenario:
    """A chain routing purely with static routes.

    Every router points left-of-it subnets at its left neighbour and
    right-of-it subnets at its right neighbour, so all host subnets
    are mutually reachable without an IGP.
    """
    fabric = line(n)
    snapshot = Snapshot(topology=fabric.topology)
    names = [f"r{i}" for i in range(n)]
    for index, router in enumerate(names):
        config = snapshot.config(router)
        for other_index, other in enumerate(names):
            if other_index == index:
                continue
            for subnet in fabric.host_subnets.get(other, []):
                if other_index > index:
                    peer = snapshot.topology.interface_peer(router, "eth1")
                else:
                    peer = snapshot.topology.interface_peer(router, "eth0")
                if peer is None or peer.address is None:
                    continue
                config.add_static_route(
                    StaticRouteConfig(prefix=subnet, next_hop=peer.address)
                )
    return Scenario(name=fabric.kind, snapshot=snapshot, fabric=fabric)


def _customer_import_map(config: DeviceConfig, customer_prefixes: list[Prefix],
                         local_pref: int, map_name: str, plist_name: str) -> None:
    """Accept the customer's prefixes (plus the scratch /16 used by
    announce/withdraw workloads), setting local-pref."""
    config.prefix_lists[plist_name] = PrefixList(
        plist_name,
        [PrefixListEntry(prefix=p) for p in customer_prefixes]
        + [PrefixListEntry(prefix=Prefix("10.254.0.0/16"), ge=24, le=24)],
    )
    config.route_maps[map_name] = RouteMap(
        map_name,
        [
            RouteMapClause(
                seq=10,
                match_prefix_list=plist_name,
                set_local_pref=local_pref,
            )
        ],
    )


def internet2_bgp(
    customers_per_pop: int = 1,
    host_subnets_per_pop: int = 1,
    prefixes_per_customer: int = 2,
    redistribute_connected: bool = False,
) -> Scenario:
    """The Internet2 WAN with OSPF + iBGP mesh + eBGP customers.

    Every PoP hosts ``customers_per_pop`` single-homed customer
    routers, each originating ``prefixes_per_customer`` /24s.  One
    extra customer (``cust_dual``) dual-homes to SEAT and NEWY with
    local-pref 200 (primary, SEAT) vs 100 (backup, NEWY) on the WAN's
    import maps — flipping those numbers is the canonical policy
    change of the evaluation.
    """
    fabric = internet2(host_subnets_per_pop)
    snapshot = Snapshot(topology=fabric.topology)
    _enable_ospf_everywhere(snapshot, fabric)
    scenario = Scenario(name="internet2_bgp", snapshot=snapshot, fabric=fabric)
    topology = snapshot.topology
    pops = list(fabric.roles)

    # iBGP full mesh over loopbacks.
    loopbacks = {
        pop: topology.router(pop).interface("lo0").address for pop in pops
    }
    for pop in pops:
        config = snapshot.config(pop)
        config.bgp = BgpConfig(
            asn=WAN_ASN, router_id=loopbacks[pop]  # type: ignore[arg-type]
        )
        for other in pops:
            if other == pop:
                continue
            config.bgp.add_neighbor(
                BgpNeighborConfig(
                    peer_ip=loopbacks[other],  # type: ignore[arg-type]
                    remote_asn=WAN_ASN,
                    next_hop_self=True,
                )
            )

    # eBGP customers.  Addressing: reuse the generator pools by hand —
    # customers take /31 uplinks from 10.200.0.0/16 and originate /24s
    # from 172.31.0.0/16 (disjoint from the fabric's allocations).
    uplink_base = Prefix("10.200.0.0/16").first
    customer_base = Prefix("172.31.0.0/16").first
    next_uplink = [uplink_base]
    next_subnet = [customer_base]
    next_asn = [65001]

    def attach_customer(name: str, pops_to_join: list[str], local_prefs: list[int]) -> None:
        asn = next_asn[0]
        next_asn[0] += 1
        scenario.customer_asns[name] = asn
        topology.add_router(name)
        fabric.roles[name] = "customer"
        config = snapshot.config(name)
        prefixes: list[Prefix] = []
        for index in range(prefixes_per_customer):
            subnet = Prefix(next_subnet[0], 24)
            next_subnet[0] += 256
            gateway = IPv4Address(subnet.first + 1)
            topology.add_interface(name, f"host{index}", gateway, 24)
            prefixes.append(subnet)
        router_id = IPv4Address(next_subnet[0] - 256 + 1)
        config.bgp = BgpConfig(asn=asn, router_id=router_id)
        if redistribute_connected:
            # Customer originates whatever is connected (so interface
            # state drives originations) instead of static network
            # statements.
            config.bgp.redistribute_connected = True
        else:
            for prefix in prefixes:
                config.bgp.originated.append(prefix)
        for slot, (pop, pref) in enumerate(zip(pops_to_join, local_prefs)):
            cust_ip = IPv4Address(next_uplink[0])
            pop_ip = IPv4Address(next_uplink[0] + 1)
            next_uplink[0] += 2
            cust_if = f"up{slot}"
            pop_port = f"cust{len(snapshot.config(pop).bgp.neighbors)}"
            topology.add_interface(name, cust_if, cust_ip, 31)
            topology.add_interface(pop, pop_port, pop_ip, 31)
            topology.add_link(name, cust_if, pop, pop_port)
            config.bgp.add_neighbor(
                BgpNeighborConfig(peer_ip=pop_ip, remote_asn=WAN_ASN)
            )
            pop_config = snapshot.config(pop)
            map_name = f"IMP_{name.upper()}_{slot}"
            plist_name = f"PL_{name.upper()}"
            _customer_import_map(pop_config, prefixes, pref, map_name, plist_name)
            pop_config.bgp.add_neighbor(
                BgpNeighborConfig(
                    peer_ip=cust_ip,
                    remote_asn=asn,
                    import_policy=map_name,
                )
            )
        fabric.host_subnets[name] = prefixes

    for pop in pops:
        for index in range(customers_per_pop):
            attach_customer(f"cust_{pop.lower()}{index}", [pop], [100])
    attach_customer("cust_dual", ["SEAT", "NEWY"], [200, 100])
    scenario.dual_homed.append("cust_dual")
    return scenario
