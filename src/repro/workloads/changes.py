"""Randomized change generators for the evaluation.

A :class:`ChangeGenerator` is seeded and tied to one scenario; every
``random_*`` method returns a :class:`~repro.core.change.Change` that
is valid against the scenario's *current* snapshot (the caller applies
it via the analyzer).  Paired operations (fail/recover, add/remove)
are returned together so benchmarks can restore state between
iterations.
"""

from __future__ import annotations

import random

from repro.config.acl import AclAction, AclRule
from repro.config.routing import StaticRouteConfig
from repro.core.change import (
    AddAclRule,
    AddBgpNeighbor,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    Change,
    EnableInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveBgpNeighbor,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.net.addr import Prefix
from repro.workloads.scenarios import Scenario

SCRATCH_PREFIX_BASE = Prefix("10.254.0.0/16").first


class ChangeGenerator:
    """Draws scenario-valid random changes."""

    def __init__(self, scenario: Scenario, seed: int = 0) -> None:
        self.scenario = scenario
        self.rng = random.Random(seed)
        self._scratch_counter = 0

    # -- helpers -------------------------------------------------------------

    def _core_links(self) -> list:
        """Enabled router-to-router links (excluding customer uplinks)."""
        links = []
        for link in self.scenario.topology.links():
            roles = {
                self.scenario.fabric.roles.get(router, "node")
                for router in link.routers
            }
            if "customer" in roles:
                continue
            links.append(link)
        return links

    def _fresh_prefix(self) -> Prefix:
        """A /24 never used before by this generator."""
        prefix = Prefix(SCRATCH_PREFIX_BASE + 256 * self._scratch_counter, 24)
        self._scratch_counter += 1
        return prefix

    def _random_router(self, role: str | None = None) -> str:
        if role is None:
            names = self.scenario.topology.router_names()
        else:
            names = self.scenario.fabric.routers_with_role(role)
        return self.rng.choice(names)

    def _random_neighbor_hop(self, router: str):
        """(interface, peer address) of a random up neighbour."""
        candidates = []
        for neighbor, link in self.scenario.topology.neighbors(router):
            local_if = link.endpoint_on(router)[1]
            peer = self.scenario.topology.interface_peer(router, local_if)
            if peer is not None and peer.address is not None:
                candidates.append((local_if, peer.address))
        if not candidates:
            raise ValueError(f"{router} has no up neighbours")
        return self.rng.choice(candidates)

    # -- link changes ----------------------------------------------------------

    def random_link_failure(self) -> tuple[Change, Change]:
        """A (fail, recover) pair for one random core link."""
        link = self.rng.choice(self._core_links())
        (r1, i1), (r2, i2) = link.side_a, link.side_b
        down = Change.of(
            LinkDown(r1, r2, i1, i2), label=f"fail {r1}--{r2}"
        )
        up = Change.of(LinkUp(r1, r2, i1, i2), label=f"recover {r1}--{r2}")
        return down, up

    def random_interface_flap(self) -> tuple[Change, Change]:
        """(shutdown, re-enable) of one random cabled core interface."""
        link = self.rng.choice(self._core_links())
        router, interface = self.rng.choice([link.side_a, link.side_b])
        shutdown = Change.of(
            ShutdownInterface(router, interface),
            label=f"{router}[{interface}]: shutdown",
        )
        enable = Change.of(
            EnableInterface(router, interface),
            label=f"{router}[{interface}]: no shutdown",
        )
        return shutdown, enable

    def random_session_flap(self) -> tuple[Change, Change]:
        """(tear down, restore) of one random customer BGP session.

        Removes the customer-side neighbor statement (taking the whole
        session down, per two-sided session semantics) and puts it
        back.
        """
        customers = list(self.scenario.customer_asns)
        if not customers:
            raise ValueError("scenario has no BGP customers")
        customer = self.rng.choice(customers)
        bgp = self.scenario.snapshot.configs[customer].bgp
        if bgp is None or not bgp.neighbors:
            raise ValueError(f"{customer} has no BGP sessions")
        peer_ip = self.rng.choice(sorted(bgp.neighbors, key=lambda ip: ip.value))
        neighbor = bgp.neighbors[peer_ip].clone()
        teardown = Change.of(
            RemoveBgpNeighbor(customer, peer_ip),
            label=f"{customer}: drop session to {peer_ip}",
        )
        restore = Change.of(
            AddBgpNeighbor(customer, neighbor),
            label=f"{customer}: restore session to {peer_ip}",
        )
        return teardown, restore

    # -- static route changes ------------------------------------------------------

    def random_static_route(self, router: str | None = None) -> tuple[Change, Change]:
        """(add, remove) of a fresh static route on one router."""
        if router is None:
            router = self._random_router()
        _interface, next_hop = self._random_neighbor_hop(router)
        route = StaticRouteConfig(prefix=self._fresh_prefix(), next_hop=next_hop)
        add = Change.of(
            AddStaticRoute(router, route), label=f"{router}: +static {route.prefix}"
        )
        remove = Change.of(
            RemoveStaticRoute(router, route),
            label=f"{router}: -static {route.prefix}",
        )
        return add, remove

    def static_batch(self, size: int) -> tuple[Change, Change]:
        """(add, remove) batches of ``size`` fresh statics, spread over
        random routers — the change-size sweep workload."""
        adds: list = []
        removes: list = []
        for _ in range(size):
            router = self._random_router()
            _interface, next_hop = self._random_neighbor_hop(router)
            route = StaticRouteConfig(
                prefix=self._fresh_prefix(), next_hop=next_hop
            )
            adds.append(AddStaticRoute(router, route))
            removes.append(RemoveStaticRoute(router, route))
        return (
            Change(edits=adds, label=f"+{size} statics"),
            Change(edits=removes, label=f"-{size} statics"),
        )

    # -- OSPF changes ---------------------------------------------------------------

    def random_ospf_cost(self) -> Change:
        """Set a random cost on one random OSPF p2p interface."""
        for _ in range(100):
            router = self._random_router()
            config = self.scenario.snapshot.configs.get(router)
            if config is None or config.ospf is None:
                continue
            active = [
                name
                for name, settings in config.ospf.interfaces.items()
                if settings.enabled and not settings.passive
            ]
            if not active:
                continue
            interface = self.rng.choice(active)
            cost = self.rng.randint(1, 50)
            return Change.of(
                SetOspfCost(router, interface, cost),
                label=f"{router}[{interface}]: cost {cost}",
            )
        raise ValueError("no OSPF interfaces found in scenario")

    # -- ACL changes ------------------------------------------------------------------

    def random_acl_block(self) -> tuple[Change, Change]:
        """(block, unblock) of one host subnet on a random transit
        interface.  The ACL is bound outbound and gets a permit-all
        backstop so only the targeted subnet is affected."""
        subnets = self.scenario.fabric.all_host_subnets()
        victim = self.rng.choice(subnets)
        router = self._random_router()
        interfaces = [
            name
            for name, link in (
                (i.name, self.scenario.topology.link_of_interface(router, i.name))
                for i in self.scenario.topology.router(router).interfaces.values()
            )
            if link is not None
        ]
        if not interfaces:
            raise ValueError(f"{router} has no cabled interfaces")
        interface = self.rng.choice(interfaces)
        acl_name = f"BLK_{router}_{interface}".upper()
        deny = AclRule(action=AclAction.DENY, dst=victim)
        allow = AclRule(action=AclAction.PERMIT, dst=Prefix("0.0.0.0/0"))
        block = Change.of(
            AddAclRule(router, acl_name, allow),
            AddAclRule(router, acl_name, deny, position=0),
            BindAcl(router, interface, acl_name, "out"),
            label=f"{router}[{interface}]: block {victim}",
        )
        unblock = Change.of(
            BindAcl(router, interface, None, "out"),
            RemoveAclRule(router, acl_name, deny),
            RemoveAclRule(router, acl_name, allow),
            label=f"{router}[{interface}]: unblock {victim}",
        )
        return block, unblock

    # -- BGP changes -------------------------------------------------------------------

    def random_prefix_flap(self) -> tuple[Change, Change]:
        """(announce, withdraw) of a fresh prefix on a random customer."""
        customers = list(self.scenario.customer_asns)
        if not customers:
            raise ValueError("scenario has no BGP customers")
        customer = self.rng.choice(customers)
        prefix = self._fresh_prefix()
        announce = Change.of(
            AnnouncePrefix(customer, prefix), label=f"{customer}: +{prefix}"
        )
        withdraw = Change.of(
            WithdrawPrefix(customer, prefix), label=f"{customer}: -{prefix}"
        )
        return announce, withdraw

    def dual_homed_pref_flip(self, primary_pref: int = 100, backup_pref: int = 200) -> Change:
        """Swap the dual-homed customer's primary/backup local-prefs."""
        if not self.scenario.dual_homed:
            raise ValueError("scenario has no dual-homed customer")
        customer = self.scenario.dual_homed[0]
        edits = []
        for pop, pref in (("SEAT", primary_pref), ("NEWY", backup_pref)):
            map_name = None
            for slot in (0, 1):
                candidate = f"IMP_{customer.upper()}_{slot}"
                if candidate in self.scenario.snapshot.configs[pop].route_maps:
                    map_name = candidate
                    break
            if map_name is None:
                raise ValueError(f"no import map for {customer} on {pop}")
            edits.append(SetLocalPref(pop, map_name, 10, pref))
        return Change(edits=edits, label=f"{customer}: local-pref flip")
