"""Z-set relations and the fact database.

A relation stores tuples with signed integer multiplicities.  The
*set-semantics view* (a tuple is "present" iff its multiplicity is
positive) is what rule evaluation sees; multiplicities exist so the
incremental engine can run the counting algorithm without extra
bookkeeping structures.

Relations keep hash indexes per bound-position pattern, built lazily
and invalidated by a version counter on every write — the join
planner asks for exactly the index it needs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

Row = tuple[Any, ...]


class Relation:
    """A named relation of fixed arity with Z-set multiplicities."""

    __slots__ = ("name", "arity", "_rows", "_version", "_indexes")

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._rows: dict[Row, int] = {}
        self._version = 0
        self._indexes: dict[tuple[int, ...], tuple[int, dict[Row, list[Row]]]] = {}

    # -- writes ----------------------------------------------------------

    def add(self, row: Row, multiplicity: int = 1) -> int:
        """Adjust a row's multiplicity; returns the set-semantics delta.

        The return value is +1 if the row just became present, -1 if it
        just became absent, 0 otherwise.
        """
        if len(row) != self.arity:
            raise ValueError(
                f"{self.name}: arity mismatch, expected {self.arity}, "
                f"got {len(row)} in {row!r}"
            )
        if multiplicity == 0:
            return 0
        old = self._rows.get(row, 0)
        new = old + multiplicity
        if new == 0:
            self._rows.pop(row, None)
        else:
            self._rows[row] = new
        self._version += 1
        if old <= 0 < new:
            return 1
        if new <= 0 < old:
            return -1
        return 0

    def discard(self, row: Row) -> int:
        """Force a row absent regardless of count; set-semantics delta."""
        old = self._rows.pop(row, 0)
        if old != 0:
            self._version += 1
        return -1 if old > 0 else 0

    def load(self, rows: Iterable[Row]) -> None:
        """Bulk-insert rows with multiplicity one each."""
        for row in rows:
            self.add(row)

    def clear(self) -> None:
        """Remove everything."""
        if self._rows:
            self._rows.clear()
            self._version += 1

    # -- reads -----------------------------------------------------------

    def __contains__(self, row: Row) -> bool:
        return self._rows.get(row, 0) > 0

    def multiplicity(self, row: Row) -> int:
        """The signed multiplicity (0 if never stored)."""
        return self._rows.get(row, 0)

    def rows(self) -> Iterator[Row]:
        """Present rows (multiplicity > 0)."""
        for row, count in self._rows.items():
            if count > 0:
                yield row

    def snapshot(self) -> set[Row]:
        """The present rows as a frozen set copy."""
        return {row for row, count in self._rows.items() if count > 0}

    def __len__(self) -> int:
        return sum(1 for count in self._rows.values() if count > 0)

    @property
    def version(self) -> int:
        """Write counter; bumps on every mutation."""
        return self._version

    def index(self, positions: tuple[int, ...]) -> dict[Row, list[Row]]:
        """Hash index keyed by the values at ``positions``.

        Cached until the next write.  An empty position tuple returns a
        single-entry index keyed by ``()``.
        """
        cached = self._indexes.get(positions)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        built: dict[Row, list[Row]] = {}
        for row in self.rows():
            key = tuple(row[i] for i in positions)
            built.setdefault(key, []).append(row)
        self._indexes[positions] = (self._version, built)
        return built

    def lookup(self, positions: tuple[int, ...], key: Row) -> list[Row]:
        """Rows whose values at ``positions`` equal ``key``."""
        return self.index(positions).get(key, [])

    def __str__(self) -> str:
        return f"{self.name}/{self.arity} ({len(self)} rows)"


class Database:
    """A collection of relations keyed by name."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def relation(self, name: str, arity: int | None = None) -> Relation:
        """Fetch (creating if ``arity`` given) a relation.

        Raises KeyError for an unknown relation when no arity is
        supplied, and ValueError on arity conflicts.
        """
        existing = self._relations.get(name)
        if existing is not None:
            if arity is not None and existing.arity != arity:
                raise ValueError(
                    f"relation {name!r} exists with arity {existing.arity}, "
                    f"requested {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown relation {name!r}")
        created = Relation(name, arity)
        self._relations[name] = created
        return created

    def has_relation(self, name: str) -> bool:
        """True if the relation exists."""
        return name in self._relations

    def names(self) -> list[str]:
        """All relation names."""
        return list(self._relations)

    def drop(self, name: str) -> None:
        """Delete a relation entirely."""
        self._relations.pop(name, None)

    def clone(self) -> "Database":
        """Deep copy (multiplicities preserved)."""
        copy = Database()
        for name, relation in self._relations.items():
            fresh = copy.relation(name, relation.arity)
            for row, count in relation._rows.items():
                fresh._rows[row] = count
        return copy

    def total_rows(self) -> int:
        """Sum of present-row counts across relations."""
        return sum(len(relation) for relation in self._relations.values())

    def __str__(self) -> str:
        parts = ", ".join(str(r) for r in self._relations.values())
        return f"Database[{parts}]"
