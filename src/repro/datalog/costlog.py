"""Monotone cost Datalog: Datalog over the (min, +) semiring.

Plain Datalog cannot express shortest paths (min-aggregation inside
recursion is not stratifiable).  Control-plane-as-Datalog systems use
a *monotone* extension instead: every tuple of a cost relation carries
a numeric cost, rules combine body costs with a monotone function, and
the least fixpoint keeps the minimum cost per key.  Because the
combine functions are non-decreasing, the fixpoint can be computed
Dijkstra-style — settle tuples in global cost order, never revisit.

This module implements that engine.  The OSPF layer uses it (in
tests/benchmarks) as the semantic reference for SPF, mirroring how the
paper's system expresses route computation as Datalog rules::

    dist(S, S) min= 0                      :- node(S)
    dist(S, V) min= dist(S, U) + link(U,V)

Plain (cost-free) relations from a :class:`~repro.datalog.database
.Database` may appear in rule bodies as filters/joins.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.datalog.ast import (
    Atom,
    Binding,
    Comparison,
    DatalogError,
    Variable,
    is_variable,
)
from repro.datalog.database import Database, Row


@dataclass(frozen=True)
class CostAtom:
    """A body atom over a cost relation.

    Matches key tuples of ``atom.relation``; the matched tuple's cost
    is bound to ``cost_var`` for use in the rule's cost expression.
    """

    atom: Atom
    cost_var: Variable

    def __str__(self) -> str:
        return f"{self.atom}@{self.cost_var}"


class CostRule:
    """``head min= cost_expr :- body``.

    ``body`` mixes :class:`CostAtom` (cost relations), plain
    :class:`~repro.datalog.ast.Atom` (set relations from the plain
    database), and :class:`~repro.datalog.ast.Comparison` guards.
    ``cost`` maps the binding (cost variables included) to the derived
    cost; it must be monotone non-decreasing in every cost variable —
    the engine's correctness depends on it.
    """

    def __init__(
        self,
        head: Atom,
        body: Iterable[CostAtom | Atom | Comparison],
        cost: Callable[[Binding], float],
    ) -> None:
        self.head = head
        self.body = tuple(body)
        self.cost = cost
        self.cost_atoms = [item for item in self.body if isinstance(item, CostAtom)]
        self.plain_atoms = [item for item in self.body if isinstance(item, Atom)]
        self.guards = [item for item in self.body if isinstance(item, Comparison)]
        bound: set[Variable] = set()
        for item in self.body:
            if isinstance(item, CostAtom):
                bound.update(item.atom.variables())
                bound.add(item.cost_var)
            elif isinstance(item, Atom):
                bound.update(item.variables())
        unsafe = self.head.variables() - bound
        if unsafe:
            raise DatalogError(
                f"cost rule {self.head}: unsafe variables "
                f"{{{', '.join(v.name for v in unsafe)}}}"
            )

    def __str__(self) -> str:
        body_text = ", ".join(str(item) for item in self.body)
        return f"{self.head} min= cost :- {body_text}."


CostTable = dict[str, dict[Row, float]]


class CostProgram:
    """A set of cost rules evaluated to the least (min, +) fixpoint."""

    def __init__(self, rules: Iterable[CostRule]) -> None:
        self.rules = list(rules)
        self.idb = {rule.head.relation for rule in self.rules}
        # Occurrence index: cost relation -> [(rule, cost-atom index)].
        self._uses: dict[str, list[tuple[CostRule, int]]] = {}
        for rule in self.rules:
            for index, cost_atom in enumerate(rule.cost_atoms):
                self._uses.setdefault(cost_atom.atom.relation, []).append(
                    (rule, index)
                )

    def evaluate(
        self,
        database: Database,
        base_costs: CostTable | None = None,
    ) -> CostTable:
        """Least fixpoint over plain facts plus base cost facts.

        ``base_costs`` provides EDB cost relations (e.g. weighted
        edges).  Returns the full cost table, EDB relations included.
        """
        settled: CostTable = {}
        heap: list[tuple[float, str, Row]] = []
        best: dict[tuple[str, Row], float] = {}

        def offer(relation: str, key: Row, cost: float) -> None:
            slot = (relation, key)
            if cost < best.get(slot, float("inf")):
                best[slot] = cost
                heapq.heappush(heap, (cost, relation, key))

        for relation, rows in (base_costs or {}).items():
            for key, cost in rows.items():
                offer(relation, key, cost)

        # Rules with no cost atoms seed from plain facts alone.
        for rule in self.rules:
            if rule.cost_atoms:
                continue
            for binding in self._match_plain(rule, database, {}):
                if all(guard.holds(binding) for guard in rule.guards):
                    offer(
                        rule.head.relation,
                        rule.head.substitute(binding),
                        rule.cost(binding),
                    )

        while heap:
            cost, relation, key = heapq.heappop(heap)
            table = settled.setdefault(relation, {})
            if key in table:
                continue  # already settled at a lower or equal cost
            table[key] = cost
            for rule, driver_index in self._uses.get(relation, ()):
                driver = rule.cost_atoms[driver_index]
                binding = driver.atom.match(key, {})
                if binding is None:
                    continue
                binding[driver.cost_var] = cost
                self._fire(rule, driver_index, binding, database, settled, offer)
        return settled

    # -- rule firing -------------------------------------------------------

    def _fire(
        self,
        rule: CostRule,
        driver_index: int,
        binding: Binding,
        database: Database,
        settled: CostTable,
        offer: Callable[[str, Row, float], None],
    ) -> None:
        """Extend a driver binding over the remaining body and derive."""

        def extend_cost_atoms(index: int, current: Binding) -> Iterable[Binding]:
            if index == len(rule.cost_atoms):
                yield current
                return
            if index == driver_index:
                yield from extend_cost_atoms(index + 1, current)
                return
            cost_atom = rule.cost_atoms[index]
            table = settled.get(cost_atom.atom.relation, {})
            # Settled tables are plain dicts; scan with match (costly
            # only for very wide rules, which routing rules are not).
            for key, key_cost in table.items():
                extended = cost_atom.atom.match(key, current)
                if extended is None:
                    continue
                if (
                    cost_atom.cost_var in extended
                    and extended[cost_atom.cost_var] != key_cost
                ):
                    continue
                extended[cost_atom.cost_var] = key_cost
                yield from extend_cost_atoms(index + 1, extended)

        for with_costs in extend_cost_atoms(0, binding):
            for full in self._match_plain(rule, database, with_costs):
                if all(guard.holds(full) for guard in rule.guards):
                    offer(
                        rule.head.relation,
                        rule.head.substitute(full),
                        rule.cost(full),
                    )

    def _match_plain(
        self, rule: CostRule, database: Database, binding: Binding
    ) -> Iterable[Binding]:
        """Join the rule's plain atoms against the database."""

        def walk(index: int, current: Binding) -> Iterable[Binding]:
            if index == len(rule.plain_atoms):
                yield current
                return
            atom = rule.plain_atoms[index]
            if not database.has_relation(atom.relation):
                return
            relation = database.relation(atom.relation)
            bound_vars = {
                term
                for term in atom.terms
                if is_variable(term) and term in current
            }
            positions = atom.bound_positions(bound_vars)
            key = tuple(
                current[t] if is_variable(t) else t
                for i, t in enumerate(atom.terms)
                if i in positions
            )
            for row in relation.lookup(positions, key):
                extended = atom.match(row, current)
                if extended is not None:
                    yield from walk(index + 1, extended)

        yield from walk(0, dict(binding))


def sum_of(*terms: Any) -> Callable[[Binding], float]:
    """Cost expression: the sum of variables and constants."""

    def compute(binding: Binding) -> float:
        total = 0.0
        for term in terms:
            total += binding[term] if is_variable(term) else term
        return total

    return compute


CONSTANT_ZERO = sum_of()
