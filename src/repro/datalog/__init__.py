"""A from-scratch Datalog engine with incremental evaluation.

This is the reproduction's stand-in for the differential-Datalog
runtime the paper builds on.  It provides:

- :mod:`~repro.datalog.ast` — terms, atoms, literals, rules, programs,
  with safety checking and body planning;
- :mod:`~repro.datalog.database` — Z-set relations (tuple -> signed
  multiplicity) with on-demand hash indexes;
- :mod:`~repro.datalog.engine` — stratified semi-naive evaluation with
  negation and comparison/assignment builtins;
- :mod:`~repro.datalog.incremental` — incremental view maintenance:
  counting for non-recursive strata, DRed (delete/re-derive) for
  recursive strata.

Quick taste::

    from repro.datalog import Variable as V, Program, Rule, atom, Database

    X, Y, Z = V("X"), V("Y"), V("Z")
    program = Program([
        Rule(atom("path", X, Y), [atom("edge", X, Y)]),
        Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
    ])
    db = Database()
    db.relation("edge", 2).load([(1, 2), (2, 3)])
    program.evaluate(db)
    assert (1, 3) in db.relation("path", 2)
"""

from repro.datalog.ast import (
    Atom,
    Comparison,
    DatalogError,
    Let,
    Negation,
    Program,
    Rule,
    Variable,
    atom,
    negated,
)
from repro.datalog.database import Database, Relation
from repro.datalog.incremental import Delta, IncrementalProgram

__all__ = [
    "Atom",
    "Comparison",
    "Database",
    "DatalogError",
    "Delta",
    "IncrementalProgram",
    "Let",
    "Negation",
    "Program",
    "Relation",
    "Rule",
    "Variable",
    "atom",
    "negated",
]
