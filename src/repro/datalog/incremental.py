"""Incremental Datalog: counting + DRed view maintenance.

Given a program that has been fully evaluated once, applying a batch of
EDB insertions/deletions updates every IDB relation *incrementally*:

- **Non-recursive strata** use the counting algorithm.  Full evaluation
  stored one unit of multiplicity per derivation; a change batch walks
  each rule once per affected body step, with the classic telescoping
  view assignment (steps before the driver read the *new* state, steps
  after it read the *old* state, the driver reads the delta), and
  adjusts head multiplicities by the signed contribution.  A head row
  flips in the set-semantics view exactly when its count crosses zero.

- **Recursive strata** (one SCC each) use DRed: overdelete everything
  whose old derivation touched a deleted row (or a row inserted into a
  negated relation), then rederive what is still supported, then
  propagate insertions semi-naively.

The returned :class:`Delta` lists the set-semantics flips of every
relation, EDB included, so callers can chain analyses off the output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.datalog.ast import (
    Atom,
    Binding,
    Comparison,
    DatalogError,
    Let,
    Negation,
    Program,
    Rule,
)
from repro.datalog.database import Database, Row
from repro.datalog.engine import (
    FullView,
    OldView,
    SetView,
    View,
    _ground_key,
    evaluate_program,
)

Flips = dict[str, dict[Row, int]]


@dataclass
class Delta:
    """Set-semantics changes per relation after one update batch."""

    inserts: dict[str, set[Row]] = field(default_factory=dict)
    deletes: dict[str, set[Row]] = field(default_factory=dict)

    @classmethod
    def from_flips(cls, flips: Flips) -> "Delta":
        delta = cls()
        for relation, rows in flips.items():
            for row, sign in rows.items():
                if sign > 0:
                    delta.inserts.setdefault(relation, set()).add(row)
                elif sign < 0:
                    delta.deletes.setdefault(relation, set()).add(row)
        return delta

    def inserted(self, relation: str) -> set[Row]:
        """Rows that appeared in ``relation``."""
        return self.inserts.get(relation, set())

    def deleted(self, relation: str) -> set[Row]:
        """Rows that vanished from ``relation``."""
        return self.deletes.get(relation, set())

    def is_empty(self) -> bool:
        """True if nothing changed anywhere."""
        return not any(self.inserts.values()) and not any(self.deletes.values())

    def touched_relations(self) -> set[str]:
        """Relations with at least one flip."""
        touched = {rel for rel, rows in self.inserts.items() if rows}
        touched |= {rel for rel, rows in self.deletes.items() if rows}
        return touched

    def size(self) -> int:
        """Total number of flips."""
        return sum(len(rows) for rows in self.inserts.values()) + sum(
            len(rows) for rows in self.deletes.values()
        )

    def __str__(self) -> str:
        parts = []
        for relation in sorted(self.touched_relations()):
            ins = len(self.inserts.get(relation, ()))
            dels = len(self.deletes.get(relation, ()))
            parts.append(f"{relation}(+{ins}/-{dels})")
        return "Delta[" + ", ".join(parts) + "]"


def _record_flip(flips: Flips, relation: str, row: Row, sign: int) -> None:
    """Merge one set-semantics flip, cancelling insert+delete pairs."""
    if sign == 0:
        return
    per_relation = flips.setdefault(relation, {})
    net = per_relation.get(row, 0) + sign
    if net == 0:
        per_relation.pop(row, None)
    else:
        per_relation[row] = 1 if net > 0 else -1


def _delta_bindings(
    rule: Rule,
    view_for: "StepViews",
    driver_step: int | None = None,
    driver_view: View | None = None,
    initial_binding: Binding | None = None,
) -> Iterator[Binding]:
    """Enumerate body bindings with one plan step optionally overridden.

    When ``driver_step`` points at a positive atom, that step draws its
    rows from ``driver_view``.  When it points at a negation, the
    negation check is replaced by *positive membership* of the grounded
    atom in ``driver_view`` (the set of rows whose negation status
    flipped).  All other steps consult ``view_for``.
    """
    plan = rule.plan
    bound_before = rule.bound_before

    def walk(step: int, binding: Binding) -> Iterator[Binding]:
        if step == len(plan):
            yield binding
            return
        item = plan[step]
        if isinstance(item, Atom):
            view = (
                driver_view
                if step == driver_step and driver_view is not None
                else view_for(step, item)
            )
            positions = item.bound_positions(set(bound_before[step]))
            key = _ground_key(item, positions, binding)
            for row in view.lookup(positions, key):
                extended = item.match(row, binding)
                if extended is not None:
                    yield from walk(step + 1, extended)
        elif isinstance(item, Negation):
            grounded = item.atom.substitute(binding)
            if step == driver_step and driver_view is not None:
                # Driver on a negation: require the grounded atom to be
                # one of the flipped rows (sign handled by the caller).
                if driver_view.contains(grounded):
                    yield from walk(step + 1, binding)
            else:
                if not view_for(step, item.atom).contains(grounded):
                    yield from walk(step + 1, binding)
        elif isinstance(item, Comparison):
            if item.holds(binding):
                yield from walk(step + 1, binding)
        else:  # Let
            value = item.evaluate(binding)
            if item.var in binding:
                if binding[item.var] == value:
                    yield from walk(step + 1, binding)
            else:
                extended = dict(binding)
                extended[item.var] = value
                yield from walk(step + 1, extended)

    yield from walk(0, dict(initial_binding or {}))


class StepViews:
    """Per-step view chooser for one rule walk.

    ``mode_for(relation)`` returns "new" or "old"; relations without
    recorded flips always read "new" (identical to old).
    """

    def __init__(
        self,
        database: Database,
        flips: Flips,
        old_relations: set[str] | None = None,
        old_before_step: int | None = None,
    ) -> None:
        self.database = database
        self.flips = flips
        self.old_relations = old_relations or set()
        self.old_before_step = old_before_step
        self._full: dict[str, FullView] = {}
        self._old: dict[str, OldView] = {}

    def full_view(self, relation: str) -> FullView:
        view = self._full.get(relation)
        if view is None:
            view = FullView(self.database.relation(relation))
            self._full[relation] = view
        return view

    def old_view(self, relation: str) -> View:
        per_relation = self.flips.get(relation)
        if not per_relation:
            return self.full_view(relation)
        view = self._old.get(relation)
        if view is None:
            view = OldView(self.database.relation(relation), per_relation)
            self._old[relation] = view
        return view

    def __call__(self, step: int, item: Atom) -> View:
        wants_old = item.relation in self.old_relations
        if self.old_before_step is not None:
            # Telescoping: steps after the driver read the old state of
            # *changed* relations; steps before read the new state.
            wants_old = wants_old or (
                step > self.old_before_step and item.relation in self.flips
            )
        if wants_old:
            return self.old_view(item.relation)
        return self.full_view(item.relation)


class IncrementalProgram:
    """A materialized Datalog program supporting delta updates."""

    def __init__(
        self,
        program: Program,
        database: Database,
        evaluate: bool = True,
    ) -> None:
        self.program = program
        self.database = database
        if evaluate:
            evaluate_program(program, database)

    # -- public API -------------------------------------------------------

    def apply(
        self,
        inserts: Mapping[str, Iterable[Row]] | None = None,
        deletes: Mapping[str, Iterable[Row]] | None = None,
    ) -> Delta:
        """Apply EDB changes and propagate through every stratum.

        Inserting an already-present row or deleting an absent one is a
        no-op (EDB relations are sets).  Changing an IDB relation
        directly is an error — derive it through rules instead.
        """
        flips: Flips = {}
        for relation_name, rows in (deletes or {}).items():
            self._check_edb(relation_name)
            relation = self.database.relation(relation_name)
            for row in rows:
                if row in relation:
                    relation.discard(row)
                    _record_flip(flips, relation_name, row, -1)
        for relation_name, rows in (inserts or {}).items():
            self._check_edb(relation_name)
            relation = self.database.relation(relation_name)
            for row in rows:
                if row not in relation:
                    relation.add(row, 1)
                    _record_flip(flips, relation_name, row, +1)

        for level in range(len(self.program.strata)):
            if not self._stratum_inputs_changed(level, flips):
                continue
            if self.program.stratum_is_recursive(level):
                self._update_recursive(level, flips)
            else:
                self._update_flat(level, flips)
        return Delta.from_flips(flips)

    # -- helpers ------------------------------------------------------------

    def _check_edb(self, relation_name: str) -> None:
        if relation_name in self.program.idb:
            raise DatalogError(
                f"cannot change derived relation {relation_name!r} directly"
            )

    def _stratum_inputs_changed(self, level: int, flips: Flips) -> bool:
        changed = {rel for rel, rows in flips.items() if rows}
        if not changed:
            return False
        for rule in self.program.rules_for_stratum(level):
            if rule.body_relations() & changed:
                return True
        return False

    # -- counting (non-recursive strata) -------------------------------------

    def _update_flat(self, level: int, flips: Flips) -> None:
        stratum_flips: Flips = {}
        for rule in self.program.rules_for_stratum(level):
            head_relation = self.database.relation(rule.head.relation)
            for step, item in enumerate(rule.plan):
                if isinstance(item, Atom):
                    changed = flips.get(item.relation)
                    if not changed:
                        continue
                    self._drive_flat_step(
                        rule, step, changed, flips, stratum_flips,
                        head_relation, negation=False,
                    )
                elif isinstance(item, Negation):
                    changed = flips.get(item.atom.relation)
                    if not changed:
                        continue
                    self._drive_flat_step(
                        rule, step, changed, flips, stratum_flips,
                        head_relation, negation=True,
                    )
        for relation_name, rows in stratum_flips.items():
            for row, sign in rows.items():
                _record_flip(flips, relation_name, row, sign)

    def _drive_flat_step(
        self,
        rule: Rule,
        step: int,
        changed: dict[Row, int],
        flips: Flips,
        stratum_flips: Flips,
        head_relation,
        negation: bool,
    ) -> None:
        inserted = [row for row, sign in changed.items() if sign > 0]
        deleted = [row for row, sign in changed.items() if sign < 0]
        # A row inserted into a negated relation removes derivations; a
        # deleted one adds them.  For positive atoms signs are direct.
        passes = (
            ((inserted, -1), (deleted, +1))
            if negation
            else ((inserted, +1), (deleted, -1))
        )
        views = StepViews(self.database, flips, old_before_step=step)
        for rows, sign in passes:
            if not rows:
                continue
            driver = SetView(rows)
            for binding in _delta_bindings(rule, views, step, driver):
                head_row = rule.head.substitute(binding)
                flip = head_relation.add(head_row, sign)
                _record_flip(stratum_flips, rule.head.relation, head_row, flip)

    # -- DRed (recursive strata) ----------------------------------------------

    def _update_recursive(self, level: int, flips: Flips) -> None:
        stratum = set(self.program.strata[level])
        rules = self.program.rules_for_stratum(level)
        stratum_flips: Flips = {}

        overdeleted = self._overdelete(stratum, rules, flips)
        for relation_name, rows in overdeleted.items():
            relation = self.database.relation(relation_name)
            for row in rows:
                relation.discard(row)
                _record_flip(stratum_flips, relation_name, row, -1)

        self._reinsert(stratum, rules, flips, overdeleted, stratum_flips)

        for relation_name, rows in stratum_flips.items():
            for row, sign in rows.items():
                _record_flip(flips, relation_name, row, sign)

    def _overdelete(
        self,
        stratum: set[str],
        rules: list[Rule],
        flips: Flips,
    ) -> dict[str, set[Row]]:
        """Phase 1: everything whose old derivation is now suspect.

        Evaluated entirely over the *old* database: lower-strata
        relations are viewed pre-flip; stratum relations are still
        physically unmodified.
        """
        overdeleted: dict[str, set[Row]] = {name: set() for name in stratum}
        views = StepViews(
            self.database, flips,
            old_relations={rel for rel in flips if rel not in stratum},
        )

        def seed() -> dict[str, set[Row]]:
            fresh: dict[str, set[Row]] = {name: set() for name in stratum}
            for rule in rules:
                head_name = rule.head.relation
                for step, item in enumerate(rule.plan):
                    if isinstance(item, Atom):
                        if item.relation in stratum:
                            continue  # same-stratum drivers come later
                        changed = flips.get(item.relation)
                        if not changed:
                            continue
                        rows = [r for r, s in changed.items() if s < 0]
                    elif isinstance(item, Negation):
                        changed = flips.get(item.atom.relation)
                        if not changed:
                            continue
                        rows = [r for r, s in changed.items() if s > 0]
                    else:
                        continue
                    if not rows:
                        continue
                    for binding in _delta_bindings(
                        rule, views, step, SetView(rows)
                    ):
                        head_row = rule.head.substitute(binding)
                        if (
                            head_row in self.database.relation(head_name)
                            and head_row not in overdeleted[head_name]
                        ):
                            fresh[head_name].add(head_row)
            return fresh

        frontier = seed()
        while any(frontier.values()):
            for name, rows in frontier.items():
                overdeleted[name].update(rows)
            next_frontier: dict[str, set[Row]] = {name: set() for name in stratum}
            frontier_views = {
                name: SetView(rows) for name, rows in frontier.items()
            }
            for rule in rules:
                head_name = rule.head.relation
                for step, item in enumerate(rule.plan):
                    if not isinstance(item, Atom) or item.relation not in stratum:
                        continue
                    driver = frontier_views.get(item.relation)
                    if driver is None or not driver._rows:
                        continue
                    for binding in _delta_bindings(rule, views, step, driver):
                        head_row = rule.head.substitute(binding)
                        if (
                            head_row in self.database.relation(head_name)
                            and head_row not in overdeleted[head_name]
                        ):
                            next_frontier[head_name].add(head_row)
            frontier = next_frontier
        return overdeleted

    def _reinsert(
        self,
        stratum: set[str],
        rules: list[Rule],
        flips: Flips,
        overdeleted: dict[str, set[Row]],
        stratum_flips: Flips,
    ) -> None:
        """Phases 2+3: rederive survivors, then propagate insertions.

        Everything is evaluated over the *new* database (lower strata
        already updated, stratum post-overdeletion).
        """
        new_views = StepViews(self.database, flips)
        frontier: dict[str, set[Row]] = {name: set() for name in stratum}

        def admit(relation_name: str, row: Row) -> None:
            relation = self.database.relation(relation_name)
            if row not in relation:
                relation.add(row, 1)
                _record_flip(stratum_flips, relation_name, row, +1)
                frontier[relation_name].add(row)

        # Phase 2a: rederivation of overdeleted rows still supported.
        for relation_name, rows in overdeleted.items():
            for row in rows:
                if self._derivable(relation_name, row, new_views):
                    admit(relation_name, row)

        # Phase 2b: brand-new derivations enabled by lower-strata flips.
        for rule in rules:
            for step, item in enumerate(rule.plan):
                if isinstance(item, Atom):
                    if item.relation in stratum:
                        continue
                    changed = flips.get(item.relation)
                    if not changed:
                        continue
                    rows = [r for r, s in changed.items() if s > 0]
                elif isinstance(item, Negation):
                    changed = flips.get(item.atom.relation)
                    if not changed:
                        continue
                    rows = [r for r, s in changed.items() if s < 0]
                else:
                    continue
                if not rows:
                    continue
                for binding in _delta_bindings(
                    rule, new_views, step, SetView(rows)
                ):
                    admit(rule.head.relation, rule.head.substitute(binding))

        # Phase 3: semi-naive propagation inside the stratum.
        while any(frontier.values()):
            current = frontier
            frontier = {name: set() for name in stratum}
            current_views = {
                name: SetView(rows) for name, rows in current.items()
            }
            for rule in rules:
                for step, item in enumerate(rule.plan):
                    if not isinstance(item, Atom) or item.relation not in stratum:
                        continue
                    driver = current_views.get(item.relation)
                    if driver is None or not driver._rows:
                        continue
                    for binding in _delta_bindings(
                        rule, new_views, step, driver
                    ):
                        admit(rule.head.relation, rule.head.substitute(binding))

    def _derivable(
        self, relation_name: str, row: Row, views: StepViews
    ) -> bool:
        """True if some rule derives ``row`` from the current state."""
        for rule in self.program.rules_by_head.get(relation_name, ()):
            initial = rule.head.match(row, {})
            if initial is None:
                continue
            for _ in _delta_bindings(rule, views, initial_binding=initial):
                return True
        return False
