"""Datalog abstract syntax: terms, atoms, rules, programs.

Terms are either :class:`Variable` instances or arbitrary hashable
Python constants.  Rule bodies may contain positive atoms, negated
atoms (:class:`Negation`), comparisons, and assignments
(:class:`Let`).  Rules are *planned* at construction: the body is
reordered so that every negation, comparison, and assignment runs only
once its variables are bound, and safety (all head variables bound by
positive atoms or assignments) is verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence


class DatalogError(ValueError):
    """Raised for malformed rules or unstratifiable programs."""


class Variable:
    """A Datalog variable, identified by name."""

    __slots__ = ("name",)
    _interned: dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        instance = super().__new__(cls)
        object.__setattr__(instance, "name", name)
        cls._interned[name] = instance
        return instance

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Variable is immutable")

    def __repr__(self) -> str:
        return self.name


def is_variable(term: object) -> bool:
    """True if the term is a Datalog variable."""
    return isinstance(term, Variable)


Binding = dict[Variable, Any]


@dataclass(frozen=True)
class Atom:
    """``relation(t1, ..., tn)`` — in a head or positive body position."""

    relation: str
    terms: tuple[Any, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Variable]:
        """All variables appearing in the atom."""
        return {t for t in self.terms if is_variable(t)}

    def substitute(self, binding: Binding) -> tuple[Any, ...]:
        """Ground the terms under ``binding`` (must be complete)."""
        return tuple(
            binding[t] if is_variable(t) else t for t in self.terms
        )

    def match(self, row: Sequence[Any], binding: Binding) -> Binding | None:
        """Extend ``binding`` to unify the atom with a concrete row.

        Returns the extended binding, or None on mismatch.  The input
        binding is not mutated.
        """
        extended = dict(binding)
        for term, value in zip(self.terms, row):
            if is_variable(term):
                if term in extended:
                    if extended[term] != value:
                        return None
                else:
                    extended[term] = value
            elif term != value:
                return None
        return extended

    def bound_positions(self, bound_vars: set[Variable]) -> tuple[int, ...]:
        """Term positions that are constants or already-bound vars."""
        positions = []
        for index, term in enumerate(self.terms):
            if not is_variable(term) or term in bound_vars:
                positions.append(index)
        return tuple(positions)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atom(relation: str, *terms: Any) -> Atom:
    """Convenience constructor: ``atom("edge", X, Y)``."""
    return Atom(relation, tuple(terms))


@dataclass(frozen=True)
class Negation:
    """``not relation(...)`` — stratified negative body literal."""

    atom: Atom

    def variables(self) -> set[Variable]:
        return self.atom.variables()

    def __str__(self) -> str:
        return f"not {self.atom}"


def negated(relation: str, *terms: Any) -> Negation:
    """Convenience constructor for a negated literal."""
    return Negation(Atom(relation, tuple(terms)))


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison:
    """A comparison between two (possibly variable) terms."""

    op: str
    left: Any
    right: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise DatalogError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> set[Variable]:
        return {t for t in (self.left, self.right) if is_variable(t)}

    def holds(self, binding: Binding) -> bool:
        """Evaluate under a binding covering all variables."""
        left = binding[self.left] if is_variable(self.left) else self.left
        right = binding[self.right] if is_variable(self.right) else self.right
        return _COMPARATORS[self.op](left, right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Let:
    """``var := fn(args...)`` — deterministic assignment builtin."""

    var: Variable
    fn: Callable[..., Any]
    args: tuple[Any, ...]

    def input_variables(self) -> set[Variable]:
        return {t for t in self.args if is_variable(t)}

    def evaluate(self, binding: Binding) -> Any:
        """Compute the assigned value under a binding."""
        values = [
            binding[t] if is_variable(t) else t for t in self.args
        ]
        return self.fn(*values)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        name = getattr(self.fn, "__name__", "fn")
        return f"{self.var} := {name}({inner})"


BodyItem = Atom | Negation | Comparison | Let


class Rule:
    """``head :- body`` with a precomputed safe evaluation plan.

    The plan keeps positive atoms in their written order and schedules
    each negation/comparison/assignment at the earliest point where its
    variables are bound.  Construction raises :class:`DatalogError` if
    no safe schedule exists or the head is unsafe.
    """

    __slots__ = ("head", "body", "plan", "bound_before")

    def __init__(self, head: Atom, body: Iterable[BodyItem]) -> None:
        self.head = head
        self.body = tuple(body)
        self.plan = self._make_plan()
        # Variables guaranteed bound before each plan step executes.
        bound: set[Variable] = set()
        before: list[frozenset[Variable]] = []
        for item in self.plan:
            before.append(frozenset(bound))
            if isinstance(item, Atom):
                bound.update(item.variables())
            elif isinstance(item, Let):
                bound.add(item.var)
        self.bound_before = tuple(before)

    def positive_atoms(self) -> list[Atom]:
        """The positive body atoms, in written order."""
        return [item for item in self.body if isinstance(item, Atom)]

    def negated_atoms(self) -> list[Atom]:
        """The atoms under negation."""
        return [item.atom for item in self.body if isinstance(item, Negation)]

    def body_relations(self) -> set[str]:
        """All relations referenced in the body."""
        relations = {a.relation for a in self.positive_atoms()}
        relations.update(a.relation for a in self.negated_atoms())
        return relations

    def _make_plan(self) -> tuple[BodyItem, ...]:
        positives = [item for item in self.body if isinstance(item, Atom)]
        guards = [item for item in self.body if not isinstance(item, Atom)]
        plan: list[BodyItem] = []
        bound: set[Variable] = set()
        pending = list(guards)

        def schedule_ready() -> None:
            progress = True
            while progress:
                progress = False
                for guard in list(pending):
                    if isinstance(guard, Let):
                        needed = guard.input_variables()
                    else:
                        needed = guard.variables()
                    if needed <= bound:
                        plan.append(guard)
                        pending.remove(guard)
                        if isinstance(guard, Let):
                            bound.add(guard.var)
                        progress = True

        schedule_ready()
        for positive in positives:
            plan.append(positive)
            bound.update(positive.variables())
            schedule_ready()
        if pending:
            raise DatalogError(
                f"rule {self}: unsafe guards {[str(g) for g in pending]} "
                "(variables never bound by positive atoms)"
            )
        head_vars = self.head.variables()
        if not head_vars <= bound:
            unsafe = {v.name for v in head_vars - bound}
            raise DatalogError(f"rule {self}: unsafe head variables {unsafe}")
        return tuple(plan)

    def __str__(self) -> str:
        body_text = ", ".join(str(item) for item in self.body)
        return f"{self.head} :- {body_text}."

    def __repr__(self) -> str:
        return f"Rule({self})"


class Program:
    """A set of rules, stratified at construction.

    ``strata`` is a list of lists of relation names, bottom-up;
    negation never points within or above its own stratum (checked).
    EDB relations (never derived) occupy an implicit stratum below all
    others.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)
        self.idb: set[str] = {rule.head.relation for rule in self.rules}
        self.rules_by_head: dict[str, list[Rule]] = {}
        for rule in self.rules:
            self.rules_by_head.setdefault(rule.head.relation, []).append(rule)
        self.strata = self._stratify()
        self.stratum_of: dict[str, int] = {}
        for level, relations in enumerate(self.strata):
            for relation in relations:
                self.stratum_of[relation] = level

    def edb_relations(self) -> set[str]:
        """Relations referenced but never derived."""
        referenced: set[str] = set()
        for rule in self.rules:
            referenced.update(rule.body_relations())
        return referenced - self.idb

    def _stratify(self) -> list[list[str]]:
        # Dependency edges between IDB relations: head depends on body.
        positive_deps: dict[str, set[str]] = {rel: set() for rel in self.idb}
        negative_deps: dict[str, set[str]] = {rel: set() for rel in self.idb}
        for rule in self.rules:
            head = rule.head.relation
            for positive in rule.positive_atoms():
                if positive.relation in self.idb:
                    positive_deps[head].add(positive.relation)
            for negative in rule.negated_atoms():
                if negative.relation in self.idb:
                    negative_deps[head].add(negative.relation)

        # Tarjan SCC over the combined graph.
        order: list[str] = []
        lowlink: dict[str, int] = {}
        number: dict[str, int] = {}
        on_stack: dict[str, bool] = {}
        stack: list[str] = []
        counter = [0]
        components: list[list[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan to dodge recursion limits on deep graphs.
            work = [(node, iter(sorted(positive_deps[node] | negative_deps[node])))]
            number[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack[node] = True
            while work:
                current, edges = work[-1]
                advanced = False
                for succ in edges:
                    if succ not in number:
                        number[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append(
                            (succ, iter(sorted(positive_deps[succ] | negative_deps[succ])))
                        )
                        advanced = True
                        break
                    if on_stack.get(succ):
                        lowlink[current] = min(lowlink[current], number[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == number[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == current:
                            break
                    components.append(component)

        for relation in sorted(self.idb):
            if relation not in number:
                strongconnect(relation)

        component_of: dict[str, int] = {}
        for index, component in enumerate(components):
            for relation in component:
                component_of[relation] = index

        # Negation inside an SCC => not stratifiable.
        for head, negatives in negative_deps.items():
            for negative in negatives:
                if component_of[head] == component_of[negative]:
                    raise DatalogError(
                        f"program not stratifiable: {head} depends negatively "
                        f"on {negative} within a recursive component"
                    )

        # One stratum per SCC.  Tarjan emits an SCC only after every
        # SCC it depends on has been emitted (successors = dependencies
        # finish first), so `components` is already in evaluation order.
        return [sorted(component) for component in components]

    def rules_for_stratum(self, level: int) -> list[Rule]:
        """All rules whose head lives in stratum ``level``."""
        relations = set(self.strata[level])
        return [rule for rule in self.rules if rule.head.relation in relations]

    def stratum_is_recursive(self, level: int) -> bool:
        """True if some rule in the stratum reads its own stratum."""
        relations = set(self.strata[level])
        for rule in self.rules_for_stratum(level):
            if any(a.relation in relations for a in rule.positive_atoms()):
                return True
        return False

    def evaluate(self, database: "Database") -> None:  # noqa: F821
        """Full (from-scratch) evaluation; see engine.evaluate_program."""
        from repro.datalog.engine import evaluate_program

        evaluate_program(self, database)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
