"""Stratified semi-naive Datalog evaluation.

Evaluation walks the program's strata (one SCC per stratum, in
dependency order).  Non-recursive strata are evaluated rule-by-rule
with *counting* semantics: each distinct body binding contributes +1
to the head row's multiplicity, so the incremental engine can later
run the counting algorithm on them.  Recursive strata are evaluated
with semi-naive iteration under set semantics (multiplicity pinned to
one), because counting does not terminate on recursion; the
incremental engine maintains those with DRed instead.

The join machinery (:func:`enumerate_bindings`) is shared with the
incremental engine: each plan step reads from a :class:`View`, and the
caller decides which view (full / old / delta) backs each step.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.datalog.ast import (
    Atom,
    Binding,
    Comparison,
    Let,
    Negation,
    Program,
    Rule,
)
from repro.datalog.database import Database, Relation, Row


class View:
    """Read interface one plan step evaluates against."""

    def lookup(self, positions: tuple[int, ...], key: Row) -> Iterable[Row]:
        """Rows whose values at ``positions`` equal ``key``."""
        raise NotImplementedError

    def contains(self, row: Row) -> bool:
        """Set-semantics membership (used by negation)."""
        raise NotImplementedError


class FullView(View):
    """The current contents of a stored relation."""

    __slots__ = ("relation",)

    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    def lookup(self, positions: tuple[int, ...], key: Row) -> Iterable[Row]:
        return self.relation.lookup(positions, key)

    def contains(self, row: Row) -> bool:
        return row in self.relation


class SetView(View):
    """A transient set of rows (e.g. a semi-naive delta)."""

    __slots__ = ("_rows", "_indexes")

    def __init__(self, rows: Iterable[Row]) -> None:
        self._rows = set(rows)
        self._indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}

    def lookup(self, positions: tuple[int, ...], key: Row) -> Iterable[Row]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                row_key = tuple(row[i] for i in positions)
                index.setdefault(row_key, []).append(row)
            self._indexes[positions] = index
        return index.get(key, [])

    def contains(self, row: Row) -> bool:
        return row in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)


class OldView(View):
    """A relation as it stood *before* a recorded set of flips.

    ``flips`` maps row -> +1 (row was inserted) or -1 (row was
    deleted).  Old state = current state with insertions removed and
    deletions restored.
    """

    __slots__ = ("relation", "flips", "_deleted_indexes")

    def __init__(self, relation: Relation, flips: dict[Row, int]) -> None:
        self.relation = relation
        self.flips = flips
        self._deleted_indexes: dict[tuple[int, ...], dict[Row, list[Row]]] = {}

    def lookup(self, positions: tuple[int, ...], key: Row) -> Iterable[Row]:
        for row in self.relation.lookup(positions, key):
            if self.flips.get(row) != 1:  # not freshly inserted
                yield row
        index = self._deleted_indexes.get(positions)
        if index is None:
            index = {}
            for row, sign in self.flips.items():
                if sign == -1:
                    row_key = tuple(row[i] for i in positions)
                    index.setdefault(row_key, []).append(row)
            self._deleted_indexes[positions] = index
        yield from index.get(key, [])

    def contains(self, row: Row) -> bool:
        sign = self.flips.get(row)
        if sign == 1:
            return False
        if sign == -1:
            return True
        return row in self.relation


ViewChooser = Callable[[int, Atom], View]


def enumerate_bindings(
    rule: Rule,
    view_for: ViewChooser,
    negation_view_for: ViewChooser | None = None,
) -> Iterator[Binding]:
    """All body bindings of ``rule`` under the chosen views.

    ``view_for`` picks the view for each positive atom (by plan index);
    ``negation_view_for`` (default: same chooser) picks the view each
    negation is checked against.
    """
    if negation_view_for is None:
        negation_view_for = view_for
    plan = rule.plan
    bound_before = rule.bound_before

    def walk(step: int, binding: Binding) -> Iterator[Binding]:
        if step == len(plan):
            yield binding
            return
        item = plan[step]
        if isinstance(item, Atom):
            positions = item.bound_positions(set(bound_before[step]))
            key = _ground_key(item, positions, binding)
            view = view_for(step, item)
            for row in view.lookup(positions, key):
                extended = item.match(row, binding)
                if extended is not None:
                    yield from walk(step + 1, extended)
        elif isinstance(item, Negation):
            grounded = item.atom.substitute(binding)
            if not negation_view_for(step, item.atom).contains(grounded):
                yield from walk(step + 1, binding)
        elif isinstance(item, Comparison):
            if item.holds(binding):
                yield from walk(step + 1, binding)
        elif isinstance(item, Let):
            value = item.evaluate(binding)
            existing = binding.get(item.var, _MISSING)
            if existing is _MISSING:
                extended = dict(binding)
                extended[item.var] = value
                yield from walk(step + 1, extended)
            elif existing == value:
                yield from walk(step + 1, binding)
        else:  # pragma: no cover - plan items are exhaustive
            raise TypeError(f"unknown plan item {item!r}")

    yield from walk(0, {})


_MISSING = object()


def _ground_key(item: Atom, positions: tuple[int, ...], binding: Binding) -> Row:
    """Values at the bound positions of ``item`` under ``binding``."""
    from repro.datalog.ast import is_variable

    values = []
    for index in positions:
        term = item.terms[index]
        values.append(binding[term] if is_variable(term) else term)
    return tuple(values)


def _ensure_relations(program: Program, database: Database) -> None:
    """Create every referenced relation so lookups never KeyError."""
    arities: dict[str, int] = {}
    for rule in program.rules:
        atoms = [rule.head] + rule.positive_atoms() + rule.negated_atoms()
        for item in atoms:
            known = arities.get(item.relation)
            if known is None:
                arities[item.relation] = item.arity
            elif known != item.arity:
                raise ValueError(
                    f"relation {item.relation!r} used with arities "
                    f"{known} and {item.arity}"
                )
    for name, arity in arities.items():
        database.relation(name, arity)


def evaluate_program(program: Program, database: Database) -> None:
    """From-scratch evaluation of all IDB relations.

    IDB relations are cleared first, then strata are computed bottom-up
    — counting multiplicities for non-recursive strata, set semantics
    for recursive ones.
    """
    _ensure_relations(program, database)
    for name in program.idb:
        database.relation(name).clear()
    for level in range(len(program.strata)):
        if program.stratum_is_recursive(level):
            _evaluate_recursive_stratum(program, database, level)
        else:
            _evaluate_flat_stratum(program, database, level)


def _full_chooser(database: Database) -> ViewChooser:
    views: dict[str, FullView] = {}

    def choose(_step: int, item: Atom) -> View:
        view = views.get(item.relation)
        if view is None:
            view = FullView(database.relation(item.relation))
            views[item.relation] = view
        return view

    return choose


def _evaluate_flat_stratum(
    program: Program, database: Database, level: int
) -> None:
    chooser = _full_chooser(database)
    for rule in program.rules_for_stratum(level):
        head_relation = database.relation(rule.head.relation)
        for binding in enumerate_bindings(rule, chooser):
            head_relation.add(rule.head.substitute(binding), 1)


def _evaluate_recursive_stratum(
    program: Program, database: Database, level: int
) -> None:
    recursive = set(program.strata[level])
    rules = program.rules_for_stratum(level)
    chooser = _full_chooser(database)

    # Initialization: rules evaluated with recursive inputs as they
    # stand (empty), i.e. only derivations not requiring the stratum.
    delta: dict[str, set[Row]] = {name: set() for name in recursive}
    for rule in rules:
        head_relation = database.relation(rule.head.relation)
        for binding in enumerate_bindings(rule, chooser):
            row = rule.head.substitute(binding)
            if row not in head_relation:
                head_relation.add(row, 1)
                delta[rule.head.relation].add(row)

    while any(delta.values()):
        new_delta: dict[str, set[Row]] = {name: set() for name in recursive}
        delta_views = {name: SetView(rows) for name, rows in delta.items()}
        for rule in rules:
            recursive_steps = [
                step
                for step, item in enumerate(rule.plan)
                if isinstance(item, Atom) and item.relation in recursive
            ]
            head_relation = database.relation(rule.head.relation)
            for driver in recursive_steps:

                def choose(step: int, item: Atom, _driver: int = driver) -> View:
                    if step == _driver:
                        return delta_views[item.relation]
                    return chooser(step, item)

                for binding in enumerate_bindings(rule, choose, chooser):
                    row = rule.head.substitute(binding)
                    if row not in head_relation:
                        head_relation.add(row, 1)
                        new_delta[rule.head.relation].add(row)
        delta = new_delta


def query(
    database: Database, relation: str, pattern: tuple[Any, ...] | None = None
) -> list[Row]:
    """Rows of ``relation`` matching an optional constant pattern.

    Pattern positions holding ``None`` are wildcards.  Convenience for
    tests and examples.
    """
    stored = database.relation(relation)
    if pattern is None:
        return sorted(stored.rows())
    matches = []
    for row in stored.rows():
        if all(p is None or p == v for p, v in zip(pattern, row)):
            matches.append(row)
    return sorted(matches)
