"""The serving layer's two economic bets, pinned down.

1. **Warm cache hits are effectively free.**  A hit answers from the
   LRU without touching the analyzer, so its latency must sit far
   below a cold analysis.  Acceptance: warm-hit median < 0.2x the
   cold-miss median over a live socket round trip.
2. **The codec beats raw pickle.**  Campaign workers and service
   startup ship converged bases around; the chunked container (canonical
   text + compressed pickle) must be smaller than the raw pickle it
   replaced.  Acceptance: ``dumps_base`` payload < raw pickle payload.

Samples go over a real TCP socket (loopback), so the hit latency
includes the full frame round trip — the number an operator sees.
"""

from __future__ import annotations

import pickle
import time

from repro.api import Network
from repro.bench.harness import Table, median
from repro.core import codec
from repro.service import ReproService, ServiceClient

COLD_SAMPLES = 5
WARM_SAMPLES = 21
ACCEPTANCE_WARM_RATIO = 0.2  # warm hit < 0.2x cold miss median


def test_warm_hit_latency_under_fifth_of_cold_miss():
    service = ReproService(Network.generate("ring", size=8), cache_size=64)
    address = service.start_in_thread("127.0.0.1:0")
    try:
        with ServiceClient.connect(address) as client:
            # Cold misses: distinct link-down scripts, each a fresh
            # fork-backed analysis.
            cold = []
            for index in range(COLD_SAMPLES):
                script = f"link down r{index} r{(index + 1) % 8}"
                start = time.perf_counter()
                client.request("preview", script=script, label="cold")
                cold.append(time.perf_counter() - start)
                assert client.last_cache == "miss"
            # Warm hits: the same script answered from the LRU.
            script = "link down r0 r1"
            client.request("preview", script=script, label="warm")
            warm = []
            for _ in range(WARM_SAMPLES):
                start = time.perf_counter()
                client.request("preview", script=script, label="warm")
                warm.append(time.perf_counter() - start)
                assert client.last_cache == "hit"
    finally:
        service.stop()

    cold_median = median(cold)
    warm_median = median(warm)
    ratio = warm_median / cold_median

    table = Table(
        "service request latency (ring n=8, loopback TCP)",
        ["median_ms", "ratio_to_cold"],
    )
    table.add("cold miss (analysis)", median_ms=cold_median * 1e3,
              ratio_to_cold=1.0)
    table.add("warm hit (cache)", median_ms=warm_median * 1e3,
              ratio_to_cold=ratio)
    print()
    print(table.render())

    assert ratio < ACCEPTANCE_WARM_RATIO, (
        f"warm hit median {warm_median * 1e3:.2f}ms is {ratio:.2f}x the "
        f"cold miss median {cold_median * 1e3:.2f}ms "
        f"(acceptance < {ACCEPTANCE_WARM_RATIO}x)"
    )


def test_codec_payload_smaller_than_pickle(fat_tree6_analyzer):
    data = codec.dumps_base(fat_tree6_analyzer)
    raw = pickle.dumps(fat_tree6_analyzer, protocol=pickle.HIGHEST_PROTOCOL)

    table = Table(
        "converged base payload (fat-tree k=6)",
        ["bytes", "vs_pickle"],
    )
    table.add("raw pickle", bytes=len(raw), vs_pickle=1.0)
    table.add("codec container", bytes=len(data),
              vs_pickle=len(data) / len(raw))
    print()
    print(table.render())

    assert len(data) < len(raw), (
        f"codec container ({len(data)}B) must beat raw pickle "
        f"({len(raw)}B)"
    )
    # The container stays honest: digest-verified and self-describing.
    sizes = codec.describe(data)
    assert codec.CHUNK_BASE in sizes and codec.CHUNK_TOPOLOGY in sizes
