"""F6 — WAN/BGP changes on Internet2: DNA vs snapshot-diff.

Reproduces the WAN portion of the evaluation: policy changes
(local-pref flips), route churn (announce/withdraw), customer session
loss, and backbone link failures — the change mix of an ISP.  The BGP
work is per-dirty-prefix in DNA, so prefix-scoped changes beat the
baseline by the prefix count of the network.
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown, LinkUp
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp


def _measure(analyzer, forward, backward, table, label):
    baseline = SnapshotDiff(analyzer.snapshot.clone())
    base_seconds, reference = time_call(lambda: baseline.analyze(forward), repeat=1)
    dna_seconds, report = time_call(lambda: analyzer.analyze(forward), repeat=1)
    assert report.behavior_signature() == reference.behavior_signature()
    analyzer.analyze(backward)
    table.add(
        label,
        dna_ms=dna_seconds * 1e3,
        baseline_ms=base_seconds * 1e3,
        speedup=base_seconds / dna_seconds,
        prefixes_resolved=report.counters.get("bgp_prefixes_resolved", 0),
    )


def test_f6_wan_bgp_changes(benchmark):
    scenario = internet2_bgp(customers_per_pop=2, prefixes_per_customer=3)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    generator = ChangeGenerator(scenario, seed=600)
    total_prefixes = len(analyzer.state.bgp_solutions)

    table = Table(
        f"F6: Internet2 BGP changes ({total_prefixes} prefixes)",
        ["dna_ms", "baseline_ms", "speedup", "prefixes_resolved"],
    )

    flip = generator.dual_homed_pref_flip(100, 200)
    flip_back = generator.dual_homed_pref_flip(200, 100)
    _measure(analyzer, flip, flip_back, table, "local-pref flip")

    announce, withdraw = generator.random_prefix_flap()
    _measure(analyzer, announce, withdraw, table, "announce one prefix")

    # Customer uplink failure: takes the whole session (and its
    # prefixes) down.
    customer = "cust_seat0"
    _measure(
        analyzer,
        Change.of(LinkDown(customer, "SEAT"), label="customer uplink down"),
        Change.of(LinkUp(customer, "SEAT"), label="customer uplink up"),
        table,
        "customer uplink down",
    )

    down, up = generator.random_link_failure()
    _measure(analyzer, down, up, table, "backbone link failure")

    cost = generator.random_ospf_cost()
    cost_again = generator.random_ospf_cost()
    _measure(analyzer, cost, cost_again, table, "igp cost change")

    table.emit()

    flip2 = generator.dual_homed_pref_flip(100, 200)
    flip2_back = generator.dual_homed_pref_flip(200, 100)

    def round_trip():
        analyzer.analyze(flip2)
        analyzer.analyze(flip2_back)

    benchmark(round_trip)
