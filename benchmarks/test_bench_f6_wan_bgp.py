"""F6 — WAN/BGP changes on Internet2: DNA vs snapshot-diff.

Reproduces the WAN portion of the evaluation: policy changes
(local-pref flips), route churn (announce/withdraw), customer session
loss, and backbone link failures — the change mix of an ISP.  The BGP
work is per-dirty-prefix in DNA, so prefix-scoped changes beat the
baseline by the prefix count of the network.
"""

from __future__ import annotations

from repro.bench.harness import Table, median, time_call
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown, LinkUp
from repro.core.planner import PlannerConfig
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp

MAX_SCOPED_FRACTION = 0.5


def _measure(analyzer, forward, backward, table, label):
    baseline = SnapshotDiff(analyzer.snapshot.clone())
    base_seconds, reference = time_call(lambda: baseline.analyze(forward), repeat=1)
    dna_seconds, report = time_call(lambda: analyzer.analyze(forward), repeat=1)
    assert report.behavior_signature() == reference.behavior_signature()
    analyzer.analyze(backward)
    table.add(
        label,
        dna_ms=dna_seconds * 1e3,
        baseline_ms=base_seconds * 1e3,
        speedup=base_seconds / dna_seconds,
        prefixes_resolved=report.counters.get("bgp_prefixes_resolved", 0),
    )


def test_f6_wan_bgp_changes(benchmark):
    scenario = internet2_bgp(customers_per_pop=2, prefixes_per_customer=3)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    generator = ChangeGenerator(scenario, seed=600)
    total_prefixes = len(analyzer.state.bgp_solutions)

    table = Table(
        f"F6: Internet2 BGP changes ({total_prefixes} prefixes)",
        ["dna_ms", "baseline_ms", "speedup", "prefixes_resolved"],
    )

    flip = generator.dual_homed_pref_flip(100, 200)
    flip_back = generator.dual_homed_pref_flip(200, 100)
    _measure(analyzer, flip, flip_back, table, "local-pref flip")

    announce, withdraw = generator.random_prefix_flap()
    _measure(analyzer, announce, withdraw, table, "announce one prefix")

    # Customer uplink failure: takes the whole session (and its
    # prefixes) down.
    customer = "cust_seat0"
    _measure(
        analyzer,
        Change.of(LinkDown(customer, "SEAT"), label="customer uplink down"),
        Change.of(LinkUp(customer, "SEAT"), label="customer uplink up"),
        table,
        "customer uplink down",
    )

    down, up = generator.random_link_failure()
    _measure(analyzer, down, up, table, "backbone link failure")

    cost = generator.random_ospf_cost()
    cost_again = generator.random_ospf_cost()
    _measure(analyzer, cost, cost_again, table, "igp cost change")

    table.emit()

    flip2 = generator.dual_homed_pref_flip(100, 200)
    flip2_back = generator.dual_homed_pref_flip(200, 100)

    def round_trip():
        analyzer.analyze(flip2)
        analyzer.analyze(flip2_back)

    benchmark(round_trip)


def test_f6_session_edit_scoped_rescan(benchmark):
    """A single-session edit revalidates a fraction of the session table.

    The staged BGP pipeline restricts session discovery to the dirty
    (router, peer) pairs; ``scope_sessions=False`` is the pre-staging
    behaviour (every directed neighbor statement revalidated each
    pass).  Both analyzers pin ``full_scope_ratio`` above 1 so the
    batch planner can never short-circuit to full resimulation: on a
    scenario this small the default crossover fires even for
    one-session edits (a teardown dirties every prefix via the
    liveness diff — see EXPERIMENTS.md), which would make the mode,
    not the session stage, the thing under test.

    The acceptance gate is on the deterministic work counter, not on
    wall-clock: scoped must rescan at least one directed session but
    at most half of what the full rescan touches.  Timings are printed
    for the table only.
    """
    scenario = internet2_bgp(customers_per_pop=2, prefixes_per_customer=3)
    teardown, restore = ChangeGenerator(
        scenario, seed=601
    ).random_session_flap()

    scoped = DifferentialNetworkAnalyzer(
        scenario.snapshot.clone(),
        planner=PlannerConfig(full_scope_ratio=1.1),
    )
    full = DifferentialNetworkAnalyzer(
        scenario.snapshot.clone(),
        planner=PlannerConfig(full_scope_ratio=1.1, scope_sessions=False),
    )

    scoped_times: list[float] = []
    full_times: list[float] = []
    for _ in range(3):
        seconds, scoped_report = time_call(
            lambda: scoped.what_if(teardown), repeat=1
        )
        scoped_times.append(seconds)
        seconds, full_report = time_call(
            lambda: full.what_if(teardown), repeat=1
        )
        full_times.append(seconds)

    # Scoping must not change the answer.
    assert (
        scoped_report.behavior_signature()
        == full_report.behavior_signature()
    )

    scoped_rescanned = scoped_report.counters["bgp_sessions_rescanned"]
    full_rescanned = full_report.counters["bgp_sessions_rescanned"]
    table = Table(
        "F6: single-session teardown — scoped session discovery "
        "vs full rescan",
        ["rescanned", "prefixes_resolved", "median_ms"],
    )
    table.add(
        "full rescan (scope_sessions=False)",
        rescanned=full_rescanned,
        prefixes_resolved=full_report.counters["bgp_prefixes_resolved"],
        median_ms=median(full_times) * 1e3,
    )
    table.add(
        "scoped (dirty pairs only)",
        rescanned=scoped_rescanned,
        prefixes_resolved=scoped_report.counters["bgp_prefixes_resolved"],
        median_ms=median(scoped_times) * 1e3,
    )
    table.emit()

    assert scoped_rescanned > 0, "session stage never ran scoped"
    assert scoped_rescanned <= MAX_SCOPED_FRACTION * full_rescanned, (
        f"scoped rescan touched {scoped_rescanned} of "
        f"{full_rescanned} directed sessions; expected <= "
        f"{MAX_SCOPED_FRACTION:.0%}"
    )

    def round_trip():
        scoped.what_if(teardown)

    benchmark(round_trip)
