"""F10 — ablation: generic differential Datalog vs specialized engines.

Two design choices the DESIGN calls out get quantified:

1. **Reachability maintenance**: the generic incremental-Datalog view
   (DRed over the per-atom `fwd`/`delivers` facts) versus the
   specialized per-atom reverse-BFS recompute DNA actually ships —
   justifying the substitution noted in DESIGN.md ("incremental
   datalog performance suffers" in Python).
2. **Deletions vs insertions** in the Datalog engine itself: DRed's
   overdelete/rederive makes deletions more expensive than counting
   insertions; the asymmetry is the figure's second series.
"""

from __future__ import annotations

import random

from repro.bench.harness import Table, time_call
from repro.controlplane.datalog_model import DatalogReachability
from repro.datalog.ast import Program, Rule, Variable, atom
from repro.datalog.database import Database
from repro.datalog.incremental import IncrementalProgram
from repro.workloads.scenarios import fat_tree_ospf

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
TC = [
    Rule(atom("path", X, Y), [atom("edge", X, Y)]),
    Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
]


def test_f10_dred_ablation(benchmark):
    # Part 1: reachability maintenance, specialized vs datalog-backed,
    # on identical inputs (the per-atom fwd/delivers facts of a
    # fat-tree k=4).
    from repro.controlplane.simulation import simulate
    from repro.dataplane.reachability import compute_atom_reachability

    scenario = fat_tree_ospf(4)
    state = simulate(scenario.snapshot)
    atoms = list(state.dataplane.atom_table.atoms())

    def specialized_full():
        return [compute_atom_reachability(state.dataplane, a) for a in atoms]

    specialized_full_seconds, _ = time_call(specialized_full, repeat=1)

    datalog_full_seconds, model = time_call(
        lambda: DatalogReachability(state.dataplane), repeat=1
    )

    # Incremental step: retract one forwarding edge of a busy atom.
    probe = next(row for row in model._fwd)
    probe_atom = next(a for a in atoms if (a.lo, a.hi) == probe[0])

    def specialized_one_atom():
        return compute_atom_reachability(state.dataplane, probe_atom)

    specialized_inc_seconds, _ = time_call(specialized_one_atom, repeat=2)

    def datalog_one_edge():
        model.incremental.apply(deletes={"fwd": {probe}})
        model.incremental.apply(inserts={"fwd": {probe}})

    datalog_inc_seconds, _ = time_call(datalog_one_edge, repeat=1)

    table = Table(
        "F10a: reachability maintenance (fat-tree k=4)",
        ["full_ms", "one_update_ms"],
    )
    table.add(
        "specialized per-atom reverse-BFS (DNA)",
        full_ms=specialized_full_seconds * 1e3,
        one_update_ms=specialized_inc_seconds * 1e3,
    )
    table.add(
        "generic incremental datalog (DRed)",
        full_ms=datalog_full_seconds * 1e3,
        one_update_ms=datalog_inc_seconds * 1e3 / 2,
    )
    table.emit()

    # Part 2: insertion/deletion asymmetry in the Datalog engine.
    rng = random.Random(10)
    nodes = 40
    edges = set()
    while len(edges) < 100:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            edges.add((u, v))
    probes = rng.sample(sorted(edges), 10)

    db = Database()
    db.relation("edge", 2).load(edges)
    incremental = IncrementalProgram(Program(TC), db)

    def deletions():
        for probe in probes:
            incremental.apply(deletes={"edge": {probe}})
        for probe in probes:
            incremental.apply(inserts={"edge": {probe}})

    total_seconds, _ = time_call(deletions, repeat=1)

    delete_seconds = 0.0
    insert_seconds = 0.0
    for probe in probes:
        seconds, _ = time_call(
            lambda: incremental.apply(deletes={"edge": {probe}}), repeat=1
        )
        delete_seconds += seconds
        seconds, _ = time_call(
            lambda: incremental.apply(inserts={"edge": {probe}}), repeat=1
        )
        insert_seconds += seconds

    table = Table(
        "F10b: DRed deletion vs counting insertion (TC, n=40, m=100)",
        ["total_ms", "per_op_ms"],
    )
    table.add(
        "deletions (overdelete + rederive)",
        total_ms=delete_seconds * 1e3,
        per_op_ms=delete_seconds * 1e2,
    )
    table.add(
        "insertions (semi-naive)",
        total_ms=insert_seconds * 1e3,
        per_op_ms=insert_seconds * 1e2,
    )
    table.emit()

    benchmark(lambda: model.refresh_atoms(atoms[:10]))
