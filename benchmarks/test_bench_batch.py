"""Batched multi-edit analysis vs N sequential analyzes.

The batch pipeline's economic claim: a ChangeSet of N edits applied
through ``analyze_batch`` — all edits to control-plane state first,
one merged DirtySet, one scoped recompute + differential data plane
pass — must beat N sequential ``analyze`` calls, because the per-pass
fixed costs (SPF route refreshes per affected source, FIB resolution,
reachability closure, BGP epoch capture) are paid once instead of N
times.  The acceptance bar is batched median <= 0.7x the sequential
median on the 20-router smoke topology (fat-tree k=4); in practice
the ratio lands well below that.

Correctness rides along: the batched report's behaviour signature
must equal the sequential composition's.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table, median
from repro.bench.workloads import mixed_k8_batch
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.delta import compose_reports
from repro.workloads.scenarios import fat_tree_ospf

REPEAT = 5
ACCEPTANCE_RATIO = 0.7


def test_batch_apply_beats_sequential(benchmark):
    table = Table(
        "Batched k=8 mixed apply vs 8 sequential analyzes "
        "(fat-tree k=4, 20 routers)",
        ["edits", "median_s", "per_edit_ms", "ratio"],
    )
    scenario = fat_tree_ospf(4)
    changes, recovery = mixed_k8_batch(scenario)
    edits = sum(len(c.edits) for c in changes)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())

    # Correctness first: batched == sequential composition.
    sequential_reports = [analyzer.analyze(change) for change in changes]
    composed = compose_reports(sequential_reports, label="k8")
    analyzer.analyze_batch(recovery)
    batched_report = analyzer.analyze_batch(changes, label="k8")
    assert (
        batched_report.behavior_signature() == composed.behavior_signature()
    )
    assert batched_report.counters["edits_batched"] == edits
    analyzer.analyze_batch(recovery)

    sequential_times: list[float] = []
    batched_times: list[float] = []
    for _ in range(REPEAT):
        t0 = time.perf_counter()
        for change in changes:
            analyzer.analyze(change)
        sequential_times.append(time.perf_counter() - t0)
        analyzer.analyze_batch(recovery)  # untimed restore

        t0 = time.perf_counter()
        analyzer.analyze_batch(changes)
        batched_times.append(time.perf_counter() - t0)
        analyzer.analyze_batch(recovery)  # untimed restore

    sequential_median = median(sequential_times)
    batched_median = median(batched_times)
    ratio = batched_median / max(sequential_median, 1e-9)

    table.add(
        "sequential (8 analyzes)",
        edits=edits,
        median_s=sequential_median,
        per_edit_ms=sequential_median / edits * 1e3,
        ratio=1.0,
    )
    table.add(
        "batched (1 analyze_batch)",
        edits=edits,
        median_s=batched_median,
        per_edit_ms=batched_median / edits * 1e3,
        ratio=ratio,
    )
    table.emit()

    # Acceptance: batched median <= 0.7x the sequential median.
    assert batched_median <= ACCEPTANCE_RATIO * sequential_median, (
        f"batched median {batched_median:.4f}s should be <= "
        f"{ACCEPTANCE_RATIO}x sequential median {sequential_median:.4f}s "
        f"(ratio {ratio:.2f})"
    )

    # Headline statistical timing: the fork-backed batch (rolls back
    # by itself, so pytest-benchmark can iterate freely).
    benchmark(lambda: analyzer.what_if_batch(changes))
