"""F8 — atom maintenance: incremental vs full re-decomposition.

Reproduces the data-plane-layer figure: the cost of keeping the atom
table and per-atom actions consistent under FIB churn, incrementally
(register/unregister cut points, inherit split actions) versus
rebuilding the DataPlane from scratch per change.
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.controlplane.rib import NextHop
from repro.controlplane.simulation import simulate
from repro.dataplane.fib import Fib, FibEntry
from repro.dataplane.forwarding import DataPlane
from repro.net.addr import Prefix
from repro.workloads.scenarios import fat_tree_ospf

SCRATCH = Prefix("10.254.0.0/16").first


def _rebuild_fibs(state) -> dict[str, Fib]:
    copies: dict[str, Fib] = {}
    for router, fib in state.dataplane.fibs.items():
        copy = Fib(router)
        for entry in fib.entries():
            copy.install(entry)
        copies[router] = copy
    return copies


def test_f8_atom_maintenance(benchmark):
    scenario = fat_tree_ospf(6)
    state = simulate(scenario.snapshot)
    router = scenario.fabric.routers_with_role("edge")[0]
    neighbor = next(iter(scenario.topology.neighbors(router)))[0]

    table = Table(
        "F8: atom maintenance under FIB churn (fat-tree k=6)",
        ["atoms", "incremental_ms", "full_rebuild_ms", "speedup"],
    )

    for batch_index, batch in enumerate((1, 8, 32)):
        entries = [
            FibEntry(
                Prefix(SCRATCH + 256 * (batch_index * 100 + i), 24),
                frozenset({NextHop(interface="eth0", neighbor=neighbor)}),
            )
            for i in range(batch)
        ]

        def incremental() -> None:
            for entry in entries:
                state.dataplane.update_fib_entry(router, entry.prefix, entry)
            for entry in entries:
                state.dataplane.update_fib_entry(router, entry.prefix, None)

        incremental_seconds, _ = time_call(incremental, repeat=2)

        def full_rebuild() -> DataPlane:
            fibs = _rebuild_fibs(state)
            for entry in entries:
                fibs[router].install(entry)
            return DataPlane(scenario.snapshot, fibs)

        rebuild_seconds, _ = time_call(full_rebuild, repeat=2)
        table.add(
            f"churn {batch} prefixes",
            atoms=state.dataplane.atom_table.num_atoms(),
            incremental_ms=incremental_seconds * 1e3,
            full_rebuild_ms=rebuild_seconds * 1e3,
            speedup=rebuild_seconds / max(incremental_seconds, 1e-9),
        )
    table.emit()

    entry = FibEntry(
        Prefix(SCRATCH + 256 * 999, 24),
        frozenset({NextHop(interface="eth0", neighbor=neighbor)}),
    )

    def flap():
        state.dataplane.update_fib_entry(router, entry.prefix, entry)
        state.dataplane.update_fib_entry(router, entry.prefix, None)

    benchmark(flap)
