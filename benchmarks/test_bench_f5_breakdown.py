"""F5 — phase breakdown of the incremental analyzer.

Reproduces the time-breakdown figure: where each change kind spends
its time inside DNA (edit handling + SPF surgery, IGP route refresh,
BGP re-solving, FIB recomposition, differential reachability).
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp

PHASES = ("edits", "igp", "bgp", "fib", "reachability")


def _row(table: Table, label: str, report) -> None:
    values = {phase: report.timings[phase] * 1e3 for phase in PHASES}
    values["total_ms"] = report.timings["total"] * 1e3
    table.add(label, **values)


def test_f5_phase_breakdown(benchmark):
    table = Table(
        "F5: DNA phase breakdown (milliseconds)",
        list(PHASES) + ["total_ms"],
    )

    fabric = fat_tree_ospf(6)
    analyzer = DifferentialNetworkAnalyzer(fabric.snapshot)
    generator = ChangeGenerator(fabric, seed=500)

    down, up = generator.random_link_failure()
    _row(table, "link failure (k=6)", analyzer.analyze(down))
    _row(table, "link recovery (k=6)", analyzer.analyze(up))

    add, remove = generator.random_static_route()
    _row(table, "static add (k=6)", analyzer.analyze(add))
    analyzer.analyze(remove)

    block, unblock = generator.random_acl_block()
    _row(table, "acl block (k=6)", analyzer.analyze(block))
    analyzer.analyze(unblock)

    wan = internet2_bgp()
    wan_analyzer = DifferentialNetworkAnalyzer(wan.snapshot)
    wan_generator = ChangeGenerator(wan, seed=501)
    flip = wan_generator.dual_homed_pref_flip(100, 200)
    _row(table, "local-pref flip (wan)", wan_analyzer.analyze(flip))
    wan_analyzer.analyze(wan_generator.dual_homed_pref_flip(200, 100))

    table.emit()

    down2, up2 = generator.random_link_failure()

    def round_trip():
        analyzer.analyze(down2)
        analyzer.analyze(up2)

    benchmark(round_trip)
