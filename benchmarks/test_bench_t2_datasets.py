"""T2 — dataset summary: topology sizes, routes, atoms, convergence.

Reproduces the evaluation's dataset table: for every topology family,
the scale of the derived state (FIB entries, atoms) and the cost of
one full convergence (what the baseline pays per change).
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.controlplane.simulation import simulate
from repro.workloads.scenarios import (
    fat_tree_ospf,
    geant_ospf,
    internet2_bgp,
    line_static,
    random_ospf,
    ring_ospf,
)


def test_t2_datasets(benchmark):
    table = Table(
        "T2: datasets",
        ["routers", "links", "fib_entries", "atoms", "full_sim_ms"],
    )
    scenarios = [
        line_static(8),
        ring_ospf(16),
        random_ospf(24, 24, seed=7),
        fat_tree_ospf(4),
        fat_tree_ospf(6),
        internet2_bgp(),
        geant_ospf(),
    ]
    for scenario in scenarios:
        seconds, state = time_call(
            lambda s=scenario: simulate(s.snapshot, precompute_reachability=True),
            repeat=1,
        )
        stats = state.dataplane.stats()
        table.add(
            scenario.name,
            routers=scenario.topology.num_routers(),
            links=scenario.topology.num_links(),
            fib_entries=stats["fib_entries"],
            atoms=stats["atoms"],
            full_sim_ms=seconds * 1e3,
        )
    table.emit()

    ring = ring_ospf(16)
    benchmark(lambda: simulate(ring.snapshot, precompute_reachability=True))
