"""T9 — correctness: incremental == full recompute, with speedups.

Reproduces the evaluation's correctness claim as a measured table: a
randomized change stream per scenario family, every step checked
against the snapshot-diff baseline; the pass rate must be 100% and the
aggregate speedup is reported alongside.
"""

from __future__ import annotations

from repro.bench.harness import Table
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.oracle import EquivalenceOracle
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp, ring_ospf


def _drive(oracle, generator, kinds, steps):
    for _ in range(steps):
        kind = generator.rng.choice(kinds)
        if kind == "link":
            down, up = generator.random_link_failure()
            oracle.step(down)
            oracle.step(up)
        elif kind == "static":
            add, remove = generator.random_static_route()
            oracle.step(add)
            oracle.step(remove)
        elif kind == "cost":
            oracle.step(generator.random_ospf_cost())
        elif kind == "acl":
            block, unblock = generator.random_acl_block()
            oracle.step(block)
            oracle.step(unblock)
        elif kind == "prefix":
            announce, withdraw = generator.random_prefix_flap()
            oracle.step(announce)
            oracle.step(withdraw)
        elif kind == "pref":
            oracle.step(generator.dual_homed_pref_flip(100, 200))
            oracle.step(generator.dual_homed_pref_flip(200, 100))


def test_t9_equivalence(benchmark):
    table = Table(
        "T9: incremental vs full equivalence (randomized streams)",
        ["changes", "pass_rate", "dna_total_s", "baseline_total_s", "speedup"],
    )
    cases = [
        ("ring n=8", ring_ospf(8), ["link", "static", "cost"], 6),
        ("fat-tree k=4", fat_tree_ospf(4), ["link", "static", "cost", "acl"], 5),
        (
            "internet2",
            internet2_bgp(),
            ["link", "static", "cost", "acl", "prefix", "pref"],
            5,
        ),
    ]
    last_oracle = None
    for label, scenario, kinds, steps in cases:
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        generator = ChangeGenerator(scenario, seed=900)
        _drive(oracle, generator, kinds, steps)
        assert oracle.stats.pass_rate == 1.0
        table.add(
            label,
            changes=oracle.stats.checked,
            pass_rate=oracle.stats.pass_rate,
            dna_total_s=oracle.stats.incremental_time,
            baseline_total_s=oracle.stats.baseline_time,
            speedup=oracle.stats.mean_speedup,
        )
        last_oracle = (oracle, generator)
    table.emit()

    oracle, generator = last_oracle
    add, remove = generator.random_static_route()

    def oracle_step():
        oracle.step(add)
        oracle.step(remove)

    benchmark(oracle_step)
