"""T1 — end-to-end latency per change kind: DNA vs snapshot-diff.

Reproduces the paper family's headline table: for each change kind,
the time to compute the full impact (control plane + forwarding +
reachability deltas) incrementally, against the Batfish-style
simulate-both-and-diff baseline, on a fat-tree k=6 (IGP kinds) and the
Internet2 WAN (BGP kinds).

Expected shape: DNA wins by 1–3 orders of magnitude on small changes;
both paths must report identical deltas (checked here, not assumed).
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp


def _measure_pair(analyzer, forward, backward):
    """(dna seconds, baseline seconds) for one restorable change."""
    baseline = SnapshotDiff(analyzer.snapshot.clone())
    base_time, reference = time_call(lambda: baseline.analyze(forward), repeat=1)
    dna_time, report = time_call(lambda: analyzer.analyze(forward), repeat=1)
    assert report.behavior_signature() == reference.behavior_signature()
    analyzer.analyze(backward)  # restore
    return dna_time, base_time


def test_t1_change_kinds(benchmark):
    table = Table(
        "T1: per-change-kind analysis latency",
        ["network", "dna_ms", "baseline_ms", "speedup"],
    )

    fabric = fat_tree_ospf(6)
    analyzer = DifferentialNetworkAnalyzer(fabric.snapshot)
    generator = ChangeGenerator(fabric, seed=101)

    down, up = generator.random_link_failure()
    dna, base = _measure_pair(analyzer, down, up)
    table.add("link failure", network="fat-tree k=6", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    add, remove = generator.random_static_route()
    dna, base = _measure_pair(analyzer, add, remove)
    table.add("static route add", network="fat-tree k=6", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    cost = generator.random_ospf_cost()
    restore = generator.random_ospf_cost()  # any cost restores validity
    dna, base = _measure_pair(analyzer, cost, restore)
    table.add("ospf cost change", network="fat-tree k=6", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    block, unblock = generator.random_acl_block()
    dna, base = _measure_pair(analyzer, block, unblock)
    table.add("acl block subnet", network="fat-tree k=6", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    wan = internet2_bgp()
    wan_analyzer = DifferentialNetworkAnalyzer(wan.snapshot)
    wan_generator = ChangeGenerator(wan, seed=102)

    announce, withdraw = wan_generator.random_prefix_flap()
    dna, base = _measure_pair(wan_analyzer, announce, withdraw)
    table.add("bgp announce", network="internet2", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    flip = wan_generator.dual_homed_pref_flip(100, 200)
    flip_back = wan_generator.dual_homed_pref_flip(200, 100)
    dna, base = _measure_pair(wan_analyzer, flip, flip_back)
    table.add("bgp local-pref flip", network="internet2", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    wan_down, wan_up = wan_generator.random_link_failure()
    dna, base = _measure_pair(wan_analyzer, wan_down, wan_up)
    table.add("wan link failure", network="internet2", dna_ms=dna * 1e3,
              baseline_ms=base * 1e3, speedup=base / dna)

    table.emit()

    # Headline operation under pytest-benchmark statistics: the DNA
    # link-failure round trip on the fat-tree.
    down2, up2 = generator.random_link_failure()

    def round_trip():
        analyzer.analyze(down2)
        analyzer.analyze(up2)

    benchmark(round_trip)
