"""F7 — incremental Datalog micro-benchmark.

Reproduces the runtime-layer figure: maintaining a recursive view
(transitive closure) under single-edge updates with the incremental
engine (counting + DRed) versus re-evaluating from scratch, across
graph sizes.  This quantifies the substrate the paper builds on — and
the Python tax the reproduction band warns about.
"""

from __future__ import annotations

import random

from repro.bench.harness import Table, time_call
from repro.datalog.ast import Program, Rule, Variable, atom
from repro.datalog.database import Database
from repro.datalog.engine import evaluate_program
from repro.datalog.incremental import IncrementalProgram

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
TC = [
    Rule(atom("path", X, Y), [atom("edge", X, Y)]),
    Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
]


def random_edges(n: int, m: int, seed: int) -> set[tuple[int, int]]:
    rng = random.Random(seed)
    edges: set[tuple[int, int]] = set()
    while len(edges) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return edges


def test_f7_incremental_datalog(benchmark):
    table = Table(
        "F7: transitive closure maintenance (single-edge update)",
        ["edges", "full_ms", "inc_insert_ms", "inc_delete_ms", "speedup_ins"],
    )
    for n, m in ((20, 40), (40, 90), (60, 150)):
        edges = random_edges(n, m, seed=n)
        probe = next(iter(edges))

        def full_eval() -> Database:
            db = Database()
            db.relation("edge", 2).load(edges)
            evaluate_program(Program(TC), db)
            return db

        full_seconds, _ = time_call(full_eval, repeat=2)

        db = Database()
        db.relation("edge", 2).load(edges - {probe})
        incremental = IncrementalProgram(Program(TC), db)
        insert_seconds, _ = time_call(
            lambda: incremental.apply(inserts={"edge": {probe}}), repeat=1
        )
        delete_seconds, _ = time_call(
            lambda: incremental.apply(deletes={"edge": {probe}}), repeat=1
        )
        table.add(
            f"n={n}",
            edges=m,
            full_ms=full_seconds * 1e3,
            inc_insert_ms=insert_seconds * 1e3,
            inc_delete_ms=delete_seconds * 1e3,
            speedup_ins=full_seconds / max(insert_seconds, 1e-9),
        )
    table.emit()

    edges = random_edges(40, 90, seed=40)
    probe = next(iter(edges))
    db = Database()
    db.relation("edge", 2).load(edges - {probe})
    incremental = IncrementalProgram(Program(TC), db)

    def flap():
        incremental.apply(inserts={"edge": {probe}})
        incremental.apply(deletes={"edge": {probe}})

    benchmark(flap)
