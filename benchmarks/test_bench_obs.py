"""The no-op tracer path must stay effectively free.

The analyzer carries always-on instrumentation: every recompute stage
runs inside a span and feeds the metrics registry.  The design bet is
that the default :data:`~repro.obs.NULL_TRACER` makes that overhead
negligible — a null span is one allocation plus two clock reads, and
the metric counters are dict lookups.

This benchmark pins the bet down.  A "floor" tracer defined here
strips even the null tracer's clock reads (its spans do nothing at
all), approximating an uninstrumented analyzer without maintaining a
second copy of the pipeline.  Acceptance: the NULL_TRACER median on
the k=8 mixed batch workload is within ``1 + ACCEPTANCE_OVERHEAD`` of
the floor median.  Samples interleave the two variants so drift
(thermal, cache, GC) hits both equally.

A recording :class:`~repro.obs.Tracer` is measured too — reported in
the table for context, not gated (recording is opt-in).
"""

from __future__ import annotations

import time

from repro.bench.harness import Table, median
from repro.bench.workloads import mixed_k8_batch
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.obs import NULL_TRACER, Tracer
from repro.workloads.scenarios import fat_tree_ospf

REPEAT = 21
INNER = 2  # batch applies per sample; averages out per-call jitter
ACCEPTANCE_OVERHEAD = 0.05  # null tracer within 5% of the floor

class _FloorSpan:
    """A span-shaped nothing: no record, no labels, no clock reads."""

    record = None
    duration = 0.0

    def set(self, **labels):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_FLOOR_SPAN = _FloorSpan()


class _FloorTracer(Tracer):
    """The do-nothing floor: one shared dummy span, zero timing.

    Instrumentation sites read ``span.duration`` afterwards (it stays
    0.0 here, zeroing ``report.timings``) — this is as close to
    ripping the instrumentation out as the code path allows.
    """

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name, **labels):
        return _FLOOR_SPAN


def test_null_tracer_overhead_under_5_percent(benchmark):
    table = Table(
        "No-op tracing overhead on the k=8 mixed batch "
        "(fat-tree k=4, 20 routers)",
        ["median_s", "ratio_vs_floor"],
    )
    scenario = fat_tree_ospf(4)
    changes, _recovery = mixed_k8_batch(scenario)

    variants = {
        "floor (no instrumentation)": _FloorTracer(),
        "null tracer (default)": NULL_TRACER,
        "recording tracer": Tracer(),
    }
    analyzers = {
        name: DifferentialNetworkAnalyzer(
            scenario.snapshot.clone(), tracer=tracer
        )
        for name, tracer in variants.items()
    }
    samples: dict[str, list[float]] = {name: [] for name in variants}

    # Warm every analyzer once, then interleave: each rep times every
    # variant back-to-back (order rotating) and the gate is the
    # median of the per-rep null/floor ratios — pairing cancels the
    # slow drift (thermal, cache, GC) that plagues absolute medians.
    for analyzer in analyzers.values():
        analyzer.what_if_batch(changes)
    order = list(variants)
    for rep in range(REPEAT):
        for name in order[rep % len(order):] + order[:rep % len(order)]:
            analyzer = analyzers[name]
            if analyzer.tracer.enabled:
                analyzer.tracer.reset()  # unbounded growth would skew
            start = time.perf_counter()
            for _ in range(INNER):
                analyzer.what_if_batch(changes)
            samples[name].append((time.perf_counter() - start) / INNER)

    floor = median(samples["floor (no instrumentation)"])
    for name, times in samples.items():
        table.add(
            name,
            median_s=median(times),
            ratio_vs_floor=median(times) / max(floor, 1e-9),
        )
    table.emit()

    paired_ratio = median(
        [
            null_s / max(floor_s, 1e-9)
            for null_s, floor_s in zip(
                samples["null tracer (default)"],
                samples["floor (no instrumentation)"],
            )
        ]
    )
    assert paired_ratio <= 1 + ACCEPTANCE_OVERHEAD, (
        f"null tracer adds {(paired_ratio - 1) * 100:.1f}% median "
        f"overhead vs the uninstrumented floor (acceptance: "
        f"<{ACCEPTANCE_OVERHEAD * 100:.0f}%)"
    )

    benchmark(
        lambda: analyzers["null tracer (default)"].what_if_batch(changes)
    )
