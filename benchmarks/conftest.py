"""Shared benchmark fixtures.

Scenario states are expensive to build (full simulation), so they are
session-cached; benchmarks that mutate state use paired changes
(fail/recover, add/remove) to restore it between measurements.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp


@pytest.fixture(scope="session")
def fat_tree6_analyzer() -> DifferentialNetworkAnalyzer:
    return DifferentialNetworkAnalyzer(fat_tree_ospf(6).snapshot)


@pytest.fixture(scope="session")
def fat_tree6_scenario():
    scenario = fat_tree_ospf(6)
    return scenario


@pytest.fixture(scope="session")
def internet2_analyzer_pack():
    scenario = internet2_bgp()
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    return scenario, analyzer
