"""Regenerate ``BENCH_smoke.json`` — the tracked performance pulse.

A tiny, fast (seconds, not minutes) suite of headline operations whose
timings are written as a schema-versioned JSON document.  CI runs this
on every push and uploads the result as an artifact, so regressions in
the hot paths show up as a diffable number next to the build.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py [--out BENCH_smoke.json]
                                              [--repeat 3] [--warmup 1]

Document shape (``schema_version`` 1)::

    {"suite": "smoke", "git_sha": ..., "platform": ..., "python": ...,
     "repeat": N, "warmup": N,
     "results": [{"name": ..., "median_s": ..., "p10_s": ..., "p90_s": ...,
                  "params": {...}, "observed": {...}, "ops": {...},
                  "repeat": N}, ...]}

``ops`` carries the work counters of the measured operation (the
analyzer's ``DeltaReport.counters``), so a timing regression can be
attributed to extra work vs slower work.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from typing import Any, Callable

from repro.bench.workloads import mixed_k8_batch, wan_k8_batch
from repro.campaign import CampaignRunner, all_single_link_failures
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp, ring_ospf

SCHEMA_VERSION = 1


def _git_sha() -> str:
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "HEAD"], stderr=subprocess.DEVNULL
            )
            .decode()
            .strip()
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _measure(
    fn: Callable[[], Any], repeat: int, warmup: int
) -> tuple[list[float], Any]:
    result: Any = None
    for _ in range(warmup):
        result = fn()
    samples: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return samples, result


def _entry(
    name: str,
    samples: list[float],
    params: dict[str, Any],
    observed: dict[str, Any],
    ops: dict[str, int],
) -> dict[str, Any]:
    from repro.bench.harness import median

    return {
        "name": name,
        "median_s": median(samples),
        "p10_s": _percentile(samples, 0.1),
        "p90_s": _percentile(samples, 0.9),
        "params": params,
        "observed": observed,
        "ops": {key: int(value) for key, value in sorted(ops.items())},
        "repeat": len(samples),
    }


def run_suite(repeat: int, warmup: int) -> dict[str, Any]:
    results: list[dict[str, Any]] = []

    # 1. Single-link what-if on the 20-router smoke topology.
    scenario = fat_tree_ospf(4)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
    gen = ChangeGenerator(scenario, seed=7)
    down, _up = gen.random_link_failure()
    samples, report = _measure(
        lambda: analyzer.what_if(down), repeat, warmup
    )
    results.append(
        _entry(
            "analyzer_link_what_if",
            samples,
            params={"k": 4},
            observed={"routers": scenario.topology.num_routers()},
            ops=dict(report.counters),
        )
    )

    # 2. Batched k=8 mixed apply vs sequential — both fork-backed
    # (they roll back by themselves), so no recovery batch is needed.
    changes, _recovery = mixed_k8_batch(scenario)
    edits = sum(len(change.edits) for change in changes)
    batch_samples, batch_report = _measure(
        lambda: analyzer.what_if_batch(changes), repeat, warmup
    )

    def _sequential() -> None:
        with analyzer.fork():
            for change in changes:
                analyzer.analyze(change)

    sequential_samples, _ = _measure(_sequential, repeat, warmup)
    from repro.bench.harness import median

    results.append(
        _entry(
            "batch_apply_k8_mixed",
            batch_samples,
            params={"k": 4, "edits": edits},
            observed={
                "routers": scenario.topology.num_routers(),
                "sequential_median_s": median(sequential_samples),
                "speedup_vs_sequential": round(
                    median(sequential_samples)
                    / max(median(batch_samples), 1e-9),
                    2,
                ),
            },
            ops=dict(batch_report.counters),
        )
    )

    # 3. The same k=8 batch with provenance on — the tracked number is
    # the attribution overhead ratio, which the bench gate keeps <10%.
    provenance_samples, provenance_report = _measure(
        lambda: analyzer.what_if_batch(changes, provenance=True),
        repeat,
        warmup,
    )
    results.append(
        _entry(
            "batch_apply_k8_provenance",
            provenance_samples,
            params={"k": 4, "edits": edits},
            observed={
                "routers": scenario.topology.num_routers(),
                "overhead_vs_plain": round(
                    median(provenance_samples)
                    / max(median(batch_samples), 1e-9),
                    2,
                ),
                "edits_attributed": len(
                    provenance_report.provenance.edits
                ),
            },
            ops=dict(provenance_report.counters),
        )
    )

    # 4. WAN/BGP pulses on the Internet2 scenario: a single-session
    # edit (pair-scoped rediscovery), a policy edit (adj-RIB-scoped),
    # and the k=8 WAN batch.  The ops counters keep the staged BGP
    # pipeline honest: ``bgp_prefixes_resolved`` must stay positive
    # (CI asserts it) and ``bgp_sessions_rescanned`` tracks how much
    # of the session table each edit actually revalidates.
    wan = internet2_bgp(customers_per_pop=2, prefixes_per_customer=3)
    wan_analyzer = DifferentialNetworkAnalyzer(wan.snapshot.clone())
    wan_gen = ChangeGenerator(wan, seed=9)
    teardown, _restore = wan_gen.random_session_flap()
    session_samples, session_report = _measure(
        lambda: wan_analyzer.what_if(teardown), repeat, warmup
    )
    results.append(
        _entry(
            "wan_session_what_if",
            session_samples,
            params={"customers_per_pop": 2, "prefixes_per_customer": 3},
            observed={"routers": wan.topology.num_routers()},
            ops=dict(session_report.counters),
        )
    )

    flip = wan_gen.dual_homed_pref_flip(100, 200)
    policy_samples, policy_report = _measure(
        lambda: wan_analyzer.what_if(flip), repeat, warmup
    )
    results.append(
        _entry(
            "wan_policy_what_if",
            policy_samples,
            params={"customers_per_pop": 2, "prefixes_per_customer": 3},
            observed={"routers": wan.topology.num_routers()},
            ops=dict(policy_report.counters),
        )
    )

    wan_changes, _wan_recovery = wan_k8_batch(wan)
    wan_edits = sum(len(change.edits) for change in wan_changes)
    wan_batch_samples, wan_batch_report = _measure(
        lambda: wan_analyzer.what_if_batch(wan_changes), repeat, warmup
    )
    results.append(
        _entry(
            "wan_batch_apply_k8",
            wan_batch_samples,
            params={
                "customers_per_pop": 2,
                "prefixes_per_customer": 3,
                "edits": wan_edits,
            },
            observed={"routers": wan.topology.num_routers()},
            ops=dict(wan_batch_report.counters),
        )
    )

    # 5. Serial single-link campaign sweep on a ring.
    ring = ring_ospf(8)
    batch = all_single_link_failures(ring)
    runner = CampaignRunner(ring.snapshot.clone(), label="ring8")
    campaign_samples, campaign_report = _measure(
        lambda: runner.run(batch, jobs=1), repeat, warmup
    )
    results.append(
        _entry(
            "campaign_links_serial",
            campaign_samples,
            params={"topology": "ring", "n": 8},
            observed={"scenarios": len(campaign_report)},
            ops={"pickles": runner.pickle_count},
        )
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "smoke",
        "git_sha": _git_sha(),
        "platform": platform.system().lower(),
        "python": platform.python_version(),
        "repeat": repeat,
        "warmup": warmup,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the BENCH_smoke.json performance pulse"
    )
    parser.add_argument("--out", default="BENCH_smoke.json")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    args = parser.parse_args(argv)
    document = run_suite(repeat=args.repeat, warmup=args.warmup)
    with open(args.out, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    for entry in document["results"]:
        print(f"  {entry['name']}: median {entry['median_s'] * 1e3:.2f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
