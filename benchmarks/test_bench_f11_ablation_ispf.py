"""F11 — ablation: dynamic SPF vs from-scratch Dijkstra per source.

The second design choice DESIGN.md calls out: the incremental OSPF
layer maintains one Ramalingam–Reps style :class:`DynamicSpf` per
(source, area) instead of re-running Dijkstra for every source on
every change.  Two effects are measured on a fat-tree:

1. the O(1) *unaffected-source* check (most sources never touch a
   failed edge-of-the-fabric link), and
2. the bounded re-settling for affected sources (only the orphaned
   region is re-explored).
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.controlplane.ispf import DynamicSpf
from repro.controlplane.ospf import build_ospf_state
from repro.controlplane.spf import dijkstra
from repro.workloads.scenarios import fat_tree_ospf


def test_f11_ispf_ablation(benchmark):
    table = Table(
        "F11: SPF maintenance per link flap (all sources)",
        ["sources", "dynamic_ms", "full_dijkstra_ms", "speedup"],
    )
    for k in (4, 6, 8):
        scenario = fat_tree_ospf(k)
        state = build_ospf_state(scenario.snapshot)
        graph = state.graphs[0]
        sources = graph.nodes()
        dynamics = {source: DynamicSpf(graph, source) for source in sources}

        # Flap a pod-edge uplink: few sources lose paths through it.
        edge_router = scenario.fabric.routers_with_role("edge")[0]
        agg_router = scenario.fabric.routers_with_role("agg")[0]
        cost = graph.cost(edge_router, agg_router)
        attachments = graph.attachments[(edge_router, agg_router)]
        reverse_cost = graph.cost(agg_router, edge_router)
        reverse_attachments = graph.attachments[(agg_router, edge_router)]

        def dynamic_flap():
            graph.remove_edge(edge_router, agg_router)
            graph.remove_edge(agg_router, edge_router)
            for dynamic in dynamics.values():
                dynamic.edge_increased(edge_router, agg_router)
                dynamic.edge_increased(agg_router, edge_router)
            graph.set_edge(edge_router, agg_router, int(cost), attachments)
            graph.set_edge(agg_router, edge_router, int(reverse_cost), reverse_attachments)
            for dynamic in dynamics.values():
                dynamic.edge_decreased(edge_router, agg_router)
                dynamic.edge_decreased(agg_router, edge_router)

        dynamic_seconds, _ = time_call(dynamic_flap, repeat=2)

        def full_flap():
            graph.remove_edge(edge_router, agg_router)
            graph.remove_edge(agg_router, edge_router)
            for source in sources:
                dijkstra(graph, source)
            graph.set_edge(edge_router, agg_router, int(cost), attachments)
            graph.set_edge(agg_router, edge_router, int(reverse_cost), reverse_attachments)
            for source in sources:
                dijkstra(graph, source)

        full_seconds, _ = time_call(full_flap, repeat=2)

        # Consistency: dynamic state equals fresh Dijkstra afterwards.
        for source in sources[:3]:
            dist, _parents = dijkstra(graph, source)
            assert dict(dynamics[source].dist) == dist

        table.add(
            f"fat-tree k={k}",
            sources=len(sources),
            dynamic_ms=dynamic_seconds * 1e3,
            full_dijkstra_ms=full_seconds * 1e3,
            speedup=full_seconds / max(dynamic_seconds, 1e-9),
        )
    table.emit()

    scenario = fat_tree_ospf(4)
    state = build_ospf_state(scenario.snapshot)
    graph = state.graphs[0]
    dynamic = DynamicSpf(graph, "edge0_0")
    cost = graph.cost("edge0_0", "agg0_0")
    hops = graph.attachments[("edge0_0", "agg0_0")]

    def single_source_flap():
        graph.remove_edge("edge0_0", "agg0_0")
        dynamic.edge_increased("edge0_0", "agg0_0")
        graph.set_edge("edge0_0", "agg0_0", int(cost), hops)
        dynamic.edge_decreased("edge0_0", "agg0_0")

    benchmark(single_source_flap)
