"""Provenance must be cheap when on and free when off.

Attribution rides the existing dirty-set machinery: handlers already
compute the per-edit footprints, so provenance mode only adds origin
stamping on merge, cause-set lookups per delta, and event-log appends.
The design bet is that this costs well under 10% on a realistic batch
— and exactly nothing when the flag stays off (the pipeline never
consults the attribution path without a record).

Acceptance, both as medians of paired per-rep ratios on the k=8 mixed
batch (interleaved sampling, same discipline as the tracing
benchmark):

- provenance **off** is within noise of the pre-provenance baseline
  (the same analyzer before this feature existed has no code-path
  difference; we allow the tracing benchmark's 5% noise band);
- provenance **on** adds less than 10% median overhead.
"""

from __future__ import annotations

import time

from repro.bench.harness import Table, median
from repro.bench.workloads import mixed_k8_batch
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.obs import EventLog
from repro.workloads.scenarios import fat_tree_ospf

REPEAT = 21
INNER = 2  # batch applies per sample; averages out per-call jitter
ACCEPTANCE_OFF = 0.05  # flag off: indistinguishable (noise band)
ACCEPTANCE_ON = 0.10  # flag on: < 10% median overhead


def test_provenance_overhead_under_10_percent(benchmark):
    table = Table(
        "Provenance overhead on the k=8 mixed batch "
        "(fat-tree k=4, 20 routers)",
        ["median_s", "ratio_vs_off"],
    )
    scenario = fat_tree_ospf(4)
    changes, _recovery = mixed_k8_batch(scenario)

    analyzers = {
        "provenance off (baseline)": DifferentialNetworkAnalyzer(
            scenario.snapshot.clone()
        ),
        "provenance off (events attached)": DifferentialNetworkAnalyzer(
            scenario.snapshot.clone(), events=EventLog()
        ),
        "provenance on": DifferentialNetworkAnalyzer(
            scenario.snapshot.clone(), events=EventLog()
        ),
    }
    with_provenance = {"provenance on"}
    samples: dict[str, list[float]] = {name: [] for name in analyzers}

    # Warm every analyzer once, then interleave: each rep times every
    # variant back-to-back (order rotating) and each gate is the
    # median of the per-rep paired ratios — pairing cancels slow drift
    # (thermal, cache, GC) that plagues absolute medians.
    for name, analyzer in analyzers.items():
        analyzer.what_if_batch(changes, provenance=name in with_provenance)
    order = list(analyzers)
    for rep in range(REPEAT):
        for name in order[rep % len(order):] + order[:rep % len(order)]:
            analyzer = analyzers[name]
            if analyzer.events is not None:
                analyzer.events.clear()  # unbounded growth would skew
            flag = name in with_provenance
            start = time.perf_counter()
            for _ in range(INNER):
                analyzer.what_if_batch(changes, provenance=flag)
            samples[name].append((time.perf_counter() - start) / INNER)

    baseline = median(samples["provenance off (baseline)"])
    for name, times in samples.items():
        table.add(
            name,
            median_s=median(times),
            ratio_vs_off=median(times) / max(baseline, 1e-9),
        )
    table.emit()

    def paired_ratio(name: str) -> float:
        return median(
            [
                variant_s / max(base_s, 1e-9)
                for variant_s, base_s in zip(
                    samples[name], samples["provenance off (baseline)"]
                )
            ]
        )

    off_ratio = paired_ratio("provenance off (events attached)")
    assert off_ratio <= 1 + ACCEPTANCE_OFF, (
        f"an attached-but-silent event log adds "
        f"{(off_ratio - 1) * 100:.1f}% median overhead with provenance "
        f"off (acceptance: <{ACCEPTANCE_OFF * 100:.0f}%)"
    )
    on_ratio = paired_ratio("provenance on")
    assert on_ratio <= 1 + ACCEPTANCE_ON, (
        f"provenance adds {(on_ratio - 1) * 100:.1f}% median overhead "
        f"on the k=8 batch (acceptance: <{ACCEPTANCE_ON * 100:.0f}%)"
    )

    benchmark(
        lambda: analyzers["provenance on"].what_if_batch(
            changes, provenance=True
        )
    )
