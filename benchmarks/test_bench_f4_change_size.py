"""F4 — analysis latency vs change size (batched edits).

Reproduces the crossover figure: as a change batch grows from 1 edit
toward "rewrite the whole network", the incremental path's advantage
shrinks — the baseline pays one flat full simulation regardless, while
DNA's cost is proportional to the touched state.  The crossover point
(where re-simulating would be cheaper) is the number the paper family
reports; here we print the ratio per batch size.
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)


def test_f4_latency_vs_change_size(benchmark):
    scenario = fat_tree_ospf(6)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    generator = ChangeGenerator(scenario, seed=400)

    table = Table(
        "F4: latency vs change size (static-route batches, fat-tree k=6)",
        ["edits", "dna_ms", "baseline_ms", "speedup"],
    )
    dna_times = []
    for size in BATCH_SIZES:
        add, remove = generator.static_batch(size)
        baseline = SnapshotDiff(analyzer.snapshot.clone())
        base_seconds, reference = time_call(lambda: baseline.analyze(add), repeat=1)
        dna_seconds, report = time_call(lambda: analyzer.analyze(add), repeat=1)
        assert report.behavior_signature() == reference.behavior_signature()
        analyzer.analyze(remove)
        dna_times.append(dna_seconds)
        table.add(
            f"batch={size}",
            edits=size,
            dna_ms=dna_seconds * 1e3,
            baseline_ms=base_seconds * 1e3,
            speedup=base_seconds / dna_seconds,
        )
    table.emit()

    # Shape: DNA cost grows with batch size (roughly linear), so the
    # largest batch is measurably slower than the smallest.
    assert dna_times[-1] > dna_times[0]

    add, remove = generator.static_batch(8)

    def round_trip():
        analyzer.analyze(add)
        analyzer.analyze(remove)

    benchmark(round_trip)
