"""F3 — speedup vs topology size (fat-tree k ∈ {4, 6, 8}).

Reproduces the scaling figure: the incremental analyzer's latency for
a single link failure stays near-flat while the snapshot-diff baseline
grows with the network, so the speedup widens with scale.
"""

from __future__ import annotations

from repro.bench.harness import Table, time_call
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf


def test_f3_speedup_vs_scale(benchmark):
    table = Table(
        "F3: link-failure latency vs fat-tree size",
        ["routers", "dna_ms", "baseline_ms", "speedup"],
    )
    speedups = []
    keep_for_benchmark = None
    for k in (4, 6, 8):
        scenario = fat_tree_ospf(k)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        generator = ChangeGenerator(scenario, seed=300 + k)
        down, up = generator.random_link_failure()

        baseline = SnapshotDiff(analyzer.snapshot.clone())
        base_seconds, reference = time_call(
            lambda: baseline.analyze(down), repeat=1
        )
        dna_seconds, report = time_call(lambda: analyzer.analyze(down), repeat=1)
        assert report.behavior_signature() == reference.behavior_signature()
        analyzer.analyze(up)

        speedup = base_seconds / dna_seconds
        speedups.append(speedup)
        table.add(
            f"fat-tree k={k}",
            routers=scenario.topology.num_routers(),
            dna_ms=dna_seconds * 1e3,
            baseline_ms=base_seconds * 1e3,
            speedup=speedup,
        )
        if k == 4:
            keep_for_benchmark = (analyzer, generator)
    table.emit()

    # Shape check: the win does not shrink as the fabric grows.
    assert speedups[-1] > speedups[0] * 0.5

    analyzer, generator = keep_for_benchmark
    down, up = generator.random_link_failure()

    def round_trip():
        analyzer.analyze(down)
        analyzer.analyze(up)

    benchmark(round_trip)
