"""Campaign engine benchmarks: fork economics and backend scaling.

Two questions the campaign design hinges on:

1. **Fork vs commit+undo** — evaluating N candidates used to mean N
   ``analyze(change)`` / ``analyze(inverse)`` pairs.  A fork replaces
   the second full analysis with an undo-journal rollback whose cost
   is proportional to the touched state, so the per-candidate price
   should drop well below the pairing's.
2. **Serial vs parallel** — the multiprocessing backend must produce
   identical per-scenario reports, and on multi-core hardware finish
   the batch faster.  (On a single-CPU container there is nothing to
   parallelize; the table still reports the measured ratio, and the
   speedup assertion is gated on available cores.)
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import Table, time_call
from repro.campaign import CampaignRunner, all_single_link_failures
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkUp
from repro.workloads.scenarios import fat_tree_ospf


def _recovery(change: Change) -> Change:
    """The inverse (LinkUp) change of a single-link-failure scenario."""
    (edit,) = change.edits
    return Change.of(
        LinkUp(edit.router1, edit.router2, edit.interface1, edit.interface2),
        label=f"recover {change.label}",
    )


def test_campaign_fork_vs_commit_undo(benchmark):
    table = Table(
        "Campaign: fork-based what-if vs commit+undo pairing (fat-tree k=4)",
        ["scenarios", "total_s", "per_scenario_ms"],
    )
    scenario = fat_tree_ospf(4)
    batch = all_single_link_failures(scenario)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())

    def sweep_with_forks():
        return [analyzer.what_if(s.change).behavior_signature() for s in batch]

    def sweep_with_pairs():
        signatures = []
        for s in batch:
            signatures.append(analyzer.analyze(s.change).behavior_signature())
            analyzer.analyze(_recovery(s.change))
        return signatures

    fork_time, fork_signatures = time_call(sweep_with_forks, repeat=2)
    pair_time, pair_signatures = time_call(sweep_with_pairs, repeat=2)

    # Identical per-scenario reports whichever way state is restored.
    assert fork_signatures == pair_signatures

    table.add(
        "fork + rollback",
        scenarios=len(batch),
        total_s=fork_time,
        per_scenario_ms=fork_time / len(batch) * 1e3,
    )
    table.add(
        "commit + undo pair",
        scenarios=len(batch),
        total_s=pair_time,
        per_scenario_ms=pair_time / len(batch) * 1e3,
    )
    table.add(
        "fork advantage",
        scenarios=len(batch),
        total_s=pair_time / max(fork_time, 1e-9),
    )
    table.emit()

    # The rollback replaces a full second incremental analysis; it must
    # not cost more than the analysis it replaces.
    assert fork_time < pair_time, (
        f"fork sweep ({fork_time:.3f}s) should beat "
        f"commit+undo sweep ({pair_time:.3f}s)"
    )

    what_if = batch[0].change
    benchmark(lambda: analyzer.what_if(what_if))


def test_campaign_parallel_speedup():
    table = Table(
        "Campaign: serial vs multiprocessing backend (fat-tree k=4, all "
        "single-link failures)",
        ["jobs", "wall_s", "speedup"],
    )
    scenario = fat_tree_ospf(4)
    batch = all_single_link_failures(scenario)
    runner = CampaignRunner(scenario.snapshot.clone(), label="fat_tree k=4")

    t0 = time.perf_counter()
    serial = runner.run(batch, jobs=1)
    serial_wall = time.perf_counter() - t0
    table.add("serial", jobs=1, wall_s=serial_wall, speedup=1.0)

    cpus = len(os.sched_getaffinity(0))
    for jobs in (2, 4):
        t0 = time.perf_counter()
        parallel = runner.run(batch, jobs=jobs)
        wall = time.perf_counter() - t0
        table.add(
            f"multiprocessing j{jobs}",
            jobs=jobs,
            wall_s=wall,
            speedup=serial_wall / max(wall, 1e-9),
        )
        # Acceptance: per-scenario reports identical to serial.
        assert parallel.signatures() == serial.signatures()
        if jobs == 4 and cpus >= 4:
            assert serial_wall / wall > 1.0, (
                f"jobs=4 on {cpus} cores should beat serial "
                f"({wall:.3f}s vs {serial_wall:.3f}s)"
            )
    table.add("available cpus", jobs=cpus, wall_s=0.0, speedup=0.0)
    table.emit()
