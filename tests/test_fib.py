"""FIB trie: LPM correctness against the linear-scan oracle."""

from hypothesis import given, strategies as st

from repro.controlplane.rib import NextHop
from repro.dataplane.fib import Fib, FibEntry
from repro.net.addr import Prefix


def entry(prefix: str, target: str = "x") -> FibEntry:
    return FibEntry(
        Prefix(prefix), frozenset({NextHop(interface="eth0", neighbor=target)})
    )


class TestTrie:
    def test_lpm_prefers_longer(self):
        fib = Fib("r")
        fib.install(entry("10.0.0.0/8", "coarse"))
        fib.install(entry("10.1.0.0/16", "fine"))
        hit = fib.lookup(Prefix("10.1.2.0/24").first)
        assert next(iter(hit.next_hops)).neighbor == "fine"
        hit = fib.lookup(Prefix("10.2.0.0/16").first)
        assert next(iter(hit.next_hops)).neighbor == "coarse"

    def test_no_match_returns_none(self):
        fib = Fib("r")
        fib.install(entry("10.0.0.0/8"))
        assert fib.lookup(Prefix("11.0.0.0/8").first) is None

    def test_default_route_matches_everything(self):
        fib = Fib("r")
        fib.install(entry("0.0.0.0/0", "default"))
        assert fib.lookup(0) is not None
        assert fib.lookup((1 << 32) - 1) is not None

    def test_install_replaces(self):
        fib = Fib("r")
        previous = fib.install(entry("10.0.0.0/8", "one"))
        assert previous is None
        previous = fib.install(entry("10.0.0.0/8", "two"))
        assert next(iter(previous.next_hops)).neighbor == "one"
        assert len(fib) == 1

    def test_remove(self):
        fib = Fib("r")
        fib.install(entry("10.0.0.0/8"))
        fib.install(entry("10.1.0.0/16"))
        removed = fib.remove(Prefix("10.1.0.0/16"))
        assert removed is not None
        assert fib.lookup(Prefix("10.1.0.0/16").first).prefix == Prefix("10.0.0.0/8")
        assert fib.remove(Prefix("10.1.0.0/16")) is None

    def test_entries_sorted(self):
        fib = Fib("r")
        fib.install(entry("10.1.0.0/16"))
        fib.install(entry("10.0.0.0/8"))
        prefixes = [e.prefix for e in fib.entries()]
        assert prefixes == sorted(prefixes)

    def test_entry_helpers(self):
        drop = FibEntry(Prefix("10.0.0.0/8"), frozenset({NextHop(drop=True)}))
        assert drop.is_drop()
        fwd = entry("10.0.0.0/8", "n1")
        assert fwd.forwards_to() == {"n1"}
        assert not fwd.is_drop()


_prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


@given(st.sets(_prefixes, max_size=25), st.lists(st.integers(0, (1 << 32) - 1), max_size=15))
def test_trie_matches_linear_oracle(prefixes, probes):
    fib = Fib("r")
    for prefix in prefixes:
        fib.install(entry(str(prefix)))
    # Probe random points plus each prefix's boundaries.
    points = set(probes)
    for prefix in prefixes:
        points.add(prefix.first)
        points.add(prefix.last)
    for point in points:
        assert fib.lookup(point) == fib.lookup_linear(point)


@given(st.sets(_prefixes, min_size=2, max_size=20))
def test_trie_after_removals_matches_oracle(prefixes):
    fib = Fib("r")
    ordered = sorted(prefixes)
    for prefix in ordered:
        fib.install(entry(str(prefix)))
    for prefix in ordered[::2]:
        fib.remove(prefix)
    for prefix in ordered:
        assert fib.lookup(prefix.first) == fib.lookup_linear(prefix.first)
