"""Topology model and generators."""

import pytest

from repro.net.addr import IPv4Address, Prefix
from repro.topology.generators import (
    fat_tree,
    grid,
    internet2,
    line,
    random_gnm,
    ring,
    star,
)
from repro.topology.model import Link, Topology, TopologyError, validate_addressing


def tiny_topology() -> Topology:
    topology = Topology()
    topology.add_interface("a", "eth0", IPv4Address("10.0.0.0"), 31)
    topology.add_interface("b", "eth0", IPv4Address("10.0.0.1"), 31)
    topology.add_link("a", "eth0", "b", "eth0")
    return topology


class TestModel:
    def test_duplicate_interface_rejected(self):
        topology = Topology()
        topology.add_interface("a", "eth0")
        with pytest.raises(TopologyError):
            topology.add_interface("a", "eth0")

    def test_link_requires_existing_interfaces(self):
        topology = Topology()
        topology.add_interface("a", "eth0")
        with pytest.raises(TopologyError):
            topology.add_link("a", "eth0", "b", "eth0")

    def test_interface_single_cable(self):
        topology = tiny_topology()
        topology.add_interface("c", "eth0")
        with pytest.raises(TopologyError):
            topology.add_link("a", "eth0", "c", "eth0")

    def test_link_canonical_order(self):
        assert Link.of(("b", "x"), ("a", "y")) == Link.of(("a", "y"), ("b", "x"))

    def test_link_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link.of(("a", "x"), ("a", "x"))

    def test_other_end(self):
        link = Link.of(("a", "x"), ("b", "y"))
        assert link.other_end("a") == ("b", "y")
        assert link.other_end("b") == ("a", "x")
        with pytest.raises(TopologyError):
            link.other_end("c")

    def test_neighbors_respect_link_state(self):
        topology = tiny_topology()
        assert [n for n, _ in topology.neighbors("a")] == ["b"]
        link = next(topology.links())
        topology.set_link_enabled(link, False)
        assert list(topology.neighbors("a")) == []
        assert topology.num_links() == 0
        assert topology.num_links(include_disabled=True) == 1

    def test_interface_peer(self):
        topology = tiny_topology()
        peer = topology.interface_peer("a", "eth0")
        assert peer is not None and peer.router == "b"

    def test_connected_subnets(self):
        topology = tiny_topology()
        subnets = dict(
            (i.name, s) for i, s in topology.connected_subnets("a")
        )
        assert subnets["eth0"] == Prefix("10.0.0.0/31")

    def test_clone_is_independent(self):
        topology = tiny_topology()
        copy = topology.clone()
        link = next(copy.links())
        copy.set_link_enabled(link, False)
        assert topology.num_links() == 1
        assert copy.num_links() == 0

    def test_validate_addressing_flags_mismatch(self):
        topology = Topology()
        topology.add_interface("a", "eth0", IPv4Address("10.0.0.0"), 31)
        topology.add_interface("b", "eth0", IPv4Address("10.0.9.1"), 31)
        topology.add_link("a", "eth0", "b", "eth0")
        problems = validate_addressing(topology)
        assert len(problems) == 1 and "mismatch" in problems[0]

    def test_validate_addressing_clean_generators(self):
        assert validate_addressing(fat_tree(4).topology) == []
        assert validate_addressing(internet2().topology) == []


class TestGenerators:
    def test_fat_tree_counts(self):
        fabric = fat_tree(4)
        assert fabric.topology.num_routers() == 20  # 4 core + 8 agg + 8 edge
        assert len(fabric.routers_with_role("core")) == 4
        assert len(fabric.routers_with_role("agg")) == 8
        assert len(fabric.routers_with_role("edge")) == 8
        # k^3/4 * ... links: edge-agg = k * (k/2)^2 = 16, agg-core = 16
        assert fabric.topology.num_links() == 32

    def test_fat_tree_host_subnets(self):
        fabric = fat_tree(4, host_subnets_per_edge=2)
        assert all(len(v) == 2 for v in fabric.host_subnets.values())
        assert len(fabric.all_host_subnets()) == 16

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            fat_tree(5)

    def test_fat_tree_pods(self):
        fabric = fat_tree(6)
        assert len(fabric.pods) == 6
        assert all(len(members) == 6 for members in fabric.pods.values())

    def test_internet2_shape(self):
        fabric = internet2()
        assert fabric.topology.num_routers() == 9
        assert fabric.topology.num_links() == 12

    def test_line_and_ring(self):
        assert line(5).topology.num_links() == 4
        assert ring(5).topology.num_links() == 5
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        fabric = star(6)
        assert fabric.topology.num_routers() == 7
        assert fabric.topology.num_links() == 6

    def test_grid(self):
        fabric = grid(3, 4)
        assert fabric.topology.num_routers() == 12
        assert fabric.topology.num_links() == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_random_connected(self):
        fabric = random_gnm(15, 5, seed=7)
        # Spanning tree + extras.
        assert fabric.topology.num_links() == 14 + 5
        # Connectivity: BFS over links.
        seen = {"r0"}
        frontier = ["r0"]
        while frontier:
            node = frontier.pop()
            for neighbor, _link in fabric.topology.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == 15

    def test_random_deterministic(self):
        a = random_gnm(10, 4, seed=9)
        b = random_gnm(10, 4, seed=9)
        links_a = {str(link) for link in a.topology.links()}
        links_b = {str(link) for link in b.topology.links()}
        assert links_a == links_b

    def test_unique_p2p_subnets(self):
        fabric = fat_tree(4)
        subnets = []
        for router in fabric.topology.routers():
            for interface in router.interfaces.values():
                if interface.prefix_length == 31:
                    subnets.append(interface.subnet)
        # Each /31 appears exactly twice (both ends of one link).
        from collections import Counter

        counts = Counter(subnets)
        assert all(count == 2 for count in counts.values())
