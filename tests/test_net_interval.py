"""Interval set algebra, checked against a point-set model."""

import pytest
from hypothesis import given, strategies as st

from repro.net.interval import FULL_SPAN, Interval, IntervalSet, cut_points

# Small universe so point-model comparisons stay cheap.
UNIVERSE = 64
pairs = st.tuples(
    st.integers(min_value=0, max_value=UNIVERSE),
    st.integers(min_value=0, max_value=UNIVERSE),
).map(lambda t: (min(t), max(t)))
interval_sets = st.lists(pairs, max_size=6).map(IntervalSet)


def points_of(interval_set: IntervalSet) -> set[int]:
    """The point-set model, restricted to the small universe."""
    return {
        p
        for lo, hi in interval_set.pairs
        for p in range(lo, min(hi, UNIVERSE + 2))
    }


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(5, 5)

    def test_contains(self):
        interval = Interval(2, 5)
        assert interval.contains(2) and interval.contains(4)
        assert not interval.contains(5)

    def test_intersection(self):
        assert Interval(0, 10).intersection(Interval(5, 15)) == Interval(5, 10)
        assert Interval(0, 5).intersection(Interval(5, 10)) is None

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(9, 12))
        assert not Interval(0, 10).overlaps(Interval(10, 12))


class TestIntervalSetBasics:
    def test_normalizes_overlapping(self):
        merged = IntervalSet([(0, 5), (3, 8), (8, 10)])
        assert merged.pairs == ((0, 10),)

    def test_drops_empty_pairs(self):
        assert IntervalSet([(5, 5), (7, 6)]).is_empty()

    def test_point_and_span(self):
        assert IntervalSet.point(7).size == 1
        assert IntervalSet.span(0, 10).size == 10

    def test_contains_binary_search(self):
        s = IntervalSet([(0, 5), (10, 15)])
        assert s.contains(0) and s.contains(14)
        assert not s.contains(5) and not s.contains(9)

    def test_min_point(self):
        assert IntervalSet([(10, 15), (3, 4)]).min_point() == 3
        with pytest.raises(ValueError):
            IntervalSet().min_point()

    def test_complement_of_empty_is_full(self):
        assert IntervalSet().complement() == IntervalSet([FULL_SPAN])

    def test_hashable_and_equal(self):
        assert hash(IntervalSet([(0, 5)])) == hash(IntervalSet([(0, 3), (3, 5)]))

    def test_sample_points(self):
        s = IntervalSet([(0, 10)])
        assert s.sample_points() == [0]
        assert set(s.sample_points(3)) == {0, 5, 9}

    def test_cut_points(self):
        points = cut_points([IntervalSet([(5, 10)]), IntervalSet([(8, 20)])])
        assert {5, 8, 10, 20} <= set(points)
        assert points == sorted(points)


class TestIntervalSetAlgebra:
    @given(interval_sets, interval_sets)
    def test_union_model(self, a, b):
        assert points_of(a.union(b)) == points_of(a) | points_of(b)

    @given(interval_sets, interval_sets)
    def test_intersection_model(self, a, b):
        assert points_of(a.intersection(b)) == points_of(a) & points_of(b)

    @given(interval_sets, interval_sets)
    def test_difference_model(self, a, b):
        assert points_of(a.difference(b)) == points_of(a) - points_of(b)

    @given(interval_sets)
    def test_complement_involution(self, a):
        assert a.complement().complement() == a

    @given(interval_sets, interval_sets)
    def test_overlaps_agrees_with_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersection(b).is_empty())

    @given(interval_sets, interval_sets)
    def test_issubset_model(self, a, b):
        assert a.issubset(b) == a.difference(b).is_empty()

    @given(interval_sets)
    def test_size_consistent_with_pairs(self, a):
        assert a.size == sum(hi - lo for lo, hi in a.pairs)

    @given(interval_sets)
    def test_pairs_sorted_disjoint(self, a):
        pairs = a.pairs
        for (lo1, hi1), (lo2, hi2) in zip(pairs, pairs[1:]):
            assert hi1 < lo2  # disjoint AND non-adjacent (coalesced)
