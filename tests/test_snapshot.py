"""Snapshot persistence and cloning."""

import pytest

from repro.core.snapshot import Snapshot, parse_topology, serialize_topology
from repro.core.change import LinkDown
from repro.topology.model import TopologyError
from repro.workloads.scenarios import internet2_bgp, line_static


class TestCloning:
    def test_clone_isolates_configs(self):
        scenario = line_static(3)
        copy = scenario.snapshot.clone()
        copy.config("r0").static_routes.clear()
        assert scenario.snapshot.config("r0").static_routes

    def test_clone_isolates_topology(self):
        scenario = line_static(3)
        copy = scenario.snapshot.clone()
        LinkDown("r0", "r1").apply(copy)
        assert scenario.snapshot.topology.num_links() == 2

    def test_config_accessor_validates_router(self):
        scenario = line_static(2)
        with pytest.raises(TopologyError):
            scenario.snapshot.config("ghost")


class TestTopologyText:
    def test_round_trip(self):
        scenario = internet2_bgp()
        text = serialize_topology(scenario.snapshot.topology)
        parsed = parse_topology(text)
        assert serialize_topology(parsed) == text

    def test_down_links_preserved(self):
        scenario = line_static(3)
        LinkDown("r0", "r1").apply(scenario.snapshot)
        text = serialize_topology(scenario.snapshot.topology)
        parsed = parse_topology(text)
        assert parsed.num_links() == 1
        assert parsed.num_links(include_disabled=True) == 2

    def test_parse_error_on_garbage(self):
        with pytest.raises(TopologyError, match="bad topology line"):
            parse_topology("nonsense here\n")


class TestDirectoryRoundTrip:
    def test_save_load(self, tmp_path):
        scenario = internet2_bgp()
        directory = str(tmp_path / "snap")
        scenario.snapshot.save(directory)
        loaded = Snapshot.load(directory)
        assert set(loaded.configs) == set(scenario.snapshot.configs)
        assert (
            loaded.topology.num_links()
            == scenario.snapshot.topology.num_links()
        )
        # Loaded snapshot must simulate identically.
        from repro.controlplane.simulation import simulate

        original = simulate(scenario.snapshot)
        reloaded = simulate(loaded)
        for router in scenario.snapshot.topology.router_names():
            assert set(original.fibs[router].entries()) == set(
                reloaded.fibs[router].entries()
            )
